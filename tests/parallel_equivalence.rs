//! Equivalence pin of the interval-parallel offline solving path: solving
//! with `ParallelConfig { threads: N }` must be **bit-identical** to the
//! sequential path for every N — same schedules, same energies, same lower
//! bounds, same Frank–Wolfe iteration counts. Parallelism may only change
//! wall-clock, never a single bit of any result (the determinism contract
//! documented in README.md and EXPERIMENTS.md).
//!
//! The suite covers every registry algorithm on both benchmark topology
//! families, the relaxation layer directly (where the per-worker scratch
//! arenas live), the bench harness entry points (where `--solver-threads`
//! lands), and a proptest sweep over random flow sets.

use dcn_bench::{harness_registry, run_flow_set_algorithms_threads};
use deadline_dcn::core::{interval_relaxation_threads, prelude::*};
use deadline_dcn::flow::workload::UniformWorkload;
use deadline_dcn::flow::{Flow, FlowSet};
use deadline_dcn::power::PowerFunction;
use deadline_dcn::solver::fmcf::FmcfSolverConfig;
use deadline_dcn::topology::builders::{self, BuiltTopology};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn topologies() -> Vec<BuiltTopology> {
    vec![builders::fat_tree(4), builders::leaf_spine(4, 2, 6)]
}

fn x2(capacity: f64) -> PowerFunction {
    PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
}

/// Runs every registry algorithm on one instance with the given pool
/// width, returning `(name, solution)` pairs in registry order.
fn solve_all(
    topo: &BuiltTopology,
    flows: &FlowSet,
    power: &PowerFunction,
    seed: u64,
    threads: usize,
) -> Vec<(String, Solution)> {
    let registry = AlgorithmRegistry::with_defaults();
    let mut ctx = SolverContext::from_network(&topo.network)
        .unwrap()
        .with_parallelism(ParallelConfig::with_threads(threads));
    registry
        .names()
        .iter()
        .map(|name| {
            let mut algorithm = registry.create(name).unwrap();
            algorithm.set_seed(seed);
            let solution = algorithm
                .solve(&mut ctx, flows, power)
                .unwrap_or_else(|e| panic!("{name} at {threads} threads: {e}"));
            (name.to_string(), solution)
        })
        .collect()
}

fn assert_solutions_identical(
    sequential: &[(String, Solution)],
    parallel: &[(String, Solution)],
    context: &str,
) {
    assert_eq!(sequential.len(), parallel.len());
    for ((name, seq), (pname, par)) in sequential.iter().zip(parallel) {
        assert_eq!(name, pname);
        assert_eq!(
            seq.schedule, par.schedule,
            "{context}: {name} schedules diverge"
        );
        // Bit-identical energies and bounds, not approximately equal.
        assert_eq!(
            seq.total_energy().map(f64::to_bits),
            par.total_energy().map(f64::to_bits),
            "{context}: {name} energies diverge"
        );
        assert_eq!(
            seq.lower_bound.map(f64::to_bits),
            par.lower_bound.map(f64::to_bits),
            "{context}: {name} lower bounds diverge"
        );
        assert_eq!(
            seq.diagnostics, par.diagnostics,
            "{context}: {name} diagnostics diverge"
        );
    }
}

/// Every registry algorithm — including `exact`, whose enumeration is
/// fanned over the pool — is bit-identical at any pool width, on both
/// topology families.
#[test]
fn every_algorithm_is_thread_count_invariant() {
    // 5 flows keep `exact` inside its default enumeration budget.
    let power = x2(10.0);
    for topo in topologies() {
        for seed in [7u64, 21] {
            let flows = UniformWorkload::paper_defaults(5, seed)
                .generate(topo.hosts())
                .unwrap();
            let sequential = solve_all(&topo, &flows, &power, seed, 1);
            for threads in THREAD_COUNTS {
                let parallel = solve_all(&topo, &flows, &power, seed, threads);
                assert_solutions_identical(
                    &sequential,
                    &parallel,
                    &format!("{} seed {seed} threads {threads}", topo.name),
                );
            }
        }
    }
}

/// The relaxation layer itself: per-interval Frank–Wolfe solutions and
/// iteration counts are bit-identical at any pool width, and the lower
/// bound — a sum over intervals in index order — has the same bits.
#[test]
fn interval_relaxation_is_thread_count_invariant() {
    let power = x2(10.0);
    let config = FmcfSolverConfig::default();
    for topo in topologies() {
        let flows = UniformWorkload::paper_defaults(24, 11)
            .generate(topo.hosts())
            .unwrap();
        let sequential = interval_relaxation_threads(&topo.csr(), &flows, &power, &config, 1);
        assert!(sequential.intervals.len() > 1, "need a real fan-out");
        for threads in THREAD_COUNTS {
            let parallel =
                interval_relaxation_threads(&topo.csr(), &flows, &power, &config, threads);
            assert_eq!(
                sequential.lower_bound.to_bits(),
                parallel.lower_bound.to_bits(),
                "{} threads {threads}: LB bits diverge",
                topo.name
            );
            assert_eq!(sequential.intervals.len(), parallel.intervals.len());
            for (k, (seq, par)) in sequential
                .intervals
                .iter()
                .zip(&parallel.intervals)
                .enumerate()
            {
                assert_eq!(seq.interval, par.interval);
                assert_eq!(seq.flow_ids, par.flow_ids);
                // FmcfSolution equality covers flows, loads, convergence
                // *and* the iteration counter: the parallel path must run
                // Frank–Wolfe through the exact same trajectory.
                assert_eq!(
                    seq.solution, par.solution,
                    "{} threads {threads}: interval {k} solution diverges",
                    topo.name
                );
                assert_eq!(seq.solution.iterations, par.solution.iterations);
                assert_eq!(seq.cost_rate, par.cost_rate);
            }
        }
    }
}

/// The bench-harness entry point `--solver-threads` lands in: instance
/// results are identical at any width, and nesting under the instance
/// pool (`--threads`) composes — inner pools run inline on pool workers.
#[test]
fn bench_harness_results_are_solver_thread_invariant() {
    let topo = builders::fat_tree(4);
    let power = x2(10.0);
    let registry = harness_registry();
    let algorithms: Vec<String> = ["dcfsr", "sp-mcf", "greedy"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let flows = UniformWorkload::paper_defaults(12, 5)
        .generate(topo.hosts())
        .unwrap();
    let sequential =
        run_flow_set_algorithms_threads(&topo, &flows, &power, 5, &algorithms, &registry, 1);
    for threads in THREAD_COUNTS {
        let parallel = run_flow_set_algorithms_threads(
            &topo,
            &flows,
            &power,
            5,
            &algorithms,
            &registry,
            threads,
        );
        assert_eq!(
            sequential.lower_bound.to_bits(),
            parallel.lower_bound.to_bits()
        );
        assert_eq!(sequential.rs_energy.to_bits(), parallel.rs_energy.to_bits());
        assert_eq!(sequential.sp_energy.to_bits(), parallel.sp_energy.to_bits());
        assert_eq!(sequential.extra_energies, parallel.extra_energies);
        assert_eq!(sequential.rs_sim, parallel.rs_sim);
        assert_eq!(sequential.sp_sim, parallel.sp_sim);
    }

    // Composition: solving instances on an outer pool while each instance
    // requests an inner interval pool must not change a bit either (the
    // nested pools run inline on the outer pool's workers).
    let outer: Vec<_> = dcn_bench::runner::run_indexed(4, 4, |i| {
        run_flow_set_algorithms_threads(
            &topo,
            &flows,
            &power,
            5 + i as u64,
            &algorithms,
            &registry,
            4,
        )
        .rs_energy
        .to_bits()
    });
    let inline: Vec<_> = (0..4)
        .map(|i| {
            run_flow_set_algorithms_threads(
                &topo,
                &flows,
                &power,
                5 + i as u64,
                &algorithms,
                &registry,
                1,
            )
            .rs_energy
            .to_bits()
        })
        .collect();
    assert_eq!(outer, inline, "nested pools must not change results");
}

/// A random but always-valid flow set over the hosts of a k=4 fat-tree
/// (same shape as `properties.rs`).
fn arb_flows(max_flows: usize) -> impl Strategy<Value = FlowSet> {
    let host_count = 16usize; // fat_tree(4)
    prop::collection::vec(
        (
            0..host_count,
            0..host_count,
            0.0f64..80.0,
            1.0f64..20.0,
            0.5f64..20.0,
        ),
        1..max_flows,
    )
    .prop_map(move |raw| {
        let topo = builders::fat_tree_with_capacity(4, 1e9);
        let hosts = topo.hosts().to_vec();
        let flows: Vec<Flow> = raw
            .into_iter()
            .enumerate()
            .map(|(id, (s, d, release, span, volume))| {
                let src = hosts[s];
                let dst = if s == d {
                    hosts[(d + 1) % host_count]
                } else {
                    hosts[d]
                };
                Flow::new(id, src, dst, release, release + span, volume)
                    .expect("valid by construction")
            })
            .collect();
        FlowSet::from_flows(flows).expect("dense ids by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Random workloads: the full DCFSR pipeline (relax → decompose →
    /// round) is bit-identical between the sequential path and every pool
    /// width, seeds and all.
    #[test]
    fn dcfsr_is_thread_count_invariant_on_random_workloads(
        flows in arb_flows(20),
        seed in 0u64..1000,
    ) {
        let topo = builders::fat_tree_with_capacity(4, 1e9);
        let power = x2(1e9);
        let solve = |threads: usize| {
            let mut ctx = SolverContext::from_network(&topo.network)
                .unwrap()
                .with_parallelism(ParallelConfig::with_threads(threads));
            let mut algo = Dcfsr::default();
            algo.set_seed(seed);
            algo.solve(&mut ctx, &flows, &power).unwrap()
        };
        let sequential = solve(1);
        for threads in THREAD_COUNTS {
            let parallel = solve(threads);
            prop_assert_eq!(&sequential.schedule, &parallel.schedule);
            prop_assert_eq!(
                sequential.total_energy().map(f64::to_bits),
                parallel.total_energy().map(f64::to_bits)
            );
            prop_assert_eq!(
                sequential.lower_bound.map(f64::to_bits),
                parallel.lower_bound.map(f64::to_bits)
            );
            prop_assert_eq!(&sequential.diagnostics, &parallel.diagnostics);
        }
    }
}
