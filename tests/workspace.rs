//! Manifest and feature hygiene for the whole workspace:
//!
//! * every algorithm crate (`crates/*`) and the umbrella crate pull shared
//!   external dependencies (`rand`, `serde`, ...) exclusively through
//!   `[workspace.dependencies]`, so the tree can never split into two
//!   versions of the same dependency;
//! * the root manifest actually declares those shared dependencies;
//! * every workspace member (including the offline stand-ins under
//!   `vendor/`) carries `#![forbid(unsafe_code)]` in its crate root.
//!
//! The checks parse the manifests line-by-line on purpose: the offline
//! environment has no `toml` crate, and the subset of TOML that Cargo
//! manifests use is regular enough for this.

use std::fs;
use std::path::{Path, PathBuf};

/// External dependencies that must be version-unified through the
/// workspace table.
const SHARED_DEPS: &[&str] = &[
    "rand",
    "rand_distr",
    "serde",
    "serde_json",
    "proptest",
    "criterion",
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// All member manifest paths: the root package plus `crates/*` and
/// `vendor/*`.
fn member_manifests() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut manifests = vec![root.join("Cargo.toml")];
    for dir in ["crates", "vendor"] {
        let entries = fs::read_dir(root.join(dir))
            .unwrap_or_else(|e| panic!("workspace directory {dir}/ must exist: {e}"));
        for entry in entries {
            let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
            assert!(
                manifest.is_file(),
                "every {dir}/ subdirectory must be a crate, missing {}",
                manifest.display()
            );
            manifests.push(manifest);
        }
    }
    manifests
}

/// Returns the lines of a named TOML section (e.g. `dependencies`),
/// stopping at the next `[section]` header.
fn section_lines(manifest: &str, section: &str) -> Vec<String> {
    let mut lines = Vec::new();
    let mut in_section = false;
    for line in manifest.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_section = trimmed == format!("[{section}]");
            continue;
        }
        if in_section && !trimmed.is_empty() && !trimmed.starts_with('#') {
            lines.push(trimmed.to_string());
        }
    }
    lines
}

/// The dependency name of a manifest dependency line (`foo = ...` or
/// `foo.workspace = true`).
fn dep_name(line: &str) -> Option<&str> {
    let key = line.split('=').next()?.trim();
    let name = key.split('.').next()?.trim();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

#[test]
fn workspace_table_declares_all_shared_dependencies() {
    let root_manifest = fs::read_to_string(workspace_root().join("Cargo.toml"))
        .expect("root Cargo.toml is readable");
    let table = section_lines(&root_manifest, "workspace.dependencies");
    for dep in SHARED_DEPS {
        assert!(
            table.iter().any(|l| dep_name(l) == Some(dep)),
            "[workspace.dependencies] must declare {dep}"
        );
    }
}

#[test]
fn members_use_workspace_versions_of_shared_dependencies() {
    let root = workspace_root();
    for manifest_path in member_manifests() {
        let manifest = fs::read_to_string(&manifest_path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest_path.display()));
        let is_vendor_member = manifest_path.starts_with(root.join("vendor"));
        for section in ["dependencies", "dev-dependencies", "build-dependencies"] {
            for line in section_lines(&manifest, section) {
                let Some(name) = dep_name(&line) else {
                    continue;
                };
                if !SHARED_DEPS.contains(&name) {
                    continue;
                }
                if is_vendor_member {
                    // Stand-ins may depend on their siblings by relative
                    // path; that still resolves to the single vendored
                    // version of the dependency.
                    assert!(
                        line.contains("workspace = true") || line.contains("path ="),
                        "{}: vendored dependency `{name}` must come from the \
                         workspace or a sibling stand-in, got `{line}`",
                        manifest_path.display()
                    );
                } else {
                    assert!(
                        line.contains("workspace = true"),
                        "{}: dependency `{name}` must use `workspace = true` so all \
                         members share one version, got `{line}`",
                        manifest_path.display()
                    );
                }
            }
        }
    }
}

#[test]
fn every_member_forbids_unsafe_code() {
    for manifest_path in member_manifests() {
        let crate_dir: &Path = manifest_path.parent().expect("manifest has a parent");
        let lib = crate_dir.join("src").join("lib.rs");
        let source = fs::read_to_string(&lib)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", lib.display()));
        assert!(
            source.contains("#![forbid(unsafe_code)]"),
            "{} must carry #![forbid(unsafe_code)]",
            lib.display()
        );
    }
}

#[test]
fn no_member_pins_its_own_external_registry_version() {
    // With no registry access, any `foo = "x.y"` version requirement on a
    // shared dependency would break the build; everything must be a path
    // or workspace reference.
    for manifest_path in member_manifests() {
        let manifest = fs::read_to_string(&manifest_path).expect("manifest readable");
        for section in ["dependencies", "dev-dependencies", "build-dependencies"] {
            for line in section_lines(&manifest, section) {
                let Some(name) = dep_name(&line) else {
                    continue;
                };
                if !SHARED_DEPS.contains(&name) {
                    continue;
                }
                let after_eq = line.split_once('=').map(|(_, v)| v.trim()).unwrap_or("");
                assert!(
                    !after_eq.starts_with('"'),
                    "{}: `{line}` pins a registry version of {name}; use \
                     `workspace = true` instead",
                    manifest_path.display()
                );
            }
        }
    }
}
