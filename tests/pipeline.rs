//! End-to-end integration tests: every topology builder x every workload
//! generator, pushed through one `SolverContext` per topology, the
//! registry's schedulers, verification and the simulator.

use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::{PartitionAggregateWorkload, ShuffleWorkload, UniformWorkload};
use deadline_dcn::flow::FlowSet;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders::{self, BuiltTopology};

fn x2(capacity: f64) -> PowerFunction {
    PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
}

fn topologies() -> Vec<BuiltTopology> {
    vec![
        builders::fat_tree(4),
        builders::leaf_spine(4, 2, 6),
        builders::bcube(3, 1),
        builders::dumbbell(6, 10.0),
    ]
}

/// SP+MCF and Random-Schedule both meet all deadlines on every topology,
/// and their (simulated) energy is never below the fractional lower bound.
#[test]
fn uniform_workload_all_topologies() {
    let power = x2(1e9);
    for topo in topologies() {
        let flows = UniformWorkload::paper_defaults(25, 11)
            .generate(topo.hosts())
            .unwrap();

        let mut ctx = SolverContext::from_network(&topo.network)
            .unwrap_or_else(|e| panic!("{}: {e}", topo.name));
        let rs = Dcfsr::default()
            .solve(&mut ctx, &flows, &power)
            .unwrap_or_else(|e| panic!("{}: {e}", topo.name));
        let sp = RoutedMcf::shortest_path()
            .solve(&mut ctx, &flows, &power)
            .unwrap_or_else(|e| panic!("{}: {e}", topo.name));

        let rs_schedule = rs.schedule.as_ref().unwrap();
        let sp_schedule = sp.schedule.as_ref().unwrap();
        ctx.verify(rs_schedule, &flows, &power)
            .unwrap_or_else(|e| panic!("{} RS: {e}", topo.name));
        ctx.verify(sp_schedule, &flows, &power)
            .unwrap_or_else(|e| panic!("{} SP+MCF: {e}", topo.name));

        let simulator = Simulator::new(power);
        let rs_report = simulator.run_ctx(&ctx, &flows, rs_schedule);
        let sp_report = simulator.run_ctx(&ctx, &flows, sp_schedule);
        assert_eq!(rs_report.deadline_misses, 0, "{}", topo.name);
        assert_eq!(sp_report.deadline_misses, 0, "{}", topo.name);
        let lb = rs.lower_bound.unwrap();
        assert!(rs_report.energy.total() >= lb - 1e-6, "{}", topo.name);
        assert!(sp_report.energy.total() >= lb - 1e-6, "{}", topo.name);
    }
}

/// The application-shaped workloads run end to end on the fabric they are
/// meant for.
#[test]
fn application_workloads_end_to_end() {
    let power = x2(1e9);

    let leaf_spine = builders::leaf_spine(6, 3, 6);
    let search = PartitionAggregateWorkload {
        requests: 12,
        workers_per_request: 8,
        ..Default::default()
    }
    .generate(leaf_spine.hosts())
    .unwrap();

    let fat_tree = builders::fat_tree(4);
    let shuffle = ShuffleWorkload {
        mappers: 5,
        reducers: 5,
        volume_per_pair: 3.0,
        start: 0.0,
        deadline: 40.0,
    }
    .generate(fat_tree.hosts())
    .unwrap();

    for (topo, flows) in [(&leaf_spine, &search), (&fat_tree, &shuffle)] {
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let rs = Dcfsr::default().solve(&mut ctx, flows, &power).unwrap();
        ctx.verify(rs.schedule.as_ref().unwrap(), flows, &power)
            .unwrap();
        let sp = RoutedMcf::shortest_path()
            .solve(&mut ctx, flows, &power)
            .unwrap();
        ctx.verify(sp.schedule.as_ref().unwrap(), flows, &power)
            .unwrap();
        assert!(sp.total_energy().unwrap() >= rs.lower_bound.unwrap() - 1e-6);
    }
}

/// Every DCFS-based scheduler of the registry produces a feasible schedule
/// on the same context; the analytic energy and the simulated energy always
/// agree.
#[test]
fn registry_schedulers_feasible_and_energy_consistent() {
    let topo = builders::fat_tree(4);
    let power = x2(1e9);
    let flows = UniformWorkload::paper_defaults(30, 3)
        .generate(topo.hosts())
        .unwrap();
    let simulator = Simulator::new(power);
    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let registry = AlgorithmRegistry::with_defaults();

    for name in ["sp-mcf", "ecmp", "least-loaded", "consolidate"] {
        let mut algo = registry.create(name).unwrap();
        algo.set_seed(5);
        let solution = algo.solve(&mut ctx, &flows, &power).unwrap();
        let schedule = solution.schedule.as_ref().unwrap();
        ctx.verify(schedule, &flows, &power)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = simulator.run_ctx(&ctx, &flows, schedule);
        let analytic = solution.total_energy().unwrap();
        assert!(
            (report.energy.total() - analytic).abs() <= 1e-6 * analytic,
            "{name}: simulated {} vs analytic {analytic}",
            report.energy.total()
        );
    }
}

/// With idle power included (sigma > 0), Random-Schedule tends to use fewer
/// active links than shortest-path routing spread, and both energies remain
/// above the lower bound.
#[test]
fn idle_power_accounting_is_consistent() {
    let topo = builders::fat_tree(4);
    let power = PowerFunction::new(2.0, 1.0, 2.0, 1e9).unwrap();
    let flows = UniformWorkload::paper_defaults(30, 17)
        .generate(topo.hosts())
        .unwrap();

    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let rs = Dcfsr::default().solve(&mut ctx, &flows, &power).unwrap();
    let sp = RoutedMcf::shortest_path()
        .solve(&mut ctx, &flows, &power)
        .unwrap();

    let rs_energy = rs.energy.unwrap();
    let sp_energy = sp.energy.unwrap();
    let lb = rs.lower_bound.unwrap();
    assert!(rs_energy.idle > 0.0);
    assert!(sp_energy.idle > 0.0);
    assert!(rs_energy.total() >= lb - 1e-6);
    assert!(sp_energy.total() >= lb - 1e-6);
    // The idle share equals sigma * horizon * active links.
    let (t0, t1) = flows.horizon();
    assert!((rs_energy.idle - 2.0 * (t1 - t0) * rs_energy.active_links as f64).abs() < 1e-6);
}

/// A single flow between adjacent hosts: every scheme degenerates to the
/// same, obviously optimal answer.
#[test]
fn degenerate_single_flow_instance() {
    let topo = builders::line_with_capacity(2, 1e9);
    let power = x2(1e9);
    let flows = FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[1], 0.0, 5.0, 10.0)]).unwrap();

    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let rs = Dcfsr::default().solve(&mut ctx, &flows, &power).unwrap();
    let sp = RoutedMcf::shortest_path()
        .solve(&mut ctx, &flows, &power)
        .unwrap();
    // Density 2 on one link for 5 time units: energy 2^2 * 5 = 20.
    assert!((sp.total_energy().unwrap() - 20.0).abs() < 1e-6);
    assert!((rs.total_energy().unwrap() - 20.0).abs() < 1e-6);
    assert!((rs.lower_bound.unwrap() - 20.0).abs() < 1e-3);
}
