//! Migration guard for the online rolling-horizon path — the same role
//! `api_equivalence.rs` played for the context API and `csr_equivalence.rs`
//! for the CSR refactor: with **full knowledge** (every flow released at
//! `t = 0`) and `AdmitAll`, the online engine under the `resolve` policy
//! must reproduce the
//! offline `Algorithm::solve` result **bit for bit** — same schedule
//! struct, same energy, same lower bound path. The engine moves the solve
//! inside an event queue and a commit step; with a single arrival event
//! neither may change a single number.
//!
//! Also pins the two typed-error paths the online loop must never turn
//! into panics: a flow considered after its deadline
//! ([`SolveError::DeadlinePassed`]) and a re-solve on an empty residual
//! set ([`SolveError::EmptyFlowSet`]).

use deadline_dcn::core::online::{
    fractionally_feasible, residual_flow, AdmissionRule, OnlineEngine,
};
use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::UniformWorkload;
use deadline_dcn::flow::{Flow, FlowSet};
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders::{self, BuiltTopology};

fn topologies() -> Vec<BuiltTopology> {
    vec![builders::fat_tree(4), builders::leaf_spine(4, 2, 6)]
}

fn x2(capacity: f64) -> PowerFunction {
    PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
}

/// The full-knowledge variant of a workload: every release moved to `t=0`,
/// deadlines and volumes untouched.
fn released_at_zero(flows: &FlowSet) -> FlowSet {
    FlowSet::from_flows(
        flows
            .iter()
            .map(|f| Flow::new(f.id, f.src, f.dst, 0.0, f.deadline, f.volume).unwrap())
            .collect(),
    )
    .unwrap()
}

/// Online-with-full-knowledge ≡ offline, bit for bit, for the randomized
/// primary algorithm (dcfsr) over 3 seeds × 2 topologies.
#[test]
fn online_full_knowledge_is_bit_identical_to_offline_dcfsr() {
    let power = x2(10.0);
    let registry = AlgorithmRegistry::with_defaults();
    for topo in topologies() {
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        for seed in [7u64, 21, 1000] {
            let flows = released_at_zero(
                &UniformWorkload::paper_defaults(16, seed)
                    .generate(topo.hosts())
                    .unwrap(),
            );

            let mut online = OnlineEngine::builder()
                .algorithm("dcfsr")
                .policy("resolve")
                .seed(seed)
                .build()
                .unwrap();
            let outcome = online.run(&mut ctx, &flows, &power).unwrap();
            assert_eq!(outcome.report.events, 1, "{} seed {seed}", topo.name);
            assert_eq!(outcome.report.resolves, 1);
            assert_eq!(outcome.report.admitted(), flows.len());
            assert_eq!(outcome.report.missed(), 0);

            let mut offline = registry.create("dcfsr").unwrap();
            offline.set_seed(seed);
            let clairvoyant = offline.solve(&mut ctx, &flows, &power).unwrap();

            // Bit-identical, not approximately equal: the whole schedule
            // struct (paths, nominal and per-link profiles, horizon) and
            // the energy must match exactly.
            assert_eq!(
                &outcome.schedule,
                clairvoyant.schedule.as_ref().unwrap(),
                "{} seed {seed}: schedules diverge",
                topo.name
            );
            assert_eq!(
                outcome.report.online_energy,
                clairvoyant.total_energy().unwrap(),
                "{} seed {seed}: energies diverge",
                topo.name
            );
            // The simulator measures the two schedules identically too.
            let simulator = Simulator::new(power);
            let online_sim = simulator.run_admitted(
                ctx.graph(),
                &flows,
                &outcome.schedule,
                &outcome.report.admitted_mask(),
            );
            let offline_sim =
                simulator.run_ctx(&ctx, &flows, clairvoyant.schedule.as_ref().unwrap());
            assert_eq!(online_sim, offline_sim);
        }
    }
}

/// The same pin for a deterministic baseline (sp-mcf), and for the
/// admission-checked policy: with ample capacity `RejectInfeasible` must
/// admit everything and change nothing.
#[test]
fn online_full_knowledge_is_bit_identical_to_offline_sp_mcf() {
    let power = x2(1e9);
    let registry = AlgorithmRegistry::with_defaults();
    for topo in topologies() {
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        for seed in [3u64, 11, 42] {
            let flows = released_at_zero(
                &UniformWorkload::paper_defaults(14, seed)
                    .generate(topo.hosts())
                    .unwrap(),
            );
            for admission in [
                AdmissionRule::AdmitAll,
                AdmissionRule::reject_infeasible(Default::default()),
            ] {
                let mut online = OnlineEngine::builder()
                    .algorithm("sp-mcf")
                    .policy("resolve")
                    .admission(admission)
                    .seed(seed)
                    .build()
                    .unwrap();
                let outcome = online.run(&mut ctx, &flows, &power).unwrap();
                assert_eq!(outcome.report.admitted(), flows.len());

                let mut offline = registry.create("sp-mcf").unwrap();
                offline.set_seed(seed);
                let clairvoyant = offline.solve(&mut ctx, &flows, &power).unwrap();
                assert_eq!(
                    &outcome.schedule,
                    clairvoyant.schedule.as_ref().unwrap(),
                    "{} seed {seed}: schedules diverge",
                    topo.name
                );
                assert_eq!(
                    outcome.report.online_energy,
                    clairvoyant.total_energy().unwrap()
                );
            }
        }
    }
}

/// `run_vs_offline` with full knowledge reports a competitive ratio of
/// exactly 1.
#[test]
fn full_knowledge_competitive_ratio_is_exactly_one() {
    let power = x2(10.0);
    let topo = builders::fat_tree(4);
    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let flows = released_at_zero(
        &UniformWorkload::paper_defaults(12, 5)
            .generate(topo.hosts())
            .unwrap(),
    );
    let mut online = OnlineEngine::builder()
        .algorithm("dcfsr")
        .policy("resolve")
        .seed(5)
        .build()
        .unwrap();
    let outcome = online.run_vs_offline(&mut ctx, &flows, &power).unwrap();
    assert_eq!(outcome.report.competitive_ratio(), Some(1.0));
    assert_eq!(
        outcome.report.offline_energy,
        outcome.offline.as_ref().unwrap().total_energy()
    );
}

/// The typed-error paths of the online loop (PR 4 left these thinly
/// covered): a flow considered past its deadline and a re-solve on an
/// empty residual set are errors, never panics.
#[test]
fn online_error_paths_are_typed_not_panics() {
    let topo = builders::line(3);
    let power = x2(10.0);
    let mut ctx = SolverContext::from_network(&topo.network).unwrap();

    // A flow whose residual would have deadline <= release.
    let late = Flow::new(4, topo.hosts()[0], topo.hosts()[2], 0.0, 2.0, 1.0).unwrap();
    assert_eq!(
        residual_flow(&late, 2.0, 1.0, 0).unwrap_err(),
        SolveError::DeadlinePassed { flow: 4, time: 2.0 }
    );

    // A re-solve (and the feasibility probe) on an empty residual set.
    let empty = FlowSet::from_flows(vec![]).unwrap();
    let mut online = OnlineEngine::builder()
        .algorithm("dcfsr")
        .policy("resolve")
        .build()
        .unwrap();
    assert_eq!(
        online.run(&mut ctx, &empty, &power).unwrap_err(),
        SolveError::EmptyFlowSet
    );
    assert_eq!(
        fractionally_feasible(&mut ctx, &empty, &power, &Default::default(), 1e-3).unwrap_err(),
        SolveError::EmptyFlowSet
    );
}
