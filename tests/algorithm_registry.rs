//! Integration test of the unified `SolverContext` + `Algorithm` API: the
//! registry's full round trip (name → algorithm → name), and every
//! registered algorithm solving the same fat-tree k=4 workload on one
//! shared context, with every produced schedule passing
//! `Schedule::verify_on`.

use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::UniformWorkload;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders;

fn x2(capacity: f64) -> PowerFunction {
    PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
}

/// The registry round-trips every default name, and unknown names produce
/// the typed error.
#[test]
fn registry_round_trips_every_name() {
    let registry = AlgorithmRegistry::with_defaults();
    let names = registry.names();
    assert_eq!(
        names,
        vec![
            "dcfsr",
            "sp-mcf",
            "ecmp",
            "least-loaded",
            "consolidate",
            "greedy",
            "lb",
            "exact"
        ]
    );
    for name in names {
        let algorithm = registry.create(name).expect("default names resolve");
        assert_eq!(
            algorithm.name(),
            name,
            "round trip name -> algorithm -> name"
        );
        assert!(registry.contains(name));
    }
    assert!(matches!(
        registry.create("does-not-exist"),
        Err(SolveError::UnknownAlgorithm { .. })
    ));
}

/// Every registered algorithm runs on a fat-tree k=4 workload through one
/// shared context; every schedule verifies on the CSR view and respects
/// the fractional lower bound.
#[test]
fn every_registered_algorithm_solves_a_fat_tree_workload() {
    // The paper's Fig. 2 setup: builder-default link capacity 10, matched
    // by the power function, so even the full-rate greedy baseline
    // verifies (this seed's five flows never overlap in time).
    let topo = builders::fat_tree(4);
    let power = x2(10.0);
    // Small enough that even exhaustive enumeration (`exact`) fits its
    // default assignment budget.
    let flows = UniformWorkload::paper_defaults(5, 21)
        .generate(topo.hosts())
        .unwrap();
    let graph = topo.csr();

    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let registry = AlgorithmRegistry::with_defaults();
    let simulator = Simulator::new(power);

    let mut lower_bound = None;
    let mut energies = Vec::new();
    for name in registry.names() {
        let mut algorithm = registry.create(name).unwrap();
        algorithm.set_seed(21);
        let solution = algorithm
            .solve(&mut ctx, &flows, &power)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(solution.algorithm(), name);

        match &solution.schedule {
            Some(schedule) => {
                // The satellite contract: the schedule passes verify_on.
                schedule
                    .verify_on(&graph, &flows, &power)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                let report = simulator.run_ctx(&ctx, &flows, schedule);
                assert_eq!(report.deadline_misses, 0, "{name}");
                energies.push((name, solution.total_energy().unwrap()));
            }
            None => {
                assert_eq!(name, "lb", "only the relaxation is bound-only");
                lower_bound = solution.lower_bound;
            }
        }
    }

    let lb = lower_bound.expect("lb ran");
    assert!(lb > 0.0);
    for (name, energy) in energies {
        assert!(
            energy >= lb - 1e-6,
            "{name}: energy {energy} below the fractional lower bound {lb}"
        );
    }
}

/// The context is a long-lived session: repeated solves on the same warm
/// context give identical results to a fresh context per solve.
#[test]
fn warm_context_reuse_is_deterministic() {
    let topo = builders::fat_tree(4);
    let power = x2(10.0);
    let registry = AlgorithmRegistry::with_defaults();
    let mut warm = SolverContext::from_network(&topo.network).unwrap();
    for seed in [1u64, 2, 3] {
        let flows = UniformWorkload::paper_defaults(15, seed)
            .generate(topo.hosts())
            .unwrap();
        for name in ["dcfsr", "sp-mcf", "ecmp"] {
            let mut on_warm = registry.create(name).unwrap();
            on_warm.set_seed(seed);
            let warm_solution = on_warm.solve(&mut warm, &flows, &power).unwrap();

            let mut fresh_ctx = SolverContext::from_network(&topo.network).unwrap();
            let mut on_fresh = registry.create(name).unwrap();
            on_fresh.set_seed(seed);
            let fresh_solution = on_fresh.solve(&mut fresh_ctx, &flows, &power).unwrap();

            assert_eq!(
                warm_solution.schedule, fresh_solution.schedule,
                "{name} seed {seed}: warm context changed the result"
            );
            assert_eq!(warm_solution.lower_bound, fresh_solution.lower_bound);
        }
    }
}
