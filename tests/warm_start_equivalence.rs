//! Equivalence guard for the incremental warm-start pipeline (and its
//! pod-sharded execution): warm starts are an *acceleration*, never a
//! change of answer.
//!
//! Three contracts are pinned, each across 3 seeds × 2 topologies:
//!
//! * **Fingerprint shortcut** — re-solving the *identical* fractional
//!   relaxation with warm starts enabled returns the cached solution bit
//!   for bit (same lower-bound bit pattern), and the warm-enabled cold
//!   solve that seeds the cache is itself bit-identical to a plain cold
//!   solve.
//! * **Dirty invalidation** — marking every link dirty denies both the
//!   shortcut and the row seeding, so the re-solve degenerates to the
//!   cold path, bit for bit.
//! * **Shard-width invariance** — a warm-started, pod-sharded online run
//!   produces the byte-identical outcome (schedule, decisions, energy,
//!   counters) at shard widths 1, 2 and 4: the partition and the
//!   per-bucket seeds depend only on the event index, never on the
//!   worker-thread count. Alongside, a warm run misses exactly as many
//!   deadlines as a cold run and lands within Frank–Wolfe tolerance of
//!   its energy — warm seeding moves the iterate's starting point, not
//!   the feasible set.

use deadline_dcn::core::online::{OnlineEngine, OnlineOutcome, ShardMode};
use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::{ArrivalProcess, UniformWorkload};
use deadline_dcn::flow::{Flow, FlowSet};
use deadline_dcn::power::PowerFunction;
use deadline_dcn::topology::builders::{self, BuiltTopology};
use deadline_dcn::topology::LinkId;

fn topologies() -> Vec<BuiltTopology> {
    vec![builders::fat_tree(4), builders::leaf_spine(4, 2, 6)]
}

fn x2(capacity: f64) -> PowerFunction {
    PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
}

/// A single-interval workload: every flow shares the `[0, 10]` window, so
/// the interval relaxation solves exactly one FMCF problem and repeated
/// `lb` solves present the *identical* problem to the warm cache.
fn common_window(topo: &BuiltTopology, seed: u64) -> FlowSet {
    let base = UniformWorkload::paper_defaults(12, seed)
        .generate(topo.hosts())
        .unwrap();
    FlowSet::from_flows(
        base.iter()
            .map(|f| Flow::new(f.id, f.src, f.dst, 0.0, 10.0, f.volume).unwrap())
            .collect(),
    )
    .unwrap()
}

/// The fingerprint shortcut: warm cold-seed == plain cold, and the warm
/// re-solve of the identical problem == both, all bit for bit.
#[test]
fn warm_resolve_of_the_identical_problem_is_bit_identical() {
    let power = x2(10.0);
    let registry = AlgorithmRegistry::with_defaults();
    for topo in topologies() {
        for seed in [1u64, 17, 404] {
            let flows = common_window(&topo, seed);
            let mut ctx = SolverContext::from_network(&topo.network).unwrap();
            let mut lb = registry.create("lb").unwrap();

            let cold = lb.solve(&mut ctx, &flows, &power).unwrap();
            ctx.set_warm_start(true);
            assert!(ctx.warm_start());
            let warm_first = lb.solve(&mut ctx, &flows, &power).unwrap();
            let warm_second = lb.solve(&mut ctx, &flows, &power).unwrap();

            let bits = |s: &Solution| s.lower_bound.unwrap().to_bits();
            assert_eq!(
                bits(&cold),
                bits(&warm_first),
                "{} seed {seed}: the cache-seeding solve must be the cold path",
                topo.name
            );
            assert_eq!(
                bits(&warm_first),
                bits(&warm_second),
                "{} seed {seed}: the identical re-solve must hit the shortcut",
                topo.name
            );
        }
    }
}

/// Marking every link dirty invalidates both the shortcut and the row
/// seeding: the warm re-solve degenerates to the cold path, bit for bit.
#[test]
fn dirty_links_invalidate_the_cache_back_to_the_cold_path() {
    let power = x2(10.0);
    let registry = AlgorithmRegistry::with_defaults();
    for topo in topologies() {
        for seed in [5u64, 23, 999] {
            let flows = common_window(&topo, seed);
            let mut ctx = SolverContext::from_network(&topo.network).unwrap();
            let mut lb = registry.create("lb").unwrap();

            let cold = lb.solve(&mut ctx, &flows, &power).unwrap();
            ctx.set_warm_start(true);
            lb.solve(&mut ctx, &flows, &power).unwrap(); // seed the cache
            let all_links: Vec<LinkId> = (0..ctx.graph().link_count()).map(LinkId).collect();
            ctx.mark_dirty_links(all_links);
            let invalidated = lb.solve(&mut ctx, &flows, &power).unwrap();

            assert_eq!(
                cold.lower_bound.unwrap().to_bits(),
                invalidated.lower_bound.unwrap().to_bits(),
                "{} seed {seed}: an all-dirty re-solve must be the cold path",
                topo.name
            );
        }
    }
}

/// One warm-started, pod-sharded online run per shard width; all widths
/// must agree byte for byte.
fn run_sharded(
    topo: &BuiltTopology,
    flows: &FlowSet,
    power: &PowerFunction,
    seed: u64,
    shards: ShardMode,
) -> OnlineOutcome {
    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let mut engine = OnlineEngine::builder()
        .algorithm("sp-mcf")
        .policy("resolve")
        .warm_start(true)
        .shards(shards)
        .seed(seed)
        .build()
        .unwrap();
    engine.run(&mut ctx, flows, power).unwrap()
}

#[test]
fn warm_sharded_runs_are_bit_identical_across_shard_widths() {
    let power = x2(10.0);
    for topo in topologies() {
        for seed in [2u64, 13, 977] {
            let base = UniformWorkload::paper_defaults(14, seed)
                .generate(topo.hosts())
                .unwrap();
            let flows = ArrivalProcess::with_load(2.0, seed).apply(&base).unwrap();
            let one = run_sharded(&topo, &flows, &power, seed, ShardMode::Fixed(1));
            for width in [2usize, 4] {
                let wide = run_sharded(&topo, &flows, &power, seed, ShardMode::Fixed(width));
                let tag = format!("{} seed {seed} width {width}", topo.name);
                assert_eq!(one.schedule, wide.schedule, "{tag}: schedules diverge");
                assert_eq!(
                    one.report.decisions, wide.report.decisions,
                    "{tag}: decisions diverge"
                );
                assert_eq!(
                    one.report.online_energy, wide.report.online_energy,
                    "{tag}: energies diverge"
                );
                assert_eq!(one.report.events, wide.report.events, "{tag}: events");
                assert_eq!(one.report.resolves, wide.report.resolves, "{tag}: resolves");
                assert_eq!(
                    one.report.solve_failures, wide.report.solve_failures,
                    "{tag}: solve failures"
                );
            }
        }
    }
}

/// A warm engine run misses exactly as many deadlines as a cold run and
/// stays within Frank–Wolfe tolerance of its energy: seeding changes the
/// iterate's starting point, never the feasible set.
#[test]
fn warm_runs_match_cold_runs_on_misses_and_energy() {
    let power = x2(10.0);
    for topo in topologies() {
        for seed in [7u64, 21, 1000] {
            let base = UniformWorkload::paper_defaults(14, seed)
                .generate(topo.hosts())
                .unwrap();
            let flows = ArrivalProcess::with_load(2.0, seed).apply(&base).unwrap();

            let run = |warm: bool| {
                let mut ctx = SolverContext::from_network(&topo.network).unwrap();
                let mut engine = OnlineEngine::builder()
                    .algorithm("dcfsr")
                    .policy("resolve")
                    .warm_start(warm)
                    .seed(seed)
                    .build()
                    .unwrap();
                engine.run(&mut ctx, &flows, &power).unwrap()
            };
            let cold = run(false);
            let warm = run(true);

            let tag = format!("{} seed {seed}", topo.name);
            assert_eq!(
                cold.report.missed(),
                warm.report.missed(),
                "{tag}: warm starts must not change the deadline-miss count"
            );
            assert_eq!(
                cold.report.solve_failures, warm.report.solve_failures,
                "{tag}: solve failures"
            );
            assert_eq!(cold.report.events, warm.report.events, "{tag}: events");
            let relative = (cold.report.online_energy - warm.report.online_energy).abs()
                / cold.report.online_energy.max(1e-12);
            assert!(
                relative <= 5e-2,
                "{tag}: warm energy {} vs cold {} ({relative:.2e} relative)",
                warm.report.online_energy,
                cold.report.online_energy
            );
        }
    }
}
