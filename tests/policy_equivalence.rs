//! Refactor guard for the event-driven online engine — the same role
//! `csr_equivalence.rs` played for the CSR core: the `resolve` policy of
//! the new `OnlineEngine` must reproduce the **pre-refactor**
//! `OnlineScheduler` loop **bit for bit** on staggered arrivals — same
//! stitched schedule struct, same energy, same per-flow decisions, same
//! event/re-solve counters — across 3 seeds × 2 topologies and both
//! admission rules.
//!
//! The reference below is the pre-split rolling-horizon loop, carried
//! over verbatim (modulo the public helper imports) from
//! `crates/core/src/online.rs` as it stood before the engine/policy
//! split. It iterates the arrival events directly — no event queue, no
//! policy indirection — which is exactly what the engine must degenerate
//! to when the policy always answers `Resolve`.

use std::collections::BTreeMap;

use deadline_dcn::core::online::{
    fractionally_feasible, residual_flow, AdmissionRule, FlowDecision, OnlineEngine,
};
use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::{ArrivalProcess, UniformWorkload};
use deadline_dcn::flow::{FlowId, FlowSet};
use deadline_dcn::power::{PowerFunction, RateProfile};
use deadline_dcn::topology::builders::{self, BuiltTopology};
use deadline_dcn::topology::LinkId;

const VOLUME_TOL: f64 = 1e-9;

#[derive(Debug, Clone, Copy, Default)]
struct FlowState {
    admitted: bool,
    in_flight: bool,
    missed: bool,
    delivered: f64,
}

/// What the legacy loop produced, in comparable form.
struct LegacyOutcome {
    schedule: Schedule,
    decisions: Vec<FlowDecision>,
    events: usize,
    resolves: usize,
    solve_failures: usize,
    online_energy: f64,
}

/// The pre-refactor `OnlineScheduler::run`, verbatim.
fn legacy_run(
    algorithm: &mut dyn Algorithm,
    admission: &AdmissionRule,
    seed: u64,
    ctx: &mut SolverContext<'_>,
    flows: &FlowSet,
    power: &PowerFunction,
) -> Result<LegacyOutcome, SolveError> {
    ctx.validate_flow_shape(flows)?;
    let events = arrival_events(flows);
    let mut state = vec![FlowState::default(); flows.len()];
    let mut commits: Vec<(FlowId, Vec<FlowSchedule>)> = Vec::new();
    let mut commit_index: BTreeMap<FlowId, usize> = BTreeMap::new();
    let mut resolves = 0usize;
    let mut solve_failures = 0usize;

    for (k, (now, arrivals)) in events.iter().enumerate() {
        let next = events.get(k + 1).map(|(t, _)| *t);

        // Retire in-flight flows: fully served, or out of time.
        for (id, s) in state.iter_mut().enumerate() {
            if !s.in_flight {
                continue;
            }
            let flow = flows.flow(id);
            if s.delivered >= flow.volume * (1.0 - VOLUME_TOL) {
                s.in_flight = false;
            } else if flow.deadline <= *now {
                s.in_flight = false;
                s.missed = true;
            }
        }

        // Admission of the new arrivals, in flow-id order.
        for &id in arrivals {
            let admit = match admission {
                AdmissionRule::AdmitAll => true,
                AdmissionRule::RejectInfeasible { config, slack } => {
                    let (candidate, _) = residual_instance(flows, &state, *now, Some(id))?;
                    fractionally_feasible(ctx, &candidate, power, config, *slack)?
                }
            };
            if admit {
                state[id].admitted = true;
                state[id].in_flight = true;
            }
        }

        // The residual instance of this event.
        let (residual, map) = match residual_instance(flows, &state, *now, None) {
            Ok(pair) => pair,
            Err(SolveError::EmptyFlowSet) => continue, // nothing to re-solve
            Err(e) => return Err(e),
        };

        algorithm.set_seed(seed.wrapping_add(k as u64));
        resolves += 1;
        let solution = match algorithm.solve(ctx, &residual, power) {
            Ok(solution) => solution,
            Err(_) => {
                solve_failures += 1;
                continue;
            }
        };
        let schedule = solution.schedule.expect("benchmark algorithms schedule");

        // Commit the slice of the fresh schedule up to the next event (or
        // all of it after the last event).
        for fs in schedule.flow_schedules() {
            let orig = map[fs.flow];
            let committed = match next {
                None => {
                    let mut clone = fs.clone();
                    clone.flow = orig;
                    clone
                }
                Some(until) => clip_flow_schedule(fs, orig, *now, until),
            };
            if committed.profile.is_empty() && committed.link_profiles.is_empty() {
                continue;
            }
            state[orig].delivered += committed.profile.volume();
            match commit_index.get(&orig) {
                Some(&slot) => commits[slot].1.push(committed),
                None => {
                    commit_index.insert(orig, commits.len());
                    commits.push((orig, vec![committed]));
                }
            }
        }
    }

    // Final accounting: an admitted flow that never received its full
    // volume missed its deadline.
    for (id, s) in state.iter_mut().enumerate() {
        if s.admitted && s.delivered < flows.flow(id).volume * (1.0 - 1e-6) {
            s.missed = true;
        }
    }

    let schedule = stitch(commits, flows.horizon());
    let online_energy = schedule.energy(power).total();
    let decisions = state
        .iter()
        .enumerate()
        .map(|(id, s)| FlowDecision {
            flow: id,
            admitted: s.admitted,
            delivered: s.delivered,
            missed: s.missed,
            failure_missed: false,
        })
        .collect();
    Ok(LegacyOutcome {
        schedule,
        decisions,
        events: events.len(),
        resolves,
        solve_failures,
        online_energy,
    })
}

fn arrival_events(flows: &FlowSet) -> Vec<(f64, Vec<FlowId>)> {
    let mut order: Vec<FlowId> = (0..flows.len()).collect();
    order.sort_by(|&a, &b| {
        flows
            .flow(a)
            .release
            .partial_cmp(&flows.flow(b).release)
            .expect("flow times are finite")
            .then(a.cmp(&b))
    });
    let mut events: Vec<(f64, Vec<FlowId>)> = Vec::new();
    for id in order {
        let release = flows.flow(id).release;
        match events.last_mut() {
            Some((t, ids)) if *t == release => ids.push(id),
            _ => events.push((release, vec![id])),
        }
    }
    events
}

fn residual_instance(
    flows: &FlowSet,
    state: &[FlowState],
    now: f64,
    extra: Option<FlowId>,
) -> Result<(FlowSet, Vec<FlowId>), SolveError> {
    let mut map: Vec<FlowId> = state
        .iter()
        .enumerate()
        .filter(|&(id, s)| s.in_flight || extra == Some(id))
        .map(|(id, _)| id)
        .collect();
    map.sort_unstable();
    if map.is_empty() {
        return Err(SolveError::EmptyFlowSet);
    }
    let mut residual = Vec::with_capacity(map.len());
    for (rid, &orig) in map.iter().enumerate() {
        let flow = flows.flow(orig);
        residual.push(residual_flow(
            flow,
            now,
            flow.volume - state[orig].delivered,
            rid,
        )?);
    }
    let set = FlowSet::from_flows(residual).map_err(SolveError::from)?;
    Ok((set, map))
}

fn clip_flow_schedule(fs: &FlowSchedule, orig: FlowId, from: f64, to: f64) -> FlowSchedule {
    let link_profiles: BTreeMap<LinkId, RateProfile> = fs
        .link_profiles
        .iter()
        .map(|(&link, profile)| (link, profile.restricted(from, to)))
        .filter(|(_, profile)| profile.is_active())
        .collect();
    FlowSchedule::per_link(
        orig,
        fs.path.clone(),
        fs.profile.restricted(from, to),
        link_profiles,
    )
}

fn stitch(commits: Vec<(FlowId, Vec<FlowSchedule>)>, horizon: (f64, f64)) -> Schedule {
    let mut flow_schedules = Vec::with_capacity(commits.len());
    for (flow, mut parts) in commits {
        if parts.len() == 1 {
            flow_schedules.push(parts.pop().expect("one part"));
            continue;
        }
        let path = parts.last().expect("non-empty parts").path.clone();
        let mut profile = RateProfile::new();
        let mut link_profiles: BTreeMap<LinkId, RateProfile> = BTreeMap::new();
        for part in &parts {
            profile.merge(&part.profile);
            for (&link, slice) in &part.link_profiles {
                link_profiles.entry(link).or_default().merge(slice);
            }
        }
        flow_schedules.push(FlowSchedule::per_link(flow, path, profile, link_profiles));
    }
    Schedule::new(flow_schedules, horizon)
}

fn topologies() -> Vec<BuiltTopology> {
    vec![builders::fat_tree(4), builders::leaf_spine(4, 2, 6)]
}

/// Runs one (topology, seed, algorithm, admission) instance through both
/// implementations and asserts bit identity.
fn assert_resolve_matches_legacy(
    topo: &BuiltTopology,
    seed: u64,
    algorithm: &str,
    admission: AdmissionRule,
) {
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
    let registry = AlgorithmRegistry::with_defaults();
    // Staggered arrivals: the Poisson rewrite guarantees multiple arrival
    // events, which is the regime where the two loops could diverge.
    let base = UniformWorkload::paper_defaults(14, seed)
        .generate(topo.hosts())
        .unwrap();
    let flows = ArrivalProcess::with_load(2.0, seed).apply(&base).unwrap();
    let mut ctx = SolverContext::from_network(&topo.network).unwrap();

    let legacy = legacy_run(
        registry.create(algorithm).unwrap().as_mut(),
        &admission,
        seed,
        &mut ctx,
        &flows,
        &power,
    )
    .unwrap();

    let mut engine = OnlineEngine::builder()
        .algorithm(algorithm)
        .policy("resolve")
        .admission(admission)
        .seed(seed)
        .build()
        .unwrap();
    let new = engine.run(&mut ctx, &flows, &power).unwrap();

    let tag = format!("{} seed {seed} {algorithm}", topo.name);
    assert!(new.report.events > 1, "{tag}: arrivals must be staggered");
    assert_eq!(legacy.schedule, new.schedule, "{tag}: schedules diverge");
    assert_eq!(
        legacy.online_energy, new.report.online_energy,
        "{tag}: energies diverge"
    );
    assert_eq!(
        legacy.decisions, new.report.decisions,
        "{tag}: decisions diverge"
    );
    assert_eq!(legacy.events, new.report.events, "{tag}: event counts");
    assert_eq!(legacy.resolves, new.report.resolves, "{tag}: resolves");
    assert_eq!(
        legacy.solve_failures, new.report.solve_failures,
        "{tag}: solve failures"
    );
}

/// The randomized primary (dcfsr) under AdmitAll: 3 seeds × 2 topologies.
#[test]
fn resolve_is_bit_identical_to_the_prerefactor_loop_dcfsr() {
    for topo in topologies() {
        for seed in [2u64, 13, 977] {
            assert_resolve_matches_legacy(&topo, seed, "dcfsr", AdmissionRule::AdmitAll);
        }
    }
}

/// A deterministic baseline (sp-mcf) under both admission rules — the
/// admission probe shares the warm context, so its Frank–Wolfe scratch
/// reuse must not perturb the re-solves either.
#[test]
fn resolve_is_bit_identical_under_both_admission_rules_sp_mcf() {
    for topo in topologies() {
        for seed in [5u64, 29, 311] {
            assert_resolve_matches_legacy(&topo, seed, "sp-mcf", AdmissionRule::AdmitAll);
            assert_resolve_matches_legacy(
                &topo,
                seed,
                "sp-mcf",
                AdmissionRule::reject_infeasible(Default::default()),
            );
        }
    }
}
