//! Integration tests on the adversarial parallel-link gadgets from the
//! paper's hardness proofs (Theorems 2 and 3).
//!
//! These instances are where routing decisions matter the most: all flows
//! share the same endpoints and one unit of time, so the only question is
//! how to pack them onto the parallel links. The tests check that the
//! algorithms remain correct (deadlines met, lower bound respected) and
//! that the qualitative behaviour from the reduction holds: concentrating
//! everything on one link (shortest-path routing) costs far more than
//! spreading the load, and the spread solution approaches the analytic
//! optimum `m * alpha * mu * B^alpha` when `R_opt = B`.

use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::hardness;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders;

#[test]
fn three_partition_gadget_spreads_load_close_to_the_analytic_optimum() {
    // m = 4 triples, each summing to B = 9; k = 8 parallel links.
    let m = 4;
    let b = 9.0_f64;
    let alpha = 2.0;
    let mu = 1.0;
    // sigma chosen so that R_opt = B (the reduction's setting).
    let sigma = mu * (alpha - 1.0) * b.powf(alpha);
    let power = PowerFunction::new(sigma, mu, alpha, 2.0 * b).unwrap();

    let topo = builders::parallel(8, 2.0 * b);
    let values = hardness::satisfiable_three_partition(m, b);
    let flows = hardness::three_partition_flows(topo.source(), topo.sink(), &values).unwrap();

    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let rs = Dcfsr::new(RandomScheduleConfig {
        max_rounding_attempts: 50,
        ..Default::default()
    })
    .solve(&mut ctx, &flows, &power)
    .unwrap();
    ctx.verify(rs.schedule.as_ref().unwrap(), &flows, &power)
        .unwrap();

    // The analytic optimum of the reduction: m links at rate B for one unit
    // of time, i.e. m * alpha * mu * B^alpha.
    let optimum = m as f64 * alpha * mu * b.powf(alpha);
    let rs_energy = rs.total_energy().unwrap();
    assert!(
        rs_energy >= optimum - 1e-6,
        "no schedule can beat the reduction's optimum: {rs_energy} < {optimum}"
    );
    // Randomized rounding will not find the perfect partition, but it must
    // stay within a small factor of it on this small instance.
    assert!(
        rs_energy <= 3.0 * optimum,
        "Random-Schedule energy {rs_energy} is unreasonably far from the optimum {optimum}"
    );

    // Shortest-path routing concentrates all 3m flows on one link; its
    // dynamic energy alone is (mB)^alpha versus the spread m * B^alpha.
    let sp = RoutedMcf::shortest_path()
        .solve(&mut ctx, &flows, &power)
        .unwrap();
    let sp_energy = sp.total_energy().unwrap();
    assert!(
        sp_energy > rs_energy,
        "concentrating all flows on one link ({sp_energy}) must cost more than spreading ({rs_energy})"
    );
}

#[test]
fn partition_gadget_deadlines_hold_even_at_capacity() {
    // Theorem 3 setting: capacity C = B/2, flows summing to B, one unit of
    // time. A feasible schedule must use at least two links.
    let b = 12.0_f64;
    let power = PowerFunction::speed_scaling_only(1.0, 3.0, b / 2.0);
    let topo = builders::parallel(4, b / 2.0);
    let values = [3.0, 3.0, 2.0, 2.0, 1.0, 1.0];
    assert_eq!(values.iter().sum::<f64>(), b);
    let flows = hardness::partition_flows(topo.source(), topo.sink(), &values).unwrap();

    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let rs = Dcfsr::new(RandomScheduleConfig {
        max_rounding_attempts: 100,
        ..Default::default()
    })
    .solve(&mut ctx, &flows, &power)
    .unwrap();
    let report = Simulator::new(power).run_ctx(&ctx, &flows, rs.schedule.as_ref().unwrap());
    assert_eq!(report.deadline_misses, 0);
    // At least two distinct parallel links must carry traffic.
    assert!(report.active_link_count() >= 2);
    assert!(report.energy.total() >= rs.lower_bound.unwrap() - 1e-6);
}

#[test]
fn lower_bound_matches_perfect_split_on_the_gadget() {
    // With sigma = 0 and k parallel links, the fractional optimum splits the
    // total demand evenly: LB = k * (D_total/k)^alpha over one unit of time.
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 100.0);
    let topo = builders::parallel(4, 100.0);
    let values = [4.0, 4.0, 4.0, 4.0];
    let flows = hardness::partition_flows(topo.source(), topo.sink(), &values).unwrap();

    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let rs = Dcfsr::default().solve(&mut ctx, &flows, &power).unwrap();
    let lb = rs.lower_bound.unwrap();
    let expected = 4.0 * (16.0_f64 / 4.0_f64).powf(2.0);
    assert!(
        (lb - expected).abs() < 0.05 * expected,
        "LB {lb} should approach the even split cost {expected}"
    );
    // The perfect rounding assigns one flow per link and matches the bound.
    assert!(rs.total_energy().unwrap() >= lb - 1e-6);
}
