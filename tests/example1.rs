//! Integration test: the paper's Example 1 end to end through the public
//! API of the umbrella crate (routing, scheduling, verification, energy and
//! simulation all agree with the closed form).

use deadline_dcn::core::{most_critical_first, Algorithm, RoutedMcf, Routing, SolverContext};
use deadline_dcn::flow::FlowSet;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn example1_closed_form_through_public_api() {
    let topo = builders::line_with_capacity(3, 1e9);
    let (a, b, c) = (topo.hosts()[0], topo.hosts()[1], topo.hosts()[2]);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 1e9);
    let flows = FlowSet::from_tuples([(a, c, 2.0, 4.0, 6.0), (a, b, 1.0, 3.0, 8.0)]).unwrap();

    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let solution = RoutedMcf::shortest_path()
        .solve(&mut ctx, &flows, &power)
        .unwrap();
    let schedule = solution.schedule.as_ref().unwrap();
    ctx.verify(schedule, &flows, &power).unwrap();

    let s2 = (8.0 + 6.0 * 2f64.sqrt()) / 3.0;
    let s1 = s2 / 2f64.sqrt();
    assert!(close(
        schedule.flow_schedule(0).unwrap().profile.max_rate(),
        s1
    ));
    assert!(close(
        schedule.flow_schedule(1).unwrap().profile.max_rate(),
        s2
    ));

    let expected_energy = 2.0 * 6.0 * s1 + 8.0 * s2;
    assert!(close(schedule.energy(&power).total(), expected_energy));

    // The simulator measures the same energy and reports zero misses.
    let report = Simulator::new(power).run_ctx(&ctx, &flows, schedule);
    assert!(report.all_good());
    assert!(close(report.energy.total(), expected_energy));
}

#[test]
fn example1_sp_mcf_is_the_same_since_routes_are_forced() {
    // On a line there is a single route per flow, so the registry's
    // `sp-mcf` algorithm equals the schedule computed from explicit
    // shortest paths through the DCFS building block.
    let topo = builders::line_with_capacity(3, 1e9);
    let (a, b, c) = (topo.hosts()[0], topo.hosts()[1], topo.hosts()[2]);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 1e9);
    let flows = FlowSet::from_tuples([(a, c, 2.0, 4.0, 6.0), (a, b, 1.0, 3.0, 8.0)]).unwrap();

    let mut ctx = SolverContext::from_network(&topo.network).unwrap();
    let via_algorithm = RoutedMcf::shortest_path()
        .solve(&mut ctx, &flows, &power)
        .unwrap();
    let paths = Routing::ShortestPath
        .compute_on(ctx.graph(), &flows)
        .unwrap();
    let direct = most_critical_first(&topo.network, &flows, &paths, &power).unwrap();
    assert!(close(
        via_algorithm.total_energy().unwrap(),
        direct.energy(&power).total()
    ));
}

#[test]
fn example1_energy_scales_with_alpha() {
    // Re-running Example 1 with f(x) = x^4 uses the virtual weights
    // w' = w * |P|^(1/4); the optimum changes but remains feasible and at
    // least as expensive as alpha = 2 for rates above 1.
    let topo = builders::line_with_capacity(3, 1e9);
    let (a, b, c) = (topo.hosts()[0], topo.hosts()[1], topo.hosts()[2]);
    let flows = FlowSet::from_tuples([(a, c, 2.0, 4.0, 6.0), (a, b, 1.0, 3.0, 8.0)]).unwrap();
    let paths = Routing::ShortestPath
        .compute_on(&topo.csr(), &flows)
        .unwrap();

    let x2 = PowerFunction::speed_scaling_only(1.0, 2.0, 1e9);
    let x4 = PowerFunction::speed_scaling_only(1.0, 4.0, 1e9);
    let e2 = most_critical_first(&topo.network, &flows, &paths, &x2)
        .unwrap()
        .energy(&x2)
        .total();
    let e4 = most_critical_first(&topo.network, &flows, &paths, &x4)
        .unwrap()
        .energy(&x4)
        .total();
    assert!(e4 > e2);
}
