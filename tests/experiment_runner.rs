//! Integration tests of the experiment-runner subsystem in `dcn-bench`:
//! the determinism contract (same seed ⇒ byte-identical JSON artifact
//! regardless of the worker-thread count) and a golden-file pin of the
//! report schema, so any accidental change to the artifact layout fails CI
//! instead of silently breaking downstream consumers of `BENCH_*.json`.

use dcn_bench::report::{ExperimentReport, InstanceRecord, SweepPoint, SCHEMA_VERSION};
use dcn_bench::runner::{run_indexed, ExperimentCli};
use dcn_bench::{Experiment, InstanceInput, InstanceSpec};
use dcn_power::PowerFunction;
use dcn_sim::SimSummary;
use dcn_topology::builders;
use std::path::Path;

/// A small but real experiment: 2 flow counts x 2 seeds on a k=4 fat-tree.
fn small_experiment() -> Experiment {
    let mut exp = Experiment::new("itest", vec![builders::fat_tree(4)]);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
    for flows in [8usize, 12] {
        for run in 0..2u64 {
            exp.push(InstanceSpec {
                group: "x^2".to_string(),
                x: flows as f64,
                topology: 0,
                power,
                input: InstanceInput::Uniform { flows },
                seed: 1000 * flows as u64 + run,
                extra: vec![("run".to_string(), run as f64)],
            });
        }
    }
    exp
}

/// Same seed, different thread counts: the JSON artifact must be
/// byte-identical. This is the contract that lets CI diff `BENCH_*.json`
/// files across machines and `--threads` settings.
#[test]
fn report_is_byte_identical_across_thread_counts() {
    let exp = small_experiment();
    let serial = exp.run(1).report.to_json();
    for threads in [2, 3, 8] {
        let parallel = exp.run(threads).report.to_json();
        assert_eq!(
            serial, parallel,
            "JSON artifact changed between --threads 1 and --threads {threads}"
        );
    }
    // And the artifact actually validates.
    ExperimentReport::from_json(&serial).expect("artifact validates");
}

/// The runner itself returns results in input order for any pool size.
#[test]
fn run_indexed_is_order_and_thread_count_invariant() {
    let serial: Vec<u64> = run_indexed(23, 1, |i| (i as u64).wrapping_mul(0x9e3779b9));
    for threads in [2, 5, 16] {
        assert_eq!(
            run_indexed(23, threads, |i| (i as u64).wrapping_mul(0x9e3779b9)),
            serial
        );
    }
}

/// A fully synthetic report with every field populated, used to pin the
/// schema. Built from constants so the golden file never depends on
/// solver numerics.
fn golden_report() -> ExperimentReport {
    let mut report = ExperimentReport::new("golden", "fat-tree(k=4)");
    report.workload = Some(dcn_flow::workload::UniformWorkload::paper_defaults(8, 7));
    report.instances.push(InstanceRecord {
        label: "x^2 x=8 seed=8000".to_string(),
        flows: 8,
        seed: 8000,
        alpha: 2.0,
        lower_bound: 100.0,
        rs_energy: 105.5,
        sp_energy: 120.25,
        rs_normalized: 1.055,
        sp_normalized: 1.2025,
        deadline_misses: 0,
        rs_capacity_excess: 0.0,
        rs_sim: Some(SimSummary {
            deadline_misses: 0,
            capacity_violations: 0,
            max_utilization: 0.75,
            active_links: 12,
            energy: 105.5,
        }),
        sp_sim: None,
        solve_wall_ms: Some(42.5),
        intervals_per_second: Some(160.0),
        requests_per_second: None,
        p99_latency_ms: None,
        extra: vec![("run".to_string(), 0.0)],
    });
    // An online-style exemplar: the event-driven sweep uses three-part
    // `"<topology>|<policy>|<admission>"` group labels and records the
    // OnlineReport counters in `extra`. Pinned here so a change to that
    // layout shows up as schema drift, not as a silent consumer break.
    report.instances.push(InstanceRecord {
        label: "fat-tree(k=4)|hybrid|admit-all load=2 seed=20000".to_string(),
        flows: 10,
        seed: 20000,
        alpha: 2.0,
        lower_bound: 80.0,
        rs_energy: 92.5,
        sp_energy: 88.0,
        rs_normalized: 1.15625,
        sp_normalized: 1.1,
        deadline_misses: 0,
        rs_capacity_excess: 0.0,
        rs_sim: Some(SimSummary {
            deadline_misses: 0,
            capacity_violations: 0,
            max_utilization: 0.5,
            active_links: 10,
            energy: 92.5,
        }),
        sp_sim: Some(SimSummary {
            deadline_misses: 0,
            capacity_violations: 0,
            max_utilization: 0.5,
            active_links: 10,
            energy: 88.0,
        }),
        solve_wall_ms: None,
        intervals_per_second: None,
        requests_per_second: None,
        p99_latency_ms: None,
        extra: vec![
            ("load".to_string(), 2.0),
            ("admission".to_string(), 0.0),
            ("events".to_string(), 14.0),
            ("resolves".to_string(), 2.0),
            ("solve_failures".to_string(), 0.0),
            ("admitted".to_string(), 10.0),
            ("rejected".to_string(), 0.0),
            ("missed".to_string(), 0.0),
            ("run".to_string(), 0.0),
        ],
    });
    // A serve-style exemplar: the scheduler-as-a-service bench audits the
    // daemon's committed plans and is the only producer of the schema-v3
    // serving columns (`requests_per_second`, `p99_latency_ms`, both
    // `--timings`-only). Pinned with the columns populated so the v3
    // layout is under the golden.
    report.instances.push(InstanceRecord {
        label: "fat-tree:8|edf|admit-all flows=1000 seed=10000".to_string(),
        flows: 1000,
        seed: 10000,
        alpha: 2.0,
        lower_bound: 250.0,
        rs_energy: 300.0,
        sp_energy: 450.0,
        rs_normalized: 1.2,
        sp_normalized: 1.8,
        deadline_misses: 0,
        rs_capacity_excess: 0.0,
        rs_sim: None,
        sp_sim: None,
        solve_wall_ms: None,
        intervals_per_second: None,
        requests_per_second: Some(25_000.0),
        p99_latency_ms: Some(0.45),
        extra: vec![
            ("requests".to_string(), 1000.0),
            ("admitted".to_string(), 998.0),
            ("rejected".to_string(), 2.0),
            ("busy".to_string(), 0.0),
            ("missed".to_string(), 0.0),
            ("run".to_string(), 0.0),
        ],
    });
    report.points.push(SweepPoint {
        group: "x^2".to_string(),
        x: 8.0,
        rs: 1.055,
        sp: 1.2025,
        runs: 1,
    });
    report.points.push(SweepPoint {
        group: "fat-tree(k=4)|hybrid|admit-all".to_string(),
        x: 2.0,
        rs: 1.15625,
        sp: 1.1,
        runs: 1,
    });
    report.points.push(SweepPoint {
        group: "fat-tree:8|edf|admit-all".to_string(),
        x: 1000.0,
        rs: 1.2,
        sp: 1.8,
        runs: 1,
    });
    report
}

/// Golden-file pin of the JSON schema. Regenerate the golden file with
/// `BLESS_GOLDEN=1 cargo test --test experiment_runner` after an
/// intentional schema change (and bump `SCHEMA_VERSION`).
#[test]
fn report_schema_matches_golden_file() {
    let report = golden_report();
    report.validate().expect("golden report validates");
    let rendered = report.to_json();

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/report_schema_golden.json");
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("golden file writes");
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file exists (regenerate with BLESS_GOLDEN=1)");
    assert_eq!(
        rendered, golden,
        "report schema drifted from tests/data/report_schema_golden.json; \
         if intentional, bump SCHEMA_VERSION and re-bless"
    );

    // The golden artifact round-trips and still claims the current schema.
    let parsed = ExperimentReport::from_json(&golden).expect("golden parses");
    assert_eq!(parsed.schema_version, SCHEMA_VERSION);
    assert_eq!(parsed, report);
}

/// The shared CLI accepts the documented flag set (spot-check from the
/// umbrella crate so a binary-facing regression fails tier-1 tests).
#[test]
fn shared_cli_round_trips_flags() {
    let args: Vec<String> = ["--quick", "--threads", "2", "--json-out"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cli = ExperimentCli::from_args("fig2", &args).expect("flags parse");
    assert!(cli.quick);
    assert_eq!(cli.threads, 2);
    assert_eq!(cli.json_out.as_deref(), Some(Path::new("BENCH_fig2.json")));
    assert!(ExperimentCli::from_args("fig2", &["--nope".to_string()]).is_err());
}
