//! Equivalence properties of the CSR graph core and the arena-reuse
//! shortest-path engine against the **pre-refactor reference
//! implementations** (seeded proptest).
//!
//! The refactor's contract is that moving the read path from the
//! `Vec<Vec<_>>` adjacency lists to [`GraphCsr`] + [`ShortestPathEngine`]
//! changes *nothing* observable: on random multigraphs (parallel links,
//! zero-weight ties, forbidden links, asymmetric extras) the weighted
//! shortest paths, BFS paths and full Frank–Wolfe F-MCF solutions must be
//! identical — bit for bit, including deterministic tie-breaking — to what
//! the original adjacency-list algorithms produced. The originals are
//! preserved verbatim in [`reference`] below as the oracle.

use deadline_dcn::power::PowerFunction;
use deadline_dcn::solver::fmcf::{
    Commodity, FlowCost, FmcfProblem, FmcfSolverConfig, PowerFlowCost,
};
#[allow(deprecated)] // the deprecated one-shot wrapper is this suite's pinned oracle
use deadline_dcn::topology::dijkstra;
use deadline_dcn::topology::{GraphCsr, LinkId, Network, NodeId, NodeKind, ShortestPathEngine};
use proptest::prelude::*;

/// The pre-refactor adjacency-list algorithms, copied verbatim (modulo
/// visibility) from `dcn-topology`/`dcn-solver` as they were before the
/// CSR core landed.
mod reference {
    use super::*;
    use deadline_dcn::topology::Path;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct HeapEntry {
        dist: f64,
        node: NodeId,
    }

    impl Eq for HeapEntry {}

    impl Ord for HeapEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .dist
                .partial_cmp(&self.dist)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.node.index().cmp(&self.node.index()))
        }
    }

    impl PartialOrd for HeapEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    /// The original per-call Dijkstra over `Network`'s adjacency lists.
    pub fn dijkstra(
        network: &Network,
        src: NodeId,
        dst: NodeId,
        mut link_weight: impl FnMut(LinkId) -> f64,
    ) -> Option<Path> {
        let n = network.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<LinkId>> = vec![None; n];
        let mut done = vec![false; n];
        dist[src.index()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 0.0,
            node: src,
        });

        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if done[u.index()] {
                continue;
            }
            done[u.index()] = true;
            if u == dst {
                break;
            }
            for &lid in network.out_links(u) {
                let w = link_weight(lid);
                if w.is_infinite() {
                    continue;
                }
                let v = network.link(lid).dst;
                let nd = d + w;
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    parent[v.index()] = Some(lid);
                    heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }

        if src == dst {
            return Path::from_links(network, src, &[]).ok();
        }
        if dist[dst.index()].is_infinite() {
            return None;
        }
        let mut links_rev = Vec::new();
        let mut cur = dst;
        while cur != src {
            let lid = parent[cur.index()]?;
            links_rev.push(lid);
            cur = network.link(lid).src;
        }
        links_rev.reverse();
        Path::from_links(network, src, &links_rev).ok()
    }

    fn column_sums(rows: &[Vec<f64>], m: usize) -> Vec<f64> {
        let mut sums = vec![0.0; m];
        for row in rows {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    fn golden_section_min(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, steps: usize) -> f64 {
        const INV_PHI: f64 = 0.618_033_988_749_894_8;
        let (mut a, mut b) = (lo, hi);
        let mut c = b - (b - a) * INV_PHI;
        let mut d = a + (b - a) * INV_PHI;
        let mut fc = f(c);
        let mut fd = f(d);
        for _ in 0..steps {
            if fc < fd {
                b = d;
                d = c;
                fd = fc;
                c = b - (b - a) * INV_PHI;
                fc = f(c);
            } else {
                a = c;
                c = d;
                fc = fd;
                d = a + (b - a) * INV_PHI;
                fd = f(d);
            }
        }
        let mid = 0.5 * (a + b);
        let candidates = [lo, mid, hi];
        let mut best = candidates[0];
        let mut best_val = f(best);
        for &x in &candidates[1..] {
            let v = f(x);
            if v < best_val {
                best_val = v;
                best = x;
            }
        }
        best
    }

    /// The original Frank–Wolfe solve over `Vec<Vec<f64>>` flow matrices,
    /// one Dijkstra per commodity per iteration. Returns the per-commodity
    /// flows plus `(iterations, converged)`.
    pub fn solve(
        network: &Network,
        commodities: &[Commodity],
        cost: &impl FlowCost,
        config: &FmcfSolverConfig,
    ) -> (Vec<Vec<f64>>, usize, bool) {
        let penalty = |load: f64| match config.capacity {
            Some(cap) if load > cap => config.capacity_penalty * (load - cap).powi(2),
            _ => 0.0,
        };
        let penalty_marginal = |load: f64| match config.capacity {
            Some(cap) if load > cap => 2.0 * config.capacity_penalty * (load - cap),
            _ => 0.0,
        };
        let objective = |loads: &[f64]| -> f64 {
            loads
                .iter()
                .enumerate()
                .map(|(e, &x)| cost.cost(LinkId(e), x) + penalty(x))
                .sum()
        };
        let all_or_nothing = |weights: &[f64]| -> Option<Vec<Vec<f64>>> {
            let m = network.link_count();
            let mut assignment = vec![vec![0.0; m]; commodities.len()];
            for (ci, c) in commodities.iter().enumerate() {
                #[allow(deprecated)] // the deprecated one-shot wrapper is the pinned oracle
                let path = dijkstra(network, c.src, c.dst, |l| weights[l.index()])?;
                for &l in path.links() {
                    assignment[ci][l.index()] = c.demand;
                }
            }
            Some(assignment)
        };

        let m = network.link_count();
        let n = commodities.len();
        if n == 0 {
            return (Vec::new(), 0, true);
        }

        let hop_weights = vec![1.0; m];
        let mut flows = all_or_nothing(&hop_weights).expect("path exists");

        let mut loads = column_sums(&flows, m);
        let mut obj = objective(&loads);
        let mut converged = false;
        let mut iterations = 0;

        for it in 0..config.max_iterations {
            iterations = it + 1;
            let weights: Vec<f64> = loads
                .iter()
                .enumerate()
                .map(|(e, &x)| (cost.marginal(LinkId(e), x) + penalty_marginal(x)).max(0.0))
                .collect();
            let target = all_or_nothing(&weights).expect("path exists");
            let target_loads = column_sums(&target, m);

            let eval = |gamma: f64| {
                let blended: Vec<f64> = loads
                    .iter()
                    .zip(&target_loads)
                    .map(|(&a, &b)| (1.0 - gamma) * a + gamma * b)
                    .collect();
                objective(&blended)
            };
            let gamma = golden_section_min(eval, 0.0, 1.0, config.line_search_steps);
            if gamma <= 1e-12 {
                converged = true;
                break;
            }

            for (fc, tc) in flows.iter_mut().zip(&target) {
                for (fe, te) in fc.iter_mut().zip(tc) {
                    *fe = (1.0 - gamma) * *fe + gamma * *te;
                }
            }
            loads = column_sums(&flows, m);
            let new_obj = objective(&loads);
            let improvement = (obj - new_obj) / obj.abs().max(1e-12);
            obj = new_obj;
            if improvement.abs() < config.tolerance {
                converged = true;
                break;
            }
        }

        for fc in &mut flows {
            for fe in fc.iter_mut() {
                if *fe < 1e-12 {
                    *fe = 0.0;
                }
            }
        }
        (flows, iterations, converged)
    }
}

/// Specification of a random strongly-connected multigraph: a random
/// spanning tree of duplex links plus extra directed links (parallel links
/// and asymmetry included), with varied capacities.
#[derive(Debug, Clone)]
struct TopoSpec {
    n: usize,
    parents: Vec<usize>,
    extras: Vec<(usize, usize)>,
    caps: Vec<u8>,
}

fn arb_topo() -> impl Strategy<Value = TopoSpec> {
    (
        2usize..14,
        prop::collection::vec(0usize..1000, 13..14),
        prop::collection::vec((0usize..1000, 0usize..1000), 0..24),
        prop::collection::vec(0u8..255, 16..17),
    )
        .prop_map(|(n, parents, extras, caps)| TopoSpec {
            n,
            parents,
            extras,
            caps,
        })
}

fn build(spec: &TopoSpec) -> Network {
    let mut net = Network::new();
    let nodes: Vec<NodeId> = (0..spec.n)
        .map(|i| net.add_node(NodeKind::Host, format!("v{i}")))
        .collect();
    let cap = |k: usize| [2.0, 5.0, 10.0][spec.caps[k % spec.caps.len()] as usize % 3];
    // Spanning tree of duplex links: strong connectivity guaranteed.
    for i in 1..spec.n {
        let p = spec.parents[i - 1] % i;
        net.add_duplex_link(nodes[i], nodes[p], cap(i));
    }
    // Extra directed links: parallel links and asymmetric shortcuts.
    for (k, &(a, b)) in spec.extras.iter().enumerate() {
        let (a, b) = (a % spec.n, b % spec.n);
        if a != b {
            net.add_link(nodes[a], nodes[b], cap(k));
        }
    }
    net
}

/// Deterministic per-link weights with ties (many equal values), zero
/// weights and occasional forbidden links — the adversarial cases for
/// tie-break equivalence.
fn weight_table(seed: &[u8], link_count: usize) -> Vec<f64> {
    (0..link_count)
        .map(|l| {
            let v = seed[l % seed.len()] as usize % 8;
            [0.0, 0.0, 0.5, 1.0, 1.0, 2.5, 7.0, f64::INFINITY][v]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// The engine's weighted shortest paths — and the `dijkstra` wrapper on
    /// top of it — equal the pre-refactor adjacency-list Dijkstra,
    /// bit-for-bit in path choice, on random multigraphs with ties.
    #[test]
    fn engine_matches_prerefactor_dijkstra(
        spec in arb_topo(),
        wseed in prop::collection::vec(0u8..255, 24..25),
        s in 0usize..1000,
        t in 0usize..1000,
    ) {
        let net = build(&spec);
        let weights = weight_table(&wseed, net.link_count());
        let src = NodeId(s % spec.n);
        let dst = NodeId(t % spec.n);

        let oracle = reference::dijkstra(&net, src, dst, |l| weights[l.index()]);
        #[allow(deprecated)] // the deprecated one-shot wrapper is pinned against the engine
        let wrapper = dijkstra(&net, src, dst, |l| weights[l.index()]);
        prop_assert_eq!(&oracle, &wrapper);

        let graph = GraphCsr::from_network(&net);
        let mut engine = ShortestPathEngine::new();
        // Run twice through the same arenas: reuse must not leak state.
        let first = engine.shortest_path(&graph, src, dst, |l| weights[l.index()]);
        let second = engine.shortest_path(&graph, src, dst, |l| weights[l.index()]);
        prop_assert_eq!(&oracle, &first);
        prop_assert_eq!(&first, &second);
    }

    /// CSR breadth-first shortest paths equal the builder's BFS (same
    /// insertion-order tie-breaking).
    #[test]
    fn csr_bfs_matches_network_bfs(
        spec in arb_topo(),
        s in 0usize..1000,
        t in 0usize..1000,
    ) {
        let net = build(&spec);
        let graph = GraphCsr::from_network(&net);
        let src = NodeId(s % spec.n);
        let dst = NodeId(t % spec.n);
        prop_assert_eq!(net.shortest_path(src, dst), graph.shortest_path(src, dst));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Full Frank–Wolfe F-MCF solutions (per-commodity flows, iteration
    /// count, convergence flag) are **bit-for-bit identical** to the
    /// pre-refactor per-commodity-Dijkstra solver, under both pure
    /// speed-scaling and idle-share costs.
    #[test]
    fn fmcf_matches_prerefactor_solver(
        spec in arb_topo(),
        raw in prop::collection::vec((0usize..1000, 0usize..1000, 0.5f64..4.0), 1..6),
        alpha_pick in 0u8..2,
        sigma_pick in 0u8..2,
    ) {
        let net = build(&spec);
        let commodities: Vec<Commodity> = raw
            .iter()
            .enumerate()
            .filter_map(|(id, &(a, b, demand))| {
                let (src, dst) = (a % spec.n, b % spec.n);
                (src != dst).then_some(Commodity {
                    id,
                    src: NodeId(src),
                    dst: NodeId(dst),
                    demand,
                })
            })
            .collect();
        let alpha = [2.0, 4.0][alpha_pick as usize];
        let sigma = [0.0, 3.0][sigma_pick as usize];
        let power = PowerFunction::new(sigma, 1.0, alpha, 10.0).unwrap();
        let cost = PowerFlowCost::new(power);
        let config = FmcfSolverConfig {
            max_iterations: 30,
            tolerance: 1e-5,
            capacity: Some(8.0),
            line_search_steps: 20,
            ..Default::default()
        };

        let (oracle_flows, oracle_iters, oracle_converged) =
            reference::solve(&net, &commodities, &cost, &config);
        let solution = FmcfProblem::new(&net, commodities.clone()).solve(&cost, &config);

        prop_assert_eq!(solution.commodity_count(), commodities.len());
        prop_assert_eq!(solution.iterations, oracle_iters);
        prop_assert_eq!(solution.converged, oracle_converged);
        for (c, oracle_row) in oracle_flows.iter().enumerate() {
            prop_assert_eq!(solution.commodity_flows(c), oracle_row.as_slice());
        }
        // The maintained loads equal the recomputed column sums exactly
        // (an empty problem exposes no loads, matching the old behavior).
        if !commodities.is_empty() {
            for e in 0..net.link_count() {
                let expected: f64 = oracle_flows.iter().map(|row| row[e]).sum();
                prop_assert_eq!(solution.total_loads()[e], expected);
            }
        }
    }
}
