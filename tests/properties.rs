//! Property-based tests (proptest) of the core invariants:
//!
//! * Theorem 4: Random-Schedule always meets every deadline.
//! * The fractional relaxation is a true lower bound for every scheme.
//! * Most-Critical-First schedules are always feasible and never cheaper
//!   than the relaxation.
//! * The simulator and the analytic energy accounting agree.
//! * The power model's closed-form optimum (Lemma 3) minimises the power
//!   rate.

use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::{Flow, FlowSet};
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders;
use proptest::prelude::*;

/// A random but always-valid flow set over the hosts of a k=4 fat-tree.
fn arb_flows(max_flows: usize) -> impl Strategy<Value = FlowSet> {
    let host_count = 16usize; // fat_tree(4)
    prop::collection::vec(
        (
            0..host_count,
            0..host_count,
            0.0f64..80.0,
            1.0f64..20.0,
            0.5f64..20.0,
        ),
        1..max_flows,
    )
    .prop_map(move |raw| {
        let topo = builders::fat_tree_with_capacity(4, 1e9);
        let hosts = topo.hosts().to_vec();
        let flows: Vec<Flow> = raw
            .into_iter()
            .enumerate()
            .map(|(id, (s, d, release, span, volume))| {
                let src = hosts[s];
                let dst = if s == d {
                    hosts[(d + 1) % host_count]
                } else {
                    hosts[d]
                };
                Flow::new(id, src, dst, release, release + span, volume)
                    .expect("valid by construction")
            })
            .collect();
        FlowSet::from_flows(flows).expect("dense ids by construction")
    })
}

fn x2() -> PowerFunction {
    PowerFunction::speed_scaling_only(1.0, 2.0, 1e9)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Theorem 4: every deadline is met by Random-Schedule, and its energy
    /// is at least the fractional lower bound.
    #[test]
    fn random_schedule_feasible_and_above_lb(flows in arb_flows(14), seed in 0u64..1000) {
        let topo = builders::fat_tree_with_capacity(4, 1e9);
        let power = x2();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut algo = Dcfsr::default();
        algo.set_seed(seed);
        let solution = algo.solve(&mut ctx, &flows, &power).unwrap();
        let schedule = solution.schedule.as_ref().unwrap();
        ctx.verify(schedule, &flows, &power).unwrap();
        let energy = solution.total_energy().unwrap();
        let lb = solution.lower_bound.unwrap();
        prop_assert!(energy >= lb - 1e-6 * (1.0 + lb));

        let report = Simulator::new(power).run_ctx(&ctx, &flows, schedule);
        prop_assert_eq!(report.deadline_misses, 0);
    }

    /// Most-Critical-First with shortest-path routing is always feasible and
    /// never beats the fractional lower bound; the simulator agrees with the
    /// analytic energy.
    #[test]
    fn sp_mcf_feasible_consistent_and_above_lb(flows in arb_flows(14)) {
        let topo = builders::fat_tree_with_capacity(4, 1e9);
        let power = x2();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = RoutedMcf::shortest_path().solve(&mut ctx, &flows, &power).unwrap();
        let schedule = solution.schedule.as_ref().unwrap();
        ctx.verify(schedule, &flows, &power).unwrap();

        let relaxation = ctx.relax(&flows, &power, &Default::default()).unwrap();
        let energy = solution.total_energy().unwrap();
        prop_assert!(energy >= relaxation.lower_bound - 1e-6 * (1.0 + relaxation.lower_bound));

        let report = Simulator::new(power).run_ctx(&ctx, &flows, schedule);
        prop_assert_eq!(report.deadline_misses, 0);
        prop_assert!((report.energy.total() - energy).abs() <= 1e-6 * (1.0 + energy));
    }

    /// Each flow in isolation needs at least |P_i| * mu * w_i * D_i^(alpha-1)
    /// energy (Lemma 2); the full schedule can only cost more.
    #[test]
    fn per_flow_isolation_bound_holds(flows in arb_flows(10)) {
        let topo = builders::fat_tree_with_capacity(4, 1e9);
        let power = x2();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let solution = RoutedMcf::shortest_path().solve(&mut ctx, &flows, &power).unwrap();
        let paths = ctx.route(&Routing::ShortestPath, &flows).unwrap();
        let isolation_bound: f64 = flows
            .iter()
            .map(|f| paths[f.id].len() as f64 * power.dynamic_power(f.density()) * f.span_length())
            .sum();
        prop_assert!(solution.total_energy().unwrap() >= isolation_bound - 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        .. ProptestConfig::default()
    })]

    /// Lemma 3: R_opt minimises the power rate f(x)/x over (0, infinity).
    #[test]
    fn optimal_rate_minimises_power_rate(
        sigma in 0.1f64..100.0,
        mu in 0.1f64..10.0,
        alpha in 1.1f64..4.0,
        probe in 0.01f64..50.0,
    ) {
        let f = PowerFunction::new(sigma, mu, alpha, 1e9).unwrap();
        let r = f.optimal_rate();
        prop_assert!(r > 0.0);
        prop_assert!(f.power_rate(probe) + 1e-9 >= f.power_rate(r));
    }

    /// Energy for a fixed volume is monotone non-increasing in the allowed
    /// duration (Lemma 2's slower-is-cheaper property, sigma = 0).
    #[test]
    fn slower_transmission_never_costs_more(
        volume in 0.1f64..50.0,
        duration in 0.1f64..20.0,
        stretch in 1.0f64..10.0,
        alpha in 1.1f64..4.0,
    ) {
        let f = PowerFunction::speed_scaling_only(1.0, alpha, 1e12);
        let fast = f.energy_for_volume(volume, duration);
        let slow = f.energy_for_volume(volume, duration * stretch);
        prop_assert!(slow <= fast + 1e-9 * fast.abs());
    }

    /// The flow-set interval machinery always partitions the horizon.
    #[test]
    fn intervals_partition_the_horizon(flows in arb_flows(12)) {
        let (t0, t1) = flows.horizon();
        let intervals = flows.intervals();
        let total: f64 = intervals.iter().map(|iv| iv.length()).sum();
        prop_assert!((total - (t1 - t0)).abs() < 1e-9 * (1.0 + t1 - t0));
        // Consecutive intervals are contiguous.
        for w in intervals.windows(2) {
            prop_assert!((w[0].end - w[1].start).abs() < 1e-12);
        }
        prop_assert!(flows.lambda() >= 1.0 - 1e-12);
    }
}
