//! Cross-cutting invariant suite: the physics every scheduler must obey,
//! pinned for **every registry algorithm** on three data-center fabrics
//! (fat-tree, leaf–spine, BCube) over seeded uniform workloads, via the
//! proptest stand-in with fixed seeds.
//!
//! For every schedule an algorithm claims is feasible:
//!
//! * (a) no link exceeds its capacity at any rate breakpoint;
//! * (b) every flow's delivered volume equals its demand;
//! * (c) no flow transmits outside its `[release, deadline]` span;
//! * (d) the reported (analytic) energy equals the simulator's re-measured
//!   energy to 1e-9 relative — the two accountings are independent
//!   implementations, so agreement pins both.
//!
//! The bound-only `lb` algorithm is held to its own invariant (it lower
//! bounds every scheduler), and the `exact` enumerator to its optimality
//! on instances small enough to enumerate. The same four physics
//! invariants are also asserted for **every registered online policy**
//! driven through the event-driven `OnlineEngine`, whose stitched
//! schedules are not produced by any single offline solve. The
//! deadline-aware policies (`resolve`, `edf`, `hybrid`) are held to the
//! full contract — zero misses, full delivery; the deadline-oblivious
//! heuristics (`srpt`, `rcd`) are held to the physics (capacity, span,
//! energy accounting) plus full delivery of every flow they did not
//! declare missed.

use deadline_dcn::core::online::{OnlineEngine, OnlineOutcome, PolicyRegistry};
use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::failure::FailureProcess;
use deadline_dcn::flow::workload::{ArrivalProcess, UniformWorkload};
use deadline_dcn::flow::FlowSet;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders::{self, BuiltTopology};
use deadline_dcn::topology::{GraphCsr, LinkId, TopologyEvent};
use proptest::prelude::*;

/// Generous capacity so MCF's virtual-circuit model and dcfsr's rounding
/// stay feasible on every draw: the invariants are about what a schedule
/// *claims*, not about contention-induced infeasibility. Kept at 1e4 (three
/// orders above any workload density) rather than 1e9 because `greedy`
/// transmits at the full line rate, and `rate * dt` at rate 1e9 quantizes
/// delivered volume more coarsely than the simulator's completion
/// tolerance — a float artifact, not scheduling physics.
const CAPACITY: f64 = 1e4;

/// The scheduling algorithms of the registry (every name that produces a
/// schedule on instances of this size; `lb` is bound-only and `exact` gets
/// its own small-instance test below).
const SCHEDULERS: &[&str] = &[
    "dcfsr",
    "sp-mcf",
    "ecmp",
    "least-loaded",
    "consolidate",
    "greedy",
];

fn topologies() -> Vec<BuiltTopology> {
    vec![
        builders::fat_tree_with_capacity(4, CAPACITY),
        builders::leaf_spine_with_capacity(4, 2, 4, CAPACITY),
        builders::bcube_with_capacity(3, 1, CAPACITY),
    ]
}

fn power() -> PowerFunction {
    PowerFunction::speed_scaling_only(1.0, 2.0, CAPACITY)
}

/// Asserts the four physics invariants of one claimed-feasible schedule.
fn assert_schedule_invariants(
    context: &str,
    ctx: &SolverContext<'_>,
    flows: &FlowSet,
    schedule: &Schedule,
    reported_energy: f64,
    power: &PowerFunction,
) {
    // (a) No link exceeds its capacity at any breakpoint: the aggregate
    // profiles are piecewise constant, so checking every segment checks
    // every breakpoint.
    for (link, profile) in schedule.link_profiles() {
        let capacity = ctx.graph().capacity(link).min(power.capacity());
        for (start, end, rate) in profile.segments() {
            assert!(
                rate <= capacity * (1.0 + 1e-9) + 1e-9,
                "{context}: link {link} carries rate {rate} > capacity {capacity} \
                 on [{start}, {end})"
            );
        }
    }
    for flow in flows.iter() {
        let fs = schedule
            .flow_schedule(flow.id)
            .unwrap_or_else(|| panic!("{context}: flow {} has no schedule", flow.id));
        // (b) Delivered volume equals the demand.
        let delivered = fs.delivered_volume();
        assert!(
            (delivered - flow.volume).abs() <= 1e-6 * flow.volume.max(1.0),
            "{context}: flow {} delivers {delivered} of {}",
            flow.id,
            flow.volume
        );
        // (c) All transmission stays inside [release, deadline], on every
        // link of the path.
        if let Some((start, end)) = fs.activity_span() {
            assert!(
                start >= flow.release - 1e-9 && end <= flow.deadline + 1e-9,
                "{context}: flow {} transmits in [{start}, {end}] outside \
                 its span [{}, {}]",
                flow.id,
                flow.release,
                flow.deadline
            );
        }
    }
    // (d) Reported energy == simulator re-measured energy (1e-9 relative).
    let report = Simulator::new(*power).run_ctx(ctx, flows, schedule);
    assert_eq!(report.deadline_misses, 0, "{context}: simulator saw misses");
    assert!(
        (report.energy.total() - reported_energy).abs() <= 1e-9 * (1.0 + reported_energy.abs()),
        "{context}: simulator measures {} but the algorithm reported {reported_energy}",
        report.energy.total()
    );
}

/// The relaxed contract for deadline-oblivious policies (`srpt`, `rcd`):
/// capacity (a) and span (c) hold for everything committed, delivery (b)
/// holds for every flow the report does **not** declare missed, and the
/// energy accounting (d) still matches the simulator — misses excuse a
/// flow from delivery, never from physics.
fn assert_relaxed_policy_invariants(
    context: &str,
    ctx: &SolverContext<'_>,
    flows: &FlowSet,
    outcome: &OnlineOutcome,
    power: &PowerFunction,
) {
    let schedule = &outcome.schedule;
    for (link, profile) in schedule.link_profiles() {
        let capacity = ctx.graph().capacity(link).min(power.capacity());
        for (start, end, rate) in profile.segments() {
            assert!(
                rate <= capacity * (1.0 + 1e-9) + 1e-9,
                "{context}: link {link} carries rate {rate} > capacity {capacity} \
                 on [{start}, {end})"
            );
        }
    }
    for decision in &outcome.report.decisions {
        let flow = flows.flow(decision.flow);
        let Some(fs) = schedule.flow_schedule(flow.id) else {
            assert!(
                decision.missed || !decision.admitted,
                "{context}: flow {} has no schedule yet is neither missed nor rejected",
                flow.id
            );
            continue;
        };
        if let Some((start, end)) = fs.activity_span() {
            assert!(
                start >= flow.release - 1e-9 && end <= flow.deadline + 1e-9,
                "{context}: flow {} transmits in [{start}, {end}] outside \
                 its span [{}, {}]",
                flow.id,
                flow.release,
                flow.deadline
            );
        }
        if !decision.missed {
            let delivered = fs.delivered_volume();
            assert!(
                (delivered - flow.volume).abs() <= 1e-6 * flow.volume.max(1.0),
                "{context}: unmissed flow {} delivers {delivered} of {}",
                flow.id,
                flow.volume
            );
        }
    }
    let report = Simulator::new(*power).run_ctx(ctx, flows, schedule);
    let reported = outcome.report.online_energy;
    assert!(
        (report.energy.total() - reported).abs() <= 1e-9 * (1.0 + reported.abs()),
        "{context}: simulator measures {} but the engine reported {reported}",
        report.energy.total()
    );
}

/// Total volume transmitted on `link` inside `[from, to]` across a
/// stitched schedule: per-link profiles where the stitcher split them,
/// the uniform flow profile otherwise.
fn link_volume_between(schedule: &Schedule, link: LinkId, from: f64, to: f64) -> f64 {
    schedule
        .flow_schedules()
        .iter()
        .map(|fs| {
            if fs.link_profiles.is_empty() {
                if fs.path.links().contains(&link) {
                    fs.profile.volume_between(from, to)
                } else {
                    0.0
                }
            } else {
                fs.link_profiles
                    .get(&link)
                    .map_or(0.0, |p| p.volume_between(from, to))
            }
        })
        .sum()
}

/// The outage windows of every link, reconstructed from a time-sorted
/// event stream. A link still down when the stream ends gets a window
/// that never closes.
fn down_windows(events: &[TopologyEvent], link_count: usize) -> Vec<(LinkId, f64, f64)> {
    let mut open: Vec<Option<f64>> = vec![None; link_count];
    let mut windows = Vec::new();
    for event in events {
        let slot = &mut open[event.link().index()];
        match (event.is_down(), *slot) {
            (true, None) => *slot = Some(event.time()),
            (false, Some(since)) => {
                windows.push((event.link(), since, event.time()));
                *slot = None;
            }
            _ => {}
        }
    }
    for (index, slot) in open.into_iter().enumerate() {
        if let Some(since) = slot {
            windows.push((LinkId(index), since, f64::INFINITY));
        }
    }
    windows
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Invariants (a)–(d) for every scheduling algorithm of the registry,
    /// on all three fabrics, for seeded uniform workloads.
    #[test]
    fn every_registry_scheduler_obeys_the_physics(seed in 0u64..10_000, n in 4usize..14) {
        let registry = AlgorithmRegistry::with_defaults();
        let power = power();
        for topo in topologies() {
            let flows = UniformWorkload::paper_defaults(n, seed)
                .generate(topo.hosts())
                .expect("builder fabrics have >= 2 hosts");
            let mut ctx = SolverContext::from_network(&topo.network).unwrap();
            for name in SCHEDULERS {
                let mut algo = registry.create(name).unwrap();
                algo.set_seed(seed);
                let solution = algo
                    .solve(&mut ctx, &flows, &power)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", topo.name));
                let schedule = solution.schedule.as_ref().expect("schedulers schedule");
                assert_schedule_invariants(
                    &format!("{name} on {} (seed {seed}, n {n})", topo.name),
                    &ctx,
                    &flows,
                    schedule,
                    solution.total_energy().unwrap(),
                    &power,
                );
            }
        }
    }

    /// The `lb` algorithm is a true lower bound for every scheduler, on
    /// every fabric.
    #[test]
    fn lb_bounds_every_scheduler(seed in 0u64..10_000) {
        let registry = AlgorithmRegistry::with_defaults();
        let power = power();
        for topo in topologies() {
            let flows = UniformWorkload::paper_defaults(10, seed)
                .generate(topo.hosts())
                .unwrap();
            let mut ctx = SolverContext::from_network(&topo.network).unwrap();
            let lb = registry
                .create("lb")
                .unwrap()
                .solve(&mut ctx, &flows, &power)
                .unwrap()
                .lower_bound
                .expect("lb reports a bound");
            prop_assert!(lb > 0.0);
            for name in SCHEDULERS {
                let mut algo = registry.create(name).unwrap();
                algo.set_seed(seed);
                let energy = algo
                    .solve(&mut ctx, &flows, &power)
                    .unwrap()
                    .total_energy()
                    .unwrap();
                prop_assert!(
                    energy >= lb - 1e-6 * (1.0 + lb),
                    "{} on {}: energy {} beats LB {}", name, topo.name, energy, lb
                );
            }
        }
    }

    /// The `exact` enumerator obeys the same physics and never loses to
    /// dcfsr, on instances small enough to enumerate.
    #[test]
    fn exact_obeys_the_physics_and_is_optimal(seed in 0u64..10_000) {
        let topo = builders::parallel(3, CAPACITY);
        let flows = FlowSet::from_tuples(
            (0..3).map(|i| (topo.source(), topo.sink(), i as f64, 4.0 + i as f64, 3.0)),
        )
        .unwrap();
        let power = power();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let registry = AlgorithmRegistry::with_defaults();
        let exact = registry
            .create("exact")
            .unwrap()
            .solve(&mut ctx, &flows, &power)
            .unwrap();
        assert_schedule_invariants(
            "exact on parallel(3)",
            &ctx,
            &flows,
            exact.schedule.as_ref().unwrap(),
            exact.total_energy().unwrap(),
            &power,
        );
        let mut dcfsr = registry.create("dcfsr").unwrap();
        dcfsr.set_seed(seed);
        let approx = dcfsr.solve(&mut ctx, &flows, &power).unwrap();
        prop_assert!(
            exact.total_energy().unwrap()
                <= approx.total_energy().unwrap() + 1e-6
        );
    }

    /// Every registered online policy obeys the physics when driven
    /// through the event-driven engine over Poisson arrivals. `resolve`,
    /// `edf` and `hybrid` are deadline-aware, so they additionally owe
    /// zero misses and full delivery (the strict offline contract); the
    /// preemptive heuristics `srpt` and `rcd` get the relaxed variant.
    #[test]
    fn every_registered_policy_obeys_the_physics(seed in 0u64..10_000, load in 1u32..8) {
        let policies = PolicyRegistry::with_defaults();
        let power = power();
        for topo in topologies() {
            let base = UniformWorkload::paper_defaults(10, seed)
                .generate(topo.hosts())
                .unwrap();
            let flows = ArrivalProcess::with_load(load as f64, seed).apply(&base).unwrap();
            let mut ctx = SolverContext::from_network(&topo.network).unwrap();
            for name in policies.names() {
                let mut engine = OnlineEngine::builder()
                    .algorithm("dcfsr")
                    .policy(name)
                    .seed(seed)
                    .build()
                    .unwrap();
                let outcome = engine.run(&mut ctx, &flows, &power).unwrap();
                let context =
                    format!("online {name} on {} (seed {seed}, load {load})", topo.name);
                prop_assert_eq!(outcome.report.solve_failures, 0);
                match name {
                    "resolve" | "edf" | "hybrid" => {
                        prop_assert_eq!(outcome.report.missed(), 0);
                        assert_schedule_invariants(
                            &context,
                            &ctx,
                            &flows,
                            &outcome.schedule,
                            outcome.report.online_energy,
                            &power,
                        );
                    }
                    _ => assert_relaxed_policy_invariants(
                        &context,
                        &ctx,
                        &flows,
                        &outcome,
                        &power,
                    ),
                }
            }
        }
    }

    /// Random failure/recovery churn against every registered policy.
    /// Two contracts, for a seeded renewal stream of `LinkDown`/`LinkUp`
    /// events ([`FailureProcess`]) over the whole fabric:
    ///
    /// * the stitched schedule never carries volume on a link inside any
    ///   of its outage windows, and capacity holds on the surviving
    ///   links at every breakpoint;
    /// * recovery is exact — replaying the stream on a raw [`GraphCsr`]
    ///   and restoring whatever is still down reproduces the pristine
    ///   capacity vector bit-for-bit, and `run_with_events` itself hands
    ///   the context back with the same pristine fabric.
    #[test]
    fn every_policy_survives_failure_churn(seed in 0u64..10_000, uptime_index in 0usize..3) {
        let policies = PolicyRegistry::with_defaults();
        let power = power();
        // Mean uptimes chosen so a fat-tree(4)'s 48 links see a handful
        // to a few dozen events over the workload horizon — enough churn
        // to exercise stranding, revival and re-routes without turning
        // every case into hundreds of re-solves.
        let mean_uptime = [30.0, 60.0, 120.0][uptime_index];
        let topo = builders::fat_tree_with_capacity(4, CAPACITY);
        let base = UniformWorkload::paper_defaults(8, seed)
            .generate(topo.hosts())
            .unwrap();
        let flows = ArrivalProcess::with_load(2.0, seed).apply(&base).unwrap();
        let (_, horizon_end) = flows.horizon();
        let events = FailureProcess::new(mean_uptime, 1.0, seed)
            .generate(topo.network.link_count(), horizon_end.min(20.0));

        // Raw machinery first: fail/restore round-trips to the pristine
        // graph. The manual `PartialEq` compares capacities (the epoch is
        // excluded), and the bit-for-bit loop pins that recovery copies
        // `base_capacity` exactly rather than recomputing it.
        let pristine = GraphCsr::from_network(&topo.network);
        let before: Vec<f64> = (0..pristine.link_count())
            .map(|i| pristine.capacity(LinkId(i)))
            .collect();
        let mut churned = pristine.clone();
        for event in &events {
            event.apply(&mut churned);
        }
        let still_down: Vec<LinkId> = churned.down_links().collect();
        for link in still_down {
            churned.restore_link(link);
        }
        prop_assert_eq!(churned.down_link_count(), 0);
        for (index, &capacity) in before.iter().enumerate() {
            prop_assert!(
                churned.capacity(LinkId(index)).to_bits() == capacity.to_bits(),
                "link {} recovers to {} instead of its pre-failure {}",
                index, churned.capacity(LinkId(index)), capacity
            );
        }
        prop_assert!(churned == pristine, "restored graph differs from the pristine fabric");

        let windows = down_windows(&events, topo.network.link_count());
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        for name in policies.names() {
            let mut engine = OnlineEngine::builder()
                .algorithm("dcfsr")
                .policy(name)
                .seed(seed)
                .build()
                .unwrap();
            let outcome = engine
                .run_with_events(&mut ctx, &flows, &power, &events)
                .unwrap_or_else(|e| {
                    panic!("{name} under churn (seed {seed}, uptime {mean_uptime}): {e}")
                });
            prop_assert_eq!(outcome.report.topology_events, events.len());
            // Nothing ever rides a link while it is down.
            for &(link, from, to) in &windows {
                let volume = link_volume_between(&outcome.schedule, link, from, to);
                prop_assert!(
                    volume <= 1e-9,
                    "{} schedules {} units on down link {} during [{}, {})",
                    name, volume, link, from, to
                );
            }
            // Capacity still holds on the surviving links: the stitched
            // profiles are piecewise constant, so segments cover every
            // breakpoint.
            for (link, profile) in outcome.schedule.link_profiles() {
                let capacity = ctx.graph().capacity(link).min(power.capacity());
                for (start, end, rate) in profile.segments() {
                    prop_assert!(
                        rate <= capacity * (1.0 + 1e-9) + 1e-9,
                        "{}: link {} carries rate {} > capacity {} on [{}, {})",
                        name, link, rate, capacity, start, end
                    );
                }
            }
            // The run hands the context back on the pristine fabric, so
            // the next policy (and any follow-up solve) starts clean.
            prop_assert_eq!(ctx.graph().down_link_count(), 0);
            for (index, &capacity) in before.iter().enumerate() {
                prop_assert!(ctx.graph().capacity(LinkId(index)).to_bits() == capacity.to_bits());
            }
            prop_assert!(*ctx.graph() == pristine);
        }
    }
}
