//! Golden pin of the `dcn-serve` wire behavior: the canned request
//! stream in `tests/data/serve_requests.txt` (produced by
//! `dcn-serve --gen-requests 60 --queries --seed 1`) must yield the
//! reply bytes in `tests/data/serve_replies_golden.txt`, at one worker
//! and at several — the protocol, the admission decisions, and the
//! committed rate plans are all under the pin.
//!
//! Re-bless after an intentional wire or policy change with
//! `BLESS_GOLDEN=1 cargo test --test serve_golden`.

use std::io::Cursor;
use std::path::PathBuf;

use dcn_server::{Server, ServerConfig, TopologySpec};

fn data_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

fn serve_canned(workers: usize) -> Vec<u8> {
    let requests = std::fs::read(data_path("serve_requests.txt")).expect("canned requests exist");
    let mut config = ServerConfig::new(TopologySpec::FatTree { k: 4 });
    config.seed = 1;
    config.shard_workers = workers;
    let mut server = Server::start(config).expect("server starts");
    let mut reader = Cursor::new(requests);
    let mut replies = Vec::new();
    server
        .serve_connection(&mut reader, &mut replies)
        .expect("in-memory write cannot fail");
    server.shutdown();
    replies
}

#[test]
fn canned_stream_matches_the_golden_replies() {
    let replies = serve_canned(1);
    let golden_path = data_path("serve_replies_golden.txt");
    if std::env::var("BLESS_GOLDEN").is_ok() {
        std::fs::write(&golden_path, &replies).expect("golden file writes");
        return;
    }
    let golden = std::fs::read(&golden_path).expect("golden replies exist");
    assert!(
        replies == golden,
        "serve replies diverged from tests/data/serve_replies_golden.txt \
         ({} vs {} bytes); re-bless with BLESS_GOLDEN=1 if the change is intentional",
        replies.len(),
        golden.len()
    );
}

#[test]
fn golden_replies_are_worker_width_invariant() {
    let baseline = serve_canned(1);
    for workers in [2, 4] {
        assert!(
            serve_canned(workers) == baseline,
            "canned replies diverged at {workers} workers"
        );
    }
}
