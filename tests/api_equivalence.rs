//! Equivalence pin guarding the `SolverContext` + `Algorithm` migration —
//! the same role `csr_equivalence.rs` played for the CSR refactor of PR 3.
//!
//! For three seeds on two topologies, every scheme is solved twice: once
//! through the **pre-redesign call path** (the deprecated one-shot entry
//! points, pinned here on purpose) and once through the context API. The
//! schedules, energies and lower bounds must be **bit-identical** — the
//! redesign moves state around but must not change a single number.

#![allow(deprecated)] // the whole point of this suite is to pin the deprecated path

use deadline_dcn::core::{baselines, interval_relaxation, prelude::*};
use deadline_dcn::flow::workload::UniformWorkload;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::topology::builders::{self, BuiltTopology};

fn topologies() -> Vec<BuiltTopology> {
    vec![builders::fat_tree(4), builders::leaf_spine(4, 2, 6)]
}

fn x2(capacity: f64) -> PowerFunction {
    PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
}

/// Random-Schedule: the legacy `RandomSchedule::run` and the `dcfsr`
/// algorithm produce bit-identical schedules, energies and lower bounds.
#[test]
fn dcfsr_energies_are_bit_identical_across_apis() {
    let power = x2(10.0);
    for topo in topologies() {
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        for seed in [7u64, 21, 1000] {
            let flows = UniformWorkload::paper_defaults(18, seed)
                .generate(topo.hosts())
                .unwrap();

            let legacy = RandomSchedule::new(RandomScheduleConfig {
                seed,
                ..Default::default()
            })
            .run(&topo.network, &flows, &power)
            .unwrap();

            let mut algo = Dcfsr::default();
            algo.set_seed(seed);
            let modern = algo.solve(&mut ctx, &flows, &power).unwrap();

            assert_eq!(
                modern.schedule.as_ref().unwrap(),
                &legacy.schedule,
                "{} seed {seed}: schedules diverge",
                topo.name
            );
            // Bit-identical, not approximately equal.
            assert_eq!(
                modern.total_energy().unwrap(),
                legacy.schedule.energy(&power).total(),
                "{} seed {seed}: energies diverge",
                topo.name
            );
            assert_eq!(
                modern.lower_bound,
                Some(legacy.lower_bound),
                "{} seed {seed}: lower bounds diverge",
                topo.name
            );
            assert_eq!(modern.diagnostics.rounding_attempts, Some(legacy.attempts));
            assert_eq!(
                modern.diagnostics.capacity_excess,
                Some(legacy.capacity_excess)
            );
        }
    }
}

/// The five baselines: each legacy free function and its registry
/// counterpart produce bit-identical schedules and energies.
#[test]
fn baseline_energies_are_bit_identical_across_apis() {
    let power = x2(1e9);
    for topo in topologies() {
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        for seed in [3u64, 11, 42] {
            let flows = UniformWorkload::paper_defaults(16, seed)
                .generate(topo.hosts())
                .unwrap();

            let legacy = [
                (
                    "sp-mcf",
                    baselines::sp_mcf(&topo.network, &flows, &power).unwrap(),
                ),
                (
                    "ecmp",
                    baselines::ecmp_mcf(&topo.network, &flows, &power, seed).unwrap(),
                ),
                (
                    "least-loaded",
                    baselines::least_loaded_mcf(&topo.network, &flows, &power, 4).unwrap(),
                ),
                (
                    "consolidate",
                    baselines::consolidating_mcf(&topo.network, &flows, &power, 4).unwrap(),
                ),
                (
                    "greedy",
                    baselines::full_rate_greedy(&topo.network, &flows, &power).unwrap(),
                ),
            ];

            let registry = AlgorithmRegistry::with_defaults();
            for (name, legacy_schedule) in &legacy {
                let mut algo = registry.create(name).unwrap();
                algo.set_seed(seed);
                let modern = algo.solve(&mut ctx, &flows, &power).unwrap();
                assert_eq!(
                    modern.schedule.as_ref().unwrap(),
                    legacy_schedule,
                    "{} {name} seed {seed}: schedules diverge",
                    topo.name
                );
                assert_eq!(
                    modern.total_energy().unwrap(),
                    legacy_schedule.energy(&power).total(),
                    "{} {name} seed {seed}: energies diverge",
                    topo.name
                );
            }
        }
    }
}

/// The relaxation lower bound: the legacy one-shot `interval_relaxation`
/// and `SolverContext::relax` agree bit for bit, interval by interval.
#[test]
fn relaxation_lower_bounds_are_bit_identical_across_apis() {
    let power = x2(10.0);
    for topo in topologies() {
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        for seed in [5u64, 8, 13] {
            let flows = UniformWorkload::paper_defaults(14, seed)
                .generate(topo.hosts())
                .unwrap();
            let legacy = interval_relaxation(&topo.network, &flows, &power, &Default::default());
            let modern = ctx.relax(&flows, &power, &Default::default()).unwrap();
            assert_eq!(legacy.lower_bound, modern.lower_bound);
            assert_eq!(legacy.intervals.len(), modern.intervals.len());
            for (a, b) in legacy.intervals.iter().zip(&modern.intervals) {
                assert_eq!(a.flow_ids, b.flow_ids);
                assert_eq!(a.solution, b.solution);
                assert_eq!(a.cost_rate, b.cost_rate);
            }
        }
    }
}
