//! Offline stand-in for the `criterion` crate.
//!
//! Provides the entry points the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Each
//! benchmark runs a fixed number of timed iterations and prints the mean
//! iteration time.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], like the real crate.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (prints nothing extra in the stand-in).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.total += start.elapsed();
        self.iterations += 1;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher::default();
    // One untimed warm-up, then the timed samples.
    f(&mut bencher);
    bencher = Bencher::default();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mean = if bencher.iterations > 0 {
        bencher.total / u32::try_from(bencher.iterations).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label:<48} mean {mean:>12?} ({} iters)",
        bencher.iterations
    );
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
