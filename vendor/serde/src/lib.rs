//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` is not vendored in this repository (the build
//! environment has no network access), so this crate provides the minimal
//! subset the workspace uses: `#[derive(Serialize, Deserialize)]` over
//! structs and enums, driven through a self-describing [`Value`] tree
//! instead of serde's visitor machinery. `serde_json` (also a stand-in)
//! renders [`Value`] to and from JSON text.
//!
//! Only the shapes the workspace actually serializes are supported:
//! numeric primitives, `bool`, `String`, `Option<T>`, `Vec<T>`, tuples up
//! to arity 4, unit structs, named/tuple structs and enums with unit,
//! newtype, tuple or struct variants (externally tagged, like real serde).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stand-in's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// A static `Null`, used for absent optional fields.
pub const NULL: Value = Value::Null;

impl Value {
    /// The map entries if this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Looks a field up in map entries, yielding [`NULL`] when absent so that
/// `Option` fields deserialize to `None`.
pub fn map_field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Error produced when a [`Value`] cannot be decoded into the target type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Creates a "expected X while decoding Y" error.
    pub fn expected(what: &str, decoding: &str) -> Self {
        DeError(format!("expected {what} while decoding {decoding}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Decodes a value of the data model into `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = match *value {
                    Value::U64(u) => u,
                    Value::I64(i) if i >= 0 => i as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(DeError::expected("unsigned integer", stringify!($ty))),
                };
                <$ty>::try_from(wide)
                    .map_err(|_| DeError::expected("in-range integer", stringify!($ty)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = match *value {
                    Value::I64(i) => i,
                    Value::U64(u) if u <= i64::MAX as u64 => u as i64,
                    Value::F64(f)
                        if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
                    {
                        f as i64
                    }
                    _ => return Err(DeError::expected("integer", stringify!($ty))),
                };
                <$ty>::try_from(wide)
                    .map_err(|_| DeError::expected("in-range integer", stringify!($ty)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match *value {
                    Value::F64(f) => Ok(f as $ty),
                    Value::I64(i) => Ok(i as $ty),
                    Value::U64(u) => Ok(u as $ty),
                    _ => Err(DeError::expected("number", stringify!($ty))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

macro_rules! impl_tuple {
    ($($idx:tt : $name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(0: A);
impl_tuple!(0: A, 1: B);
impl_tuple!(0: A, 1: B, 2: C);
impl_tuple!(0: A, 1: B, 2: C, 3: D);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
