//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides the pieces this workspace uses: a seedable deterministic
//! [`rngs::StdRng`] (xoshiro256** seeded via splitmix64), the [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_range`, `gen_bool` and `sample`,
//! the [`seq::SliceRandom`] / [`seq::IteratorRandom`] helpers, and the
//! [`distributions::Distribution`] trait that `rand_distr` builds on.
//!
//! Statistical quality matches xoshiro256**, which is more than adequate
//! for the simulations here; the point is determinism per seed, not
//! cryptographic strength.

#![forbid(unsafe_code)]

/// The raw source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can produce a uniform sample (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `[0, 1)` from 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo draw; the bias is negligible for the spans used here.
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let u = unit_f64(rng) as $ty;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let u = unit_f64(rng) as $ty;
                start + u * (end - start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (always available, unlike the real
    /// crate where this derives from `from_seed`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256**.
    ///
    /// Unlike the real `rand`, the stream is stable across versions of this
    /// stand-in — seeds fully determine every workload and rounding draw.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            self.state = [s0, s1, s2, s3.rotate_left(45)];
            result
        }
    }
}

/// Sampling from slices and iterators.
pub mod seq {
    use super::RngCore;

    /// Uniform index in `0..bound` for possibly-unsized RNG receivers.
    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (rng.next_u64() % bound as u64) as usize
    }

    /// Random sampling over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_index(rng, self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, uniform_index(rng, i + 1));
            }
        }
    }

    /// Random sampling over iterators.
    pub trait IteratorRandom: Iterator + Sized {
        /// Returns a uniformly random element (reservoir sampling).
        fn choose<R: RngCore + ?Sized>(mut self, rng: &mut R) -> Option<Self::Item> {
            let mut chosen = self.next()?;
            for (seen, item) in self.enumerate() {
                // `seen + 2` elements have been observed so far.
                if uniform_index(rng, seen + 2) == 0 {
                    chosen = item;
                }
            }
            Some(chosen)
        }

        /// Returns `amount` elements sampled without replacement (reservoir
        /// sampling; at most the iterator's length elements are returned).
        fn choose_multiple<R: RngCore + ?Sized>(
            mut self,
            rng: &mut R,
            amount: usize,
        ) -> Vec<Self::Item> {
            let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
            for _ in 0..amount {
                match self.next() {
                    Some(item) => reservoir.push(item),
                    None => return reservoir,
                }
            }
            for (offset, item) in self.enumerate() {
                let slot = uniform_index(rng, amount + offset + 1);
                if slot < amount {
                    reservoir[slot] = item;
                }
            }
            reservoir
        }
    }

    impl<I: Iterator> IteratorRandom for I {}
}

/// Standard distributions.
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// The "natural" distribution per type: uniform `[0, 1)` for floats,
    /// uniform over all values for integers and `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng) as f32
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The usual glob import, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IteratorRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(1.0..100.0);
            assert!((1.0..100.0).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: usize = rng.gen_range(0..=3);
            assert!(m <= 3);
        }
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn choose_is_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*items.choose(&mut rng).unwrap()] += 1;
        }
        for &c in &counts {
            assert!(c > 800, "counts {counts:?}");
        }
    }

    #[test]
    fn choose_multiple_returns_distinct_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let picked = (0..100).choose_multiple(&mut rng, 10);
        assert_eq!(picked.len(), 10);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 10);
    }
}
