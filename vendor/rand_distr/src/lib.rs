//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the [`Normal`] distribution (via the Box–Muller transform) and
//! re-exports the [`Distribution`] trait from the `rand` stand-in.

#![forbid(unsafe_code)]

use std::f64::consts::TAU;
use std::fmt;

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Error returned for invalid [`Normal`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean is NaN.
    MeanTooSmall,
    /// The standard deviation is negative or not finite.
    BadVariance,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::MeanTooSmall => f.write_str("mean is not finite"),
            NormalError::BadVariance => f.write_str("standard deviation is negative or not finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error when the mean is not finite or the standard
    /// deviation is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit = |rng: &mut R| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Box–Muller: u1 must be in (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - unit(rng);
        let u2: f64 = unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn sample_moments_match() {
        let dist = Normal::new(10.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
