//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the stand-in `serde::Value` data model to JSON text and parses
//! JSON text back, exposing the same entry points the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`] and
//! [`Error`].

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the supported data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails for the supported data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into the generic [`Value`] tree.
///
/// # Errors
///
/// Never fails for the supported data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or when the JSON shape does not match
/// the target type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Always keep a decimal point so the value re-parses as F64.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth accepted by the parser (like real serde_json's
/// recursion limit, this turns pathological inputs into an error instead
/// of a stack overflow).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // UTF-16 surrogate pair: a low surrogate
                                // escape must follow the high one.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error("unpaired surrogate in \\u escape".into()));
                                }
                                self.pos += 2; // land on the 'u' for parse_hex4
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error(
                                        "invalid low surrogate in \\u escape".into(),
                                    ));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape. On entry `pos` is at the
    /// `u`; on exit it is at the last hex digit (the caller's shared
    /// `pos += 1` then steps past it).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        if !hex.iter().all(u8::is_ascii_hexdigit) {
            return Err(Error("bad \\u escape".into()));
        }
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error(format!("invalid number {text:?}")))
        }
    }

    /// Runs a compound parser one nesting level deeper, failing instead of
    /// overflowing the stack on pathologically nested input.
    fn nested(
        &mut self,
        parse: impl FnOnce(&mut Self) -> Result<Value, Error>,
    ) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.nested(Self::parse_array_body)
    }

    fn parse_array_body(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.nested(Self::parse_object_body)
    }

    fn parse_object_body(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn roundtrip_compound() {
        let v: Vec<(f64, f64)> = vec![(1.0, 2.0), (3.5, -4.0)];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<(f64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.5 x").is_err());
    }

    #[test]
    fn decodes_surrogate_pairs() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\u+041\"").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = from_str::<Value>(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Sibling (non-nested) compounds do not accumulate depth.
        let wide = format!("[{}0]", "[0],".repeat(10_000));
        assert!(from_str::<Value>(&wide).is_ok());
    }
}
