//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the stand-in `serde::Serialize` / `serde::Deserialize`
//! traits (see `vendor/serde`) for non-generic structs and enums. Parsing is
//! done directly over the `proc_macro` token stream — `syn`/`quote` are not
//! available offline. Supported shapes: unit/named/tuple structs, enums with
//! unit/newtype/tuple/struct variants (externally tagged). `#[serde(...)]`
//! attributes are not supported and rejected loudly.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input turned out to be.
enum Input {
    /// `struct S;`
    UnitStruct { name: String },
    /// `struct S { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, U);`
    TupleStruct { name: String, arity: usize },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Input::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\"))"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![\
                                 (::std::string::String::from(\"{vname}\"), {payload})])",
                                binds.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Input::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::map_field(__map, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __map = __value.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                    .collect();
                format!(
                    "let __seq = __value.as_seq().ok_or_else(|| \
                         ::serde::DeError::expected(\"sequence\", \"{name}\"))?;\n\
                     if __seq.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::expected(\
                             \"sequence of length {arity}\", \"{name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname})")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(arity) if *arity == 1 => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__payload)?))"
                        )),
                        VariantShape::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __seq = __payload.as_seq().ok_or_else(|| \
                                         ::serde::DeError::expected(\"sequence\", \"{name}\"))?;\n\
                                     if __seq.len() != {arity} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::DeError::expected(\
                                             \"sequence of length {arity}\", \"{name}\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::map_field(__inner, \"{f}\"))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __inner = __payload.as_map().ok_or_else(|| \
                                         ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::DeError::custom(format!(\
                                     \"unknown variant {{__other}} of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __payload) = (&__entries[0].0, &__entries[0].1);\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::DeError::custom(format!(\
                                         \"unknown variant {{__other}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"variant\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(",\n"))
                },
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Parses a derive input (the item the attribute is attached to).
fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("stand-in serde_derive does not support generic types ({name})");
    }

    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::TupleStruct {
                    name,
                    arity: count_top_level_items(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
            other => panic!("unexpected token after struct name: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unexpected token after enum name: {other:?}"),
        },
        other => panic!("serde_derive only supports structs and enums, got {other}"),
    }
}

/// Skips `#[...]` attribute groups, rejecting `#[serde(...)]`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            let body = g.stream().to_string();
            if body.starts_with("serde") {
                panic!("stand-in serde_derive does not support #[serde(...)] attributes");
            }
        }
        *pos += 2;
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Collects field names of `a: T, b: U, ...`, tracking `<...>` depth so that
/// commas inside generic arguments do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        fields.push(expect_ident(&tokens, &mut pos));
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Counts comma-separated items at the top level of a token stream
/// (angle-bracket aware); used for tuple struct/variant arity.
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut items = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_in_current = false;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                items += 1;
                saw_tokens_in_current = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_in_current = true;
    }
    if !saw_tokens_in_current {
        items -= 1; // trailing comma
    }
    items
}

/// Parses enum variants: `Unit, Newtype(T), Tuple(T, U), Struct { a: T }`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("stand-in serde_derive does not support explicit enum discriminants");
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
