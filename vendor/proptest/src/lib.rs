//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, the [`proptest!`] macro (with
//! `#![proptest_config(...)]`), [`ProptestConfig`], and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! seeded RNG (one stream per case index), and there is **no shrinking** —
//! a failing case reports its inputs via `Debug` and panics.

#![forbid(unsafe_code)]

// Re-exported for use by the `proptest!` macro expansion.
pub use rand;

use rand::prelude::*;
use rand::SampleRange;

/// Runtime configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with random length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy, L: SampleRange<usize> + Clone>(
        element: S,
        size: L,
    ) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SampleRange<usize> + Clone> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Fails the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current proptest case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)) => {};
    (@with_config ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                        0xD1B5_4A32_D192_ED03u64.wrapping_mul(u64::from(__case) + 1),
                    );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    ::std::panic!(
                        "proptest case {} of {} failed: {}\ninputs: {:?}",
                        __case + 1,
                        __config.cases,
                        __msg,
                        ($(&$arg,)*)
                    );
                }
            }
        }
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((0u64..5, 0.0f64..1.0), 1..20)
            .prop_map(|pairs| pairs.len()))
        {
            prop_assert!((1..20).contains(&v));
        }
    }
}
