//! Quickstart: schedule a random deadline-constrained workload on a
//! fat-tree with every scheme in the registry and compare their energy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::UniformWorkload;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 2 setup, scaled down: a k=4 fat-tree (20 switches,
    // 16 hosts), 60 flows over the horizon [1, 100], volumes ~ N(10, 3),
    // power function f(x) = x^2 with link capacity 10.
    let topo = builders::fat_tree(4);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
    let flows = UniformWorkload::paper_defaults(60, 2024).generate(topo.hosts())?;

    println!("topology : {}", topo.name);
    println!(
        "          {} switches, {} hosts, {} directed links",
        topo.network.switch_count(),
        topo.network.host_count(),
        topo.network.link_count()
    );
    println!(
        "workload : {} flows, horizon {:?}",
        flows.len(),
        flows.horizon()
    );
    println!("power    : {power}");
    println!();

    // One solver session per network; schedulers plug in by name. Joint
    // scheduling + routing (the paper's Random-Schedule), the SP+MCF
    // baseline, and "no energy management at all" — all behind the same
    // Algorithm interface.
    let mut ctx = SolverContext::from_network(&topo.network)?;
    let registry = AlgorithmRegistry::with_defaults();
    let simulator = Simulator::new(power);

    let mut solutions = Vec::new();
    for (label, name) in [
        ("Random-Schedule (RS)", "dcfsr"),
        ("Shortest-Path + MCF", "sp-mcf"),
        ("full-rate greedy", "greedy"),
    ] {
        let mut algo = registry.create(name)?;
        solutions.push((label, algo.solve(&mut ctx, &flows, &power)?));
    }

    // dcfsr already solved the fractional relaxation, so the lower bound
    // every scheme is normalised by comes for free.
    let lb = solutions[0].1.lower_bound.expect("dcfsr reports the bound");

    println!(
        "{:<28} {:>12} {:>12} {:>8} {:>10}",
        "scheme", "energy", "vs LB", "links", "misses"
    );
    println!(
        "{:<28} {:>12.2} {:>12.3} {:>8} {:>10}",
        "fractional lower bound", lb, 1.0, "-", "-"
    );
    for (label, solution) in &solutions {
        let schedule = solution.schedule.as_ref().expect("scheduling algorithm");
        let report = simulator.run_ctx(&ctx, &flows, schedule);
        let energy = report.energy.total();
        println!(
            "{:<28} {:>12.2} {:>12.3} {:>8} {:>10}",
            label,
            energy,
            energy / lb,
            report.active_link_count(),
            report.deadline_misses
        );
    }

    println!();
    let diagnostics = &solutions[0].1.diagnostics;
    println!(
        "Random-Schedule used {} rounding attempt(s); worst link over-capacity by {:.3}",
        diagnostics.rounding_attempts.unwrap_or(0),
        diagnostics.capacity_excess.unwrap_or(0.0)
    );
    Ok(())
}
