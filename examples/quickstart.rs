//! Quickstart: schedule a random deadline-constrained workload on a
//! fat-tree with every scheme in the crate and compare their energy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use deadline_dcn::core::{baselines, prelude::*};
use deadline_dcn::flow::workload::UniformWorkload;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 2 setup, scaled down: a k=4 fat-tree (20 switches,
    // 16 hosts), 60 flows over the horizon [1, 100], volumes ~ N(10, 3),
    // power function f(x) = x^2 with link capacity 10.
    let topo = builders::fat_tree(4);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
    let flows = UniformWorkload::paper_defaults(60, 2024).generate(topo.hosts())?;

    println!("topology : {}", topo.name);
    println!(
        "          {} switches, {} hosts, {} directed links",
        topo.network.switch_count(),
        topo.network.host_count(),
        topo.network.link_count()
    );
    println!(
        "workload : {} flows, horizon {:?}",
        flows.len(),
        flows.horizon()
    );
    println!("power    : {power}");
    println!();

    // Joint scheduling + routing (the paper's Random-Schedule, Algorithm 2).
    let outcome = RandomSchedule::default().run(&topo.network, &flows, &power)?;
    // Shortest-path routing + optimal scheduling (the paper's SP+MCF baseline).
    let sp = baselines::sp_mcf(&topo.network, &flows, &power)?;
    // No energy management at all: shortest path at full line rate.
    let greedy = baselines::full_rate_greedy(&topo.network, &flows, &power)?;

    let lb = outcome.lower_bound;
    let simulator = Simulator::new(power);

    println!(
        "{:<28} {:>12} {:>12} {:>8} {:>10}",
        "scheme", "energy", "vs LB", "links", "misses"
    );
    for (name, schedule) in [
        ("fractional lower bound", None),
        ("Random-Schedule (RS)", Some(&outcome.schedule)),
        ("Shortest-Path + MCF", Some(&sp)),
        ("full-rate greedy", Some(&greedy)),
    ] {
        match schedule {
            None => {
                println!(
                    "{:<28} {:>12.2} {:>12.3} {:>8} {:>10}",
                    name, lb, 1.0, "-", "-"
                );
            }
            Some(s) => {
                let report = simulator.run(&topo.network, &flows, s);
                let energy = report.energy.total();
                println!(
                    "{:<28} {:>12.2} {:>12.3} {:>8} {:>10}",
                    name,
                    energy,
                    energy / lb,
                    report.active_link_count(),
                    report.deadline_misses
                );
            }
        }
    }

    println!();
    println!(
        "Random-Schedule used {} rounding attempt(s); worst link over-capacity by {:.3}",
        outcome.attempts, outcome.capacity_excess
    );
    Ok(())
}
