//! Online rolling-horizon scheduling of Poisson arrivals on a fat-tree.
//!
//! The paper's DCFSR algorithm assumes clairvoyant knowledge of the whole
//! flow set; real partition–aggregate and shuffle traffic arrives online.
//! This example draws the paper's uniform workload, replaces its release
//! times with a Poisson arrival process at two load factors, executes each
//! instance through the event-driven `OnlineEngine` under the `resolve`
//! policy (re-solving the residual instance at every arrival on one warm
//! solver context), and compares the stitched online schedule against the
//! offline clairvoyant solve of the same instance. See
//! `policy_arrivals.rs` for the other registered policies.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_arrivals
//! ```

use deadline_dcn::core::online::OnlineEngine;
use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::{ArrivalProcess, UniformWorkload};
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = builders::fat_tree(4);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
    let base = UniformWorkload::paper_defaults(24, 7).generate(topo.hosts())?;

    println!("topology : {}", topo.name);
    println!(
        "workload : {} flows, Poisson arrivals over the paper's uniform template",
        base.len()
    );
    println!();
    println!(
        "{:>6}  {:>8}  {:>9}  {:>10}  {:>11}  {:>6}  {:>6}",
        "load", "events", "re-solves", "online E", "offline E", "ratio", "missed"
    );

    for load in [0.5, 4.0] {
        let flows = ArrivalProcess::with_load(load, 7).apply(&base)?;
        let mut ctx = SolverContext::from_network(&topo.network)?;
        let mut online = OnlineEngine::builder()
            .algorithm("dcfsr")
            .policy("resolve")
            .seed(7)
            .build()?;
        let outcome = online.run_vs_offline(&mut ctx, &flows, &power)?;
        let report = &outcome.report;

        // Execute the stitched schedule in the fluid simulator; rejected
        // flows (none under AdmitAll) would be excluded from the misses.
        let sim = Simulator::new(power).run_admitted(
            ctx.graph(),
            &flows,
            &outcome.schedule,
            &report.admitted_mask(),
        );
        assert_eq!(sim.deadline_misses, report.missed());

        println!(
            "{:>6}  {:>8}  {:>9}  {:>10.2}  {:>11.2}  {:>6.3}  {:>6}",
            load,
            report.events,
            report.resolves,
            report.online_energy,
            report.offline_energy.unwrap(),
            report.competitive_ratio().unwrap(),
            report.missed()
        );
    }

    println!();
    println!("`ratio` is online energy / offline clairvoyant energy: the price of");
    println!("scheduling without future knowledge, re-paid at every arrival event.");
    Ok(())
}
