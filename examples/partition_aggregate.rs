//! Partition–aggregate ("search") traffic on a leaf–spine fabric.
//!
//! The paper motivates deadline-constrained flows with user-facing services
//! such as web search: an aggregator fans a query out to many workers and
//! every response must return before a tight, user-visible deadline. This
//! example generates that traffic pattern, schedules it with both
//! Random-Schedule and the SP+MCF baseline, and reports energy and deadline
//! slack.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example partition_aggregate
//! ```

use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::PartitionAggregateWorkload;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = builders::leaf_spine(8, 4, 8);
    let power = PowerFunction::new(0.5, 1.0, 2.0, 10.0)?;
    let workload = PartitionAggregateWorkload {
        requests: 24,
        workers_per_request: 12,
        response_volume: 2.0,
        deadline_budget: 8.0,
        horizon_start: 1.0,
        horizon_end: 100.0,
        seed: 7,
    };
    let flows = workload.generate(topo.hosts())?;

    println!("topology : {}", topo.name);
    println!(
        "workload : {} requests x {} workers = {} response flows, {} time-unit budget each",
        workload.requests,
        workload.workers_per_request,
        flows.len(),
        workload.deadline_budget
    );
    println!("power    : {power}\n");

    let mut ctx = SolverContext::from_network(&topo.network)?;
    let rs = Dcfsr::default().solve(&mut ctx, &flows, &power)?;
    let sp = RoutedMcf::shortest_path().solve(&mut ctx, &flows, &power)?;
    let simulator = Simulator::new(power);

    for (name, solution) in [("Random-Schedule", &rs), ("SP+MCF", &sp)] {
        let schedule = solution
            .schedule
            .as_ref()
            .expect("both algorithms schedule");
        let report = simulator.run_ctx(&ctx, &flows, schedule);
        let worst_slack = report
            .flows
            .iter()
            .map(|f| f.slack())
            .fold(f64::INFINITY, f64::min);
        let mean_slack: f64 =
            report.flows.iter().map(|f| f.slack()).sum::<f64>() / report.flows.len() as f64;
        println!("{name}");
        println!(
            "  energy            : {:>10.2} (idle {:.2}, dynamic {:.2})",
            report.energy.total(),
            report.energy.idle,
            report.energy.dynamic
        );
        println!(
            "  normalised vs LB  : {:>10.3}",
            report.energy.total() / rs.lower_bound.expect("dcfsr reports the bound")
        );
        println!("  active links      : {:>10}", report.active_link_count());
        println!("  deadline misses   : {:>10}", report.deadline_misses);
        println!("  worst slack       : {:>10.3} time units", worst_slack);
        println!("  mean slack        : {:>10.3} time units\n", mean_slack);
    }

    println!(
        "fractional lower bound: {:.2}",
        rs.lower_bound.expect("dcfsr reports the bound")
    );
    Ok(())
}
