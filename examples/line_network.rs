//! The paper's worked Example 1 (Section III-C, Fig. 1): a three-node line
//! network `A — B — C` with power function `f(x) = x^2` and two flows,
//!
//! * `j1 = (A -> C, release 2, deadline 4, volume 6)`
//! * `j2 = (A -> B, release 1, deadline 3, volume 8)`
//!
//! whose optimal rates satisfy `sqrt(2) * s1 = s2 = (8 + 6 sqrt 2) / 3`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example line_network
//! ```

use deadline_dcn::core::{Algorithm, RoutedMcf, SolverContext};
use deadline_dcn::flow::FlowSet;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::topology::builders;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = builders::line_with_capacity(3, 1e9);
    let (a, b, c) = (topo.hosts()[0], topo.hosts()[1], topo.hosts()[2]);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 1e9);

    let flows = FlowSet::from_tuples([
        (a, c, 2.0, 4.0, 6.0), // j1
        (a, b, 1.0, 3.0, 8.0), // j2
    ])?;

    // The line network forces the routes, so the optimal DCFS schedule is
    // exactly the registry's `sp-mcf` algorithm.
    let mut ctx = SolverContext::from_network(&topo.network)?;
    let solution = RoutedMcf::shortest_path().solve(&mut ctx, &flows, &power)?;
    let schedule = solution.schedule.as_ref().expect("sp-mcf schedules");
    ctx.verify(schedule, &flows, &power)?;

    let s2_expected = (8.0 + 6.0 * 2f64.sqrt()) / 3.0;
    let s1_expected = s2_expected / 2f64.sqrt();

    println!("Example 1 of the paper (line network A - B - C, f(x) = x^2)\n");
    for flow in flows.iter() {
        let fs = schedule.flow_schedule(flow.id).expect("flow scheduled");
        let rate = fs.profile.max_rate();
        let expected = if flow.id == 0 {
            s1_expected
        } else {
            s2_expected
        };
        println!(
            "flow j{} : {} -> {}  volume {:>4}  span [{}, {}]",
            flow.id + 1,
            topo.network.node(flow.src).label,
            topo.network.node(flow.dst).label,
            flow.volume,
            flow.release,
            flow.deadline
        );
        println!("          rate = {rate:.6}   (paper: {expected:.6})");
        for (&link, profile) in &fs.link_profiles {
            let l = topo.network.link(link);
            for (s, e, r) in profile.segments() {
                println!(
                    "          link {} -> {} : [{s:.3}, {e:.3}] at rate {r:.3}",
                    topo.network.node(l.src).label,
                    topo.network.node(l.dst).label
                );
            }
        }
        println!();
    }

    let energy = schedule.energy(&power).total();
    let expected_energy = 2.0 * 6.0 * s1_expected + 8.0 * s2_expected;
    println!("total energy = {energy:.6}  (paper closed form: {expected_energy:.6})");
    Ok(())
}
