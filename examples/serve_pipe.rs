//! Driving the scheduler-as-a-service daemon over an in-memory pipe.
//!
//! `dcn-serve` normally sits on a TCP socket or stdio, but the daemon is a
//! library first: this example starts an in-process [`dcn_server::Server`]
//! on a fat-tree, encodes a handful of wire requests exactly as a remote
//! client would (length-prefixed JSON frames), serves them through an
//! in-memory pipe, and decodes the reply stream — admission decisions with
//! committed rate plans, a lifecycle query, and the shutdown handshake.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_pipe
//! ```
//!
//! The same byte stream produces the same reply bytes at any
//! `shard_workers` width; piping the printed frames through
//! `dcn-serve --stdio` reproduces them verbatim.

use std::io::Cursor;

use dcn_server::{
    encode_frame, read_frame, Request, RequestBody, Response, ResponseBody, Server, ServerConfig,
    SubmitFlow, TopologySpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ServerConfig::new(TopologySpec::FatTree { k: 4 });
    config.seed = 7;
    config.shard_workers = 2;

    // Fat-tree(k=4) hosts: 8..12 (pod 0), 16..20 (pod 1), 24..28 (pod 2),
    // 32..36 (pod 3). Sources in different pods land on different shard
    // buckets.
    let mut stream = Vec::new();
    let submissions = [
        (8usize, 17usize, 0.0, 4.0, 12.0),
        (16, 25, 0.5, 3.5, 8.0),
        (24, 9, 1.0, 2.0, 30.0),
    ];
    for (id, &(src, dst, release, deadline, volume)) in submissions.iter().enumerate() {
        stream.extend_from_slice(&encode_frame(&Request::new(
            id as u64,
            RequestBody::SubmitFlow(SubmitFlow {
                src,
                dst,
                release,
                deadline,
                volume,
            }),
        )));
    }
    // Server-side flow ids are dense in submission order: flow 0 is the
    // first submission.
    stream.extend_from_slice(&encode_frame(&Request::new(
        100,
        RequestBody::QueryFlow { flow: 0 },
    )));
    stream.extend_from_slice(&encode_frame(&Request::new(101, RequestBody::Shutdown)));

    let mut server = Server::start(config)?;
    let mut reader = Cursor::new(stream);
    let mut replies = Vec::new();
    server.serve_connection(&mut reader, &mut replies)?;
    server.shutdown();

    println!("reply stream ({} bytes):\n", replies.len());
    let mut reader = Cursor::new(replies);
    while let Some(payload) = read_frame(&mut reader)? {
        let reply: Response = serde_json::from_str(std::str::from_utf8(&payload)?)?;
        match reply.body {
            ResponseBody::Admit(admit) => {
                let plan = admit.plan.as_ref();
                println!(
                    "  #{:<3} admit   flow={} admitted={} path={:?} segments={}",
                    reply.id,
                    admit.flow,
                    admit.admitted,
                    plan.map(|p| p.path.clone()).unwrap_or_default(),
                    plan.map_or(0, |p| p.segments.len()),
                );
            }
            ResponseBody::Status(status) => println!(
                "  #{:<3} status  flow={} state={} delivered={:.2} remaining={:.2}",
                reply.id, status.flow, status.state, status.delivered, status.remaining
            ),
            ResponseBody::Bye => println!("  #{:<3} bye", reply.id),
            other => println!("  #{:<3} {other:?}", reply.id),
        }
    }
    Ok(())
}
