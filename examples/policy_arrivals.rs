//! Online policies head to head: full re-solve versus hybrid slack watch.
//!
//! The `resolve` policy pays a complete Frank–Wolfe re-solve at every
//! arrival event — the rolling-horizon loop of `online_arrivals.rs`. The
//! `hybrid` policy runs cheap earliest-deadline-first rate assignment and
//! falls back to the solver only when some in-flight flow's slack drops
//! below a threshold fraction of its remaining time. This example replays
//! the **same** 200-flow Poisson trace on a fat-tree (k = 8) through both
//! policies and reports how many solver invocations the slack watch
//! avoided without missing a single deadline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_arrivals
//! ```

use deadline_dcn::core::online::{OnlineEngine, OnlineReport};
use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::{ArrivalProcess, UniformWorkload};
use deadline_dcn::power::PowerFunction;
use deadline_dcn::topology::builders;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = builders::fat_tree(8);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let base = UniformWorkload::paper_defaults(200, 11).generate(topo.hosts())?;
    let flows = ArrivalProcess::with_load(4.0, 11).apply(&base)?;

    println!("topology : {}", topo.name);
    println!(
        "workload : {} flows, Poisson arrivals (load 4.0), one shared trace",
        flows.len()
    );
    println!();
    println!(
        "{:>8}  {:>8}  {:>9}  {:>12}  {:>6}",
        "policy", "events", "re-solves", "energy", "missed"
    );

    let mut reports: Vec<(String, OnlineReport)> = Vec::new();
    for name in ["resolve", "hybrid"] {
        let mut ctx = SolverContext::from_network(&topo.network)?;
        let mut engine = OnlineEngine::builder()
            .algorithm("dcfsr")
            .policy(name)
            .seed(11)
            .build()?;
        let outcome = engine.run(&mut ctx, &flows, &power)?;
        let report = outcome.report;
        println!(
            "{:>8}  {:>8}  {:>9}  {:>12.2}  {:>6}",
            name,
            report.events,
            report.resolves,
            report.online_energy,
            report.missed()
        );
        reports.push((name.to_string(), report));
    }

    let resolve = &reports[0].1;
    let hybrid = &reports[1].1;
    // The whole point of the slack watch: at most a quarter of the full
    // re-solve count, at zero deadline cost.
    assert!(
        hybrid.resolves * 4 <= resolve.resolves,
        "hybrid made {} re-solves, more than a quarter of resolve's {}",
        hybrid.resolves,
        resolve.resolves
    );
    assert_eq!(hybrid.missed(), 0, "hybrid missed deadlines");

    println!();
    println!(
        "hybrid needed {} solver call(s) where resolve needed {} — a {:.0}% reduction,",
        hybrid.resolves,
        resolve.resolves,
        100.0 * (1.0 - hybrid.resolves as f64 / resolve.resolves.max(1) as f64)
    );
    println!("with every admitted flow still delivered by its deadline.");
    Ok(())
}
