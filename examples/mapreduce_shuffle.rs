//! MapReduce shuffle traffic on a fat-tree: all-to-all transfers between a
//! mapper group and a reducer group that must finish before a stage
//! deadline.
//!
//! The example sweeps the stage deadline to show how the energy of the
//! optimal deadline-aware schedule falls as the deadline is relaxed — the
//! speed-scaling effect the paper exploits — and contrasts the energy-aware
//! routing of Random-Schedule with plain shortest paths.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mapreduce_shuffle
//! ```

use deadline_dcn::core::prelude::*;
use deadline_dcn::flow::workload::ShuffleWorkload;
use deadline_dcn::power::PowerFunction;
use deadline_dcn::sim::Simulator;
use deadline_dcn::topology::builders;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = builders::fat_tree(4);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
    let simulator = Simulator::new(power);
    let mut ctx = SolverContext::from_network(&topo.network)?;

    println!("topology : {}", topo.name);
    println!("power    : {power}\n");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>10}",
        "deadline", "LB", "RS energy", "SP+MCF energy", "RS/LB"
    );

    for deadline in [20.0, 40.0, 60.0, 80.0] {
        let workload = ShuffleWorkload {
            mappers: 6,
            reducers: 6,
            volume_per_pair: 4.0,
            start: 0.0,
            deadline,
        };
        let flows = workload.generate(topo.hosts())?;

        let rs = Dcfsr::default().solve(&mut ctx, &flows, &power)?;
        let sp = RoutedMcf::shortest_path().solve(&mut ctx, &flows, &power)?;

        let rs_report = simulator.run_ctx(&ctx, &flows, rs.schedule.as_ref().unwrap());
        let sp_report = simulator.run_ctx(&ctx, &flows, sp.schedule.as_ref().unwrap());
        assert_eq!(
            rs_report.deadline_misses, 0,
            "RS must meet the stage deadline"
        );
        assert_eq!(
            sp_report.deadline_misses, 0,
            "SP+MCF must meet the stage deadline"
        );

        let lb = rs.lower_bound.expect("dcfsr reports the bound");
        println!(
            "{:>10.0} {:>14.2} {:>14.2} {:>14.2} {:>10.3}",
            deadline,
            lb,
            rs_report.energy.total(),
            sp_report.energy.total(),
            rs_report.energy.total() / lb
        );
    }

    println!("\nRelaxing the stage deadline lets every scheme slow transmissions down,");
    println!("so energy falls roughly as 1/deadline^(alpha-1) for the dynamic term.");
    Ok(())
}
