//! Timed link-state changes: the typed failure/recovery stream the online
//! scheduling layer merges into its event queue.

use crate::{GraphCsr, LinkId};

/// One timed change to the up/down state of a directed link.
///
/// Events carry the logical time they take effect at; applying one to a
/// [`GraphCsr`] mutates the view in place ([`GraphCsr::fail_link`] /
/// [`GraphCsr::restore_link`]) and therefore bumps its
/// [`GraphCsr::epoch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyEvent {
    /// The link fails at `time`: it leaves the adjacency arrays and its
    /// capacity masks to zero until a matching [`TopologyEvent::LinkUp`].
    LinkDown {
        /// Logical time the failure takes effect.
        time: f64,
        /// The failing directed link.
        link: LinkId,
    },
    /// The link recovers at `time` with its exact pre-failure capacity.
    LinkUp {
        /// Logical time the recovery takes effect.
        time: f64,
        /// The recovering directed link.
        link: LinkId,
    },
}

impl TopologyEvent {
    /// The logical time the event takes effect.
    pub fn time(&self) -> f64 {
        match *self {
            TopologyEvent::LinkDown { time, .. } | TopologyEvent::LinkUp { time, .. } => time,
        }
    }

    /// The directed link the event concerns.
    pub fn link(&self) -> LinkId {
        match *self {
            TopologyEvent::LinkDown { link, .. } | TopologyEvent::LinkUp { link, .. } => link,
        }
    }

    /// Whether this is a failure (as opposed to a recovery).
    pub fn is_down(&self) -> bool {
        matches!(self, TopologyEvent::LinkDown { .. })
    }

    /// Applies the event to a graph view. Returns `true` when the link
    /// state actually changed (a `LinkDown` for an already-down link, or a
    /// `LinkUp` for an already-up one, is a no-op that leaves the epoch
    /// untouched).
    pub fn apply(&self, graph: &mut GraphCsr) -> bool {
        match *self {
            TopologyEvent::LinkDown { link, .. } => graph.fail_link(link),
            TopologyEvent::LinkUp { link, .. } => graph.restore_link(link),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn events_apply_and_report_state_changes() {
        let topo = builders::fat_tree(4);
        let mut g = GraphCsr::from_network(&topo.network);
        let link = LinkId(3);
        let down = TopologyEvent::LinkDown { time: 1.5, link };
        let up = TopologyEvent::LinkUp { time: 2.5, link };
        assert_eq!(down.time(), 1.5);
        assert_eq!(up.link(), link);
        assert!(down.is_down() && !up.is_down());

        assert!(down.apply(&mut g));
        assert!(!g.is_link_up(link));
        assert!(!down.apply(&mut g), "re-failing is a no-op");
        assert!(up.apply(&mut g));
        assert!(g.is_link_up(link));
        assert!(!up.apply(&mut g), "re-restoring is a no-op");
    }
}
