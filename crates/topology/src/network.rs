//! The directed multigraph used to model a data-center network.

use crate::{LinkId, NodeId, NodeKind, Path};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A node (switch or host) of the network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The node's identifier.
    pub id: NodeId,
    /// The role this node plays (host, edge switch, ...).
    pub kind: NodeKind,
    /// Human-readable label assigned by the topology builder.
    pub label: String,
    /// Locality group the node belongs to, when the builder defines one
    /// (e.g. the pod index of a fat-tree's aggregation/edge switches and
    /// hosts). Core switches and topologies without pod structure leave
    /// this `None`.
    pub pod: Option<u32>,
}

/// A directed, capacitated link of the network.
///
/// The paper models the power consumed by the two ports of a physical cable
/// as the power of "the link"; because traffic in the two directions is
/// independent we represent every cable as two directed links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// The link's identifier.
    pub id: LinkId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Maximum transmission rate `C` (data units per time unit).
    pub capacity: f64,
}

/// The two endpoints of a link, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkEndpoints {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// A directed multigraph of switches, hosts and capacitated links.
///
/// # Example
///
/// ```
/// use dcn_topology::{Network, NodeKind};
///
/// let mut net = Network::new();
/// let a = net.add_node(NodeKind::Host, "A");
/// let b = net.add_node(NodeKind::Switch, "B");
/// let c = net.add_node(NodeKind::Host, "C");
/// net.add_duplex_link(a, b, 10.0);
/// net.add_duplex_link(b, c, 10.0);
///
/// let path = net.shortest_path(a, c).unwrap();
/// assert_eq!(path.nodes(), &[a, b, c]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing links per node, in insertion order.
    out_links: Vec<Vec<LinkId>>,
    /// Incoming links per node, in insertion order.
    in_links: Vec<Vec<LinkId>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given role and label, returning its id.
    pub fn add_node(&mut self, kind: NodeKind, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            label: label.into(),
            pod: None,
        });
        self.out_links.push(Vec::new());
        self.in_links.push(Vec::new());
        id
    }

    /// Assigns `node` to locality group (pod) `pod`. Builders with pod
    /// structure (the fat-tree) call this; pod-aware consumers read it back
    /// through [`Node::pod`] or [`crate::GraphCsr::pod_of`].
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or `pod` exceeds `u32::MAX - 1`.
    pub fn set_node_pod(&mut self, node: NodeId, pod: usize) {
        assert!(node.index() < self.nodes.len(), "unknown node {node}");
        assert!(pod < u32::MAX as usize, "pod index {pod} out of range");
        self.nodes[node.index()].pod = Some(pod as u32);
    }

    /// The locality group (pod) of `node`, if the builder assigned one.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_pod(&self, node: NodeId) -> Option<usize> {
        self.nodes[node.index()].pod.map(|p| p as usize)
    }

    /// Adds a directed link from `src` to `dst` with maximum rate `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist or `capacity` is not a
    /// positive, finite number.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, capacity: f64) -> LinkId {
        assert!(src.index() < self.nodes.len(), "unknown source node {src}");
        assert!(
            dst.index() < self.nodes.len(),
            "unknown destination node {dst}"
        );
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite, got {capacity}"
        );
        let id = LinkId(self.links.len());
        self.links.push(Link {
            id,
            src,
            dst,
            capacity,
        });
        self.out_links[src.index()].push(id);
        self.in_links[dst.index()].push(id);
        id
    }

    /// Adds a pair of directed links (`src -> dst` and `dst -> src`) modelling
    /// one physical cable, returning the two link ids.
    pub fn add_duplex_link(&mut self, src: NodeId, dst: NodeId, capacity: f64) -> (LinkId, LinkId) {
        let forward = self.add_link(src, dst, capacity);
        let backward = self.add_link(dst, src, capacity);
        (forward, backward)
    }

    /// Number of nodes (hosts + switches).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of switch nodes.
    pub fn switch_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_switch()).count()
    }

    /// Number of host nodes.
    pub fn host_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_host()).count()
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Iterates over all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Iterates over all directed links in id order.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Iterates over the ids of all host nodes, in id order.
    pub fn host_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().filter(|n| n.kind.is_host()).map(|n| n.id)
    }

    /// Iterates over the ids of all switch nodes, in id order.
    pub fn switch_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_switch())
            .map(|n| n.id)
    }

    /// Outgoing links of `node`, in insertion order.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_links[node.index()]
    }

    /// Incoming links of `node`, in insertion order.
    pub fn in_links(&self, node: NodeId) -> &[LinkId] {
        &self.in_links[node.index()]
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_links[node.index()].len()
    }

    /// Returns the endpoints of a link.
    pub fn endpoints(&self, link: LinkId) -> LinkEndpoints {
        let l = self.link(link);
        LinkEndpoints {
            src: l.src,
            dst: l.dst,
        }
    }

    /// Finds a directed link from `src` to `dst`, if one exists.
    ///
    /// If parallel links exist, the first inserted one is returned.
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.out_links[src.index()]
            .iter()
            .copied()
            .find(|&l| self.link(l).dst == dst)
    }

    /// Iterates over every directed link from `src` to `dst` (parallel
    /// links), in insertion order and without allocating: the scan is
    /// confined to the out-neighbourhood of `src`. The flat read path is
    /// [`crate::GraphCsr::links_between`], which serves the same query from
    /// the contiguous CSR arrays.
    pub fn find_links(&self, src: NodeId, dst: NodeId) -> impl Iterator<Item = LinkId> + '_ {
        self.out_links[src.index()]
            .iter()
            .copied()
            .filter(move |&l| self.link(l).dst == dst)
    }

    /// Reverse link of `link` (same cable, opposite direction), if present.
    pub fn reverse_link(&self, link: LinkId) -> Option<LinkId> {
        let l = self.link(link);
        self.find_link(l.dst, l.src)
    }

    /// Breadth-first shortest path (fewest hops) from `src` to `dst`.
    ///
    /// Returns `None` when `dst` is unreachable from `src`. Ties are broken
    /// deterministically by link insertion order.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        if src == dst {
            return Path::from_links(self, src, &[]).ok();
        }
        let n = self.node_count();
        let mut parent_link: Vec<Option<LinkId>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[src.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &lid in &self.out_links[u.index()] {
                let v = self.link(lid).dst;
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parent_link[v.index()] = Some(lid);
                    if v == dst {
                        return Some(self.reconstruct(src, dst, &parent_link));
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// BFS hop distance from `src` to every node (`usize::MAX` = unreachable).
    pub fn hop_distances(&self, src: NodeId) -> Vec<usize> {
        let n = self.node_count();
        let mut dist = vec![usize::MAX; n];
        dist[src.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &lid in &self.out_links[u.index()] {
                let v = self.link(lid).dst;
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Returns `true` if every node can reach every other node.
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let from_zero = self.hop_distances(NodeId(0));
        if from_zero.contains(&usize::MAX) {
            return false;
        }
        // Check the reverse direction by walking in-links from node 0.
        let n = self.node_count();
        let mut visited = vec![false; n];
        visited[0] = true;
        let mut queue = VecDeque::new();
        queue.push_back(NodeId(0));
        let mut seen = 1usize;
        while let Some(u) = queue.pop_front() {
            for &lid in &self.in_links[u.index()] {
                let v = self.link(lid).src;
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    seen += 1;
                    queue.push_back(v);
                }
            }
        }
        seen == n
    }

    fn reconstruct(&self, src: NodeId, dst: NodeId, parent_link: &[Option<LinkId>]) -> Path {
        let mut links_rev = Vec::new();
        let mut cur = dst;
        while cur != src {
            let lid = parent_link[cur.index()].expect("path reconstruction reached a dead end");
            links_rev.push(lid);
            cur = self.link(lid).src;
        }
        links_rev.reverse();
        Path::from_links(self, src, &links_rev).expect("reconstructed path must be valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        let b = net.add_node(NodeKind::Switch, "b");
        let c = net.add_node(NodeKind::Host, "c");
        net.add_duplex_link(a, b, 1.0);
        net.add_duplex_link(b, c, 1.0);
        net.add_duplex_link(a, c, 1.0);
        (net, a, b, c)
    }

    #[test]
    fn add_nodes_and_links() {
        let (net, a, b, c) = triangle();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.link_count(), 6);
        assert_eq!(net.host_count(), 2);
        assert_eq!(net.switch_count(), 1);
        assert_eq!(net.out_degree(a), 2);
        assert_eq!(net.out_degree(b), 2);
        assert_eq!(net.out_degree(c), 2);
    }

    #[test]
    fn find_link_and_reverse() {
        let (net, a, b, _c) = triangle();
        let l = net.find_link(a, b).unwrap();
        assert_eq!(net.link(l).src, a);
        assert_eq!(net.link(l).dst, b);
        let r = net.reverse_link(l).unwrap();
        assert_eq!(net.link(r).src, b);
        assert_eq!(net.link(r).dst, a);
        assert_ne!(l, r);
    }

    #[test]
    fn parallel_links_are_kept_separately() {
        let mut net = Network::new();
        let s = net.add_node(NodeKind::Host, "src");
        let d = net.add_node(NodeKind::Host, "dst");
        for _ in 0..4 {
            net.add_link(s, d, 2.0);
        }
        assert_eq!(net.find_links(s, d).count(), 4);
        assert_eq!(net.link_count(), 4);
    }

    #[test]
    fn shortest_path_direct_beats_two_hop() {
        let (net, a, _b, c) = triangle();
        let p = net.shortest_path(a, c).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.source(), a);
        assert_eq!(p.destination(), c);
    }

    #[test]
    fn shortest_path_to_self_is_empty() {
        let (net, a, _, _) = triangle();
        let p = net.shortest_path(a, a).unwrap();
        assert_eq!(p.len(), 0);
        assert_eq!(p.source(), a);
        assert_eq!(p.destination(), a);
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        let b = net.add_node(NodeKind::Host, "b");
        // Only a -> b, not b -> a.
        net.add_link(a, b, 1.0);
        assert!(net.shortest_path(b, a).is_none());
        assert!(net.shortest_path(a, b).is_some());
    }

    #[test]
    fn hop_distances_line() {
        let mut net = Network::new();
        let n0 = net.add_node(NodeKind::Host, "0");
        let n1 = net.add_node(NodeKind::Switch, "1");
        let n2 = net.add_node(NodeKind::Switch, "2");
        let n3 = net.add_node(NodeKind::Host, "3");
        net.add_duplex_link(n0, n1, 1.0);
        net.add_duplex_link(n1, n2, 1.0);
        net.add_duplex_link(n2, n3, 1.0);
        let d = net.hop_distances(n0);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn strongly_connected_detection() {
        let (net, ..) = triangle();
        assert!(net.is_strongly_connected());

        let mut oneway = Network::new();
        let a = oneway.add_node(NodeKind::Host, "a");
        let b = oneway.add_node(NodeKind::Host, "b");
        oneway.add_link(a, b, 1.0);
        assert!(!oneway.is_strongly_connected());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        let b = net.add_node(NodeKind::Host, "b");
        net.add_link(a, b, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown destination node")]
    fn dangling_endpoint_rejected() {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        net.add_link(a, NodeId(7), 1.0);
    }

    #[test]
    fn pod_labels_default_to_none_and_round_trip() {
        let (mut net, a, b, _c) = triangle();
        assert_eq!(net.node_pod(a), None);
        net.set_node_pod(a, 3);
        net.set_node_pod(b, 0);
        assert_eq!(net.node_pod(a), Some(3));
        assert_eq!(net.node_pod(b), Some(0));
        assert_eq!(net.node(a).pod, Some(3));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn pod_label_rejects_unknown_node() {
        let (mut net, ..) = triangle();
        net.set_node_pod(NodeId(99), 0);
    }

    #[test]
    fn host_and_switch_iterators() {
        let (net, a, b, c) = triangle();
        let hosts: Vec<_> = net.host_ids().collect();
        assert_eq!(hosts, vec![a, c]);
        let switches: Vec<_> = net.switch_ids().collect();
        assert_eq!(switches, vec![b]);
    }
}
