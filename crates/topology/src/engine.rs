//! An arena-reuse Dijkstra engine over [`GraphCsr`].
//!
//! The schedulers in this workspace call Dijkstra in tight loops — the
//! Frank–Wolfe multi-commodity flow solver runs one search per distinct
//! commodity source per iteration per interval. A naive implementation
//! re-allocates its distance/parent/visited vectors and a fresh binary heap
//! on every call; [`ShortestPathEngine`] owns all of that scratch state and
//! reuses it:
//!
//! * `dist`/`parent` arenas are invalidated in `O(1)` between runs by a
//!   **generation counter** (`seen`/`done` epoch stamps) instead of
//!   re-zeroing `O(nodes)` memory;
//! * the priority queue — a flat 4-ary heap over `(distance bits, node)`
//!   integer keys, see [`HeapKey`] — is `clear()`ed, keeping its
//!   allocation;
//! * [`ShortestPathEngine::single_source_all_targets`] settles a whole
//!   batch of targets in a single search with multi-target early exit, and
//!   [`ShortestPathEngine::extract_path_links`] walks the parent arena into
//!   a caller-provided buffer, so the steady state performs **zero heap
//!   allocations**.
//!
//! Results are bit-for-bit identical to the classic per-call
//! [`crate::dijkstra`]: the same heap ordering (min distance, ties broken
//! by smallest node id), the same strict-improvement relaxation, and the
//! same link insertion order via the CSR adjacency.
//!
//! # Example
//!
//! ```
//! use dcn_topology::{builders, GraphCsr, ShortestPathEngine};
//!
//! let ft = builders::fat_tree(4);
//! let graph = GraphCsr::from_network(&ft.network);
//! let hosts = ft.hosts();
//!
//! let mut engine = ShortestPathEngine::new();
//! let mut links = Vec::new();
//!
//! // Batched: one search settles every target of a common source.
//! engine.single_source_all_targets(&graph, hosts[0], &[hosts[5], hosts[9]], |_| 1.0);
//! for &dst in &[hosts[5], hosts[9]] {
//!     assert!(engine.extract_path_links(&graph, dst, &mut links));
//!     assert!(!links.is_empty());
//! }
//!
//! // Single target, allocation-free into a reused buffer.
//! assert!(engine.dijkstra_into(&graph, hosts[0], hosts[15], |_| 1.0, &mut links));
//! assert_eq!(links.len(), 6);
//! ```

use crate::{GraphCsr, LinkId, NodeId, Path};

/// Sentinel parent for the source node of a search.
const NO_PARENT: u32 = u32::MAX;

/// Per-node scratch record: distance, parent link and the three epoch
/// stamps, packed together so one search step touches one cache line per
/// node instead of five scattered arrays.
#[derive(Debug, Clone, Copy, Default)]
struct NodeState {
    /// Tentative distance; valid only when `seen == epoch`.
    dist: f64,
    /// Parent link of the current best path; valid when `seen == epoch`.
    parent: u32,
    /// Epoch at which `dist`/`parent` were last written.
    seen: u32,
    /// Epoch at which the node was settled (popped with final distance).
    done: u32,
    /// Epoch at which the node was last marked as a search target.
    target: u32,
}

/// A priority-queue entry: the distance's IEEE-754 bit pattern (which
/// orders identically to the non-negative finite `f64` it encodes) paired
/// with the node id as the deterministic tie-break. The lexicographic
/// order on this pair is a *strict total order* over all live entries — a
/// node is re-pushed only with a strictly smaller distance — so every
/// correct priority queue pops the exact same sequence; the engine can use
/// a flat 4-ary heap with integer comparisons without changing any result.
type HeapKey = (u64, u32);

/// A minimal 4-ary min-heap over [`HeapKey`]s: shallower than a binary
/// heap (fewer cache misses per pop) and branch-cheap integer comparisons.
#[derive(Debug, Clone, Default)]
struct QuadHeap {
    items: Vec<HeapKey>,
}

impl QuadHeap {
    fn clear(&mut self) {
        self.items.clear();
    }

    #[inline]
    fn push(&mut self, key: HeapKey) {
        self.items.push(key);
        let mut i = self.items.len() - 1;
        while i > 0 {
            let p = (i - 1) / 4;
            if self.items[i] < self.items[p] {
                self.items.swap(i, p);
                i = p;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<HeapKey> {
        let len = self.items.len();
        if len == 0 {
            return None;
        }
        let top = self.items.swap_remove(0);
        let len = self.items.len();
        let mut i = 0;
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            let last = (first + 4).min(len);
            for c in first + 1..last {
                if self.items[c] < self.items[best] {
                    best = c;
                }
            }
            if self.items[best] < self.items[i] {
                self.items.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
        Some(top)
    }
}

/// A reusable Dijkstra engine: owns the per-node state arena, the epoch
/// stamps that invalidate it in `O(1)`, and the priority-queue allocation.
/// See the module-level documentation for the design and an example.
#[derive(Debug, Clone)]
pub struct ShortestPathEngine {
    /// Per-node scratch state, indexed by node id.
    states: Vec<NodeState>,
    /// Current generation; bumped per run instead of re-zeroing the arena.
    epoch: u32,
    /// Reused priority queue.
    heap: QuadHeap,
    /// Source of the most recent run.
    src: NodeId,
}

impl Default for ShortestPathEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ShortestPathEngine {
    /// Creates an engine with empty arenas; they grow to the size of the
    /// first graph searched and are reused afterwards.
    pub fn new() -> Self {
        Self {
            states: Vec::new(),
            epoch: 0,
            heap: QuadHeap::default(),
            src: NodeId(0),
        }
    }

    /// Starts a new generation, growing the arena to `n` nodes if needed.
    fn prepare(&mut self, n: usize) {
        if self.states.len() < n {
            self.states.resize(n, NodeState::default());
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale stamps could collide, so pay one full
            // reset every 2^32 runs.
            self.states.fill(NodeState::default());
            self.epoch = 1;
        }
        self.heap.clear();
    }

    /// Runs Dijkstra from `src`. With a non-empty `targets` list the search
    /// stops as soon as every (reachable) target is settled; with an empty
    /// list it settles the whole reachable component.
    ///
    /// Weights must be non-negative; `f64::INFINITY` forbids a link.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a weight is negative or NaN.
    pub fn single_source_all_targets(
        &mut self,
        graph: &GraphCsr,
        src: NodeId,
        targets: &[NodeId],
        mut link_weight: impl FnMut(LinkId) -> f64,
    ) {
        debug_assert!(
            graph.node_count() < u32::MAX as usize && graph.link_count() < NO_PARENT as usize,
            "graph exceeds the engine's u32 id range"
        );
        self.prepare(graph.node_count());
        self.src = src;
        let epoch = self.epoch;

        let mut remaining = 0usize;
        for &t in targets {
            let st = &mut self.states[t.index()];
            if st.target != epoch {
                st.target = epoch;
                remaining += 1;
            }
        }
        let early_exit = !targets.is_empty();

        {
            let st = &mut self.states[src.index()];
            st.dist = 0.0;
            st.parent = NO_PARENT;
            st.seen = epoch;
        }
        self.heap.push((0.0f64.to_bits(), src.index() as u32));

        while let Some((key, u)) = self.heap.pop() {
            let d = f64::from_bits(key);
            let st = &mut self.states[u as usize];
            if st.done == epoch {
                continue;
            }
            st.done = epoch;
            if early_exit && st.target == epoch {
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            for (lid, v) in graph.out_links_with_dsts(NodeId(u as usize)) {
                let w = link_weight(lid);
                debug_assert!(
                    !w.is_nan() && w >= 0.0,
                    "link weight must be non-negative, got {w}"
                );
                if w.is_infinite() {
                    continue;
                }
                let nd = d + w;
                let sv = &mut self.states[v.index()];
                if sv.seen != epoch || nd < sv.dist {
                    sv.seen = epoch;
                    sv.dist = nd;
                    sv.parent = lid.index() as u32;
                    // Leaf skip: if `v` is not a target and its only
                    // outgoing edge returns to `u` — which is settled, so
                    // that relaxation could never improve anything — then
                    // popping `v` would have no observable effect. Skip
                    // the heap round-trip (a large saving on host-heavy
                    // data-center topologies where most nodes are
                    // degree-1 leaves). If a *different* node later
                    // improves `v`, the condition fails and `v` is pushed
                    // normally. Only valid under early exit: a full
                    // sweep promises to settle every reachable node.
                    if early_exit
                        && sv.target != epoch
                        && graph.sole_out_neighbor(v) == Some(NodeId(u as usize))
                    {
                        continue;
                    }
                    self.heap.push((nd.to_bits(), v.index() as u32));
                }
            }
        }
    }

    /// Returns `true` if `node` was settled (final distance) by the most
    /// recent run. A target passed to the run is settled iff reachable.
    pub fn settled(&self, node: NodeId) -> bool {
        self.states[node.index()].done == self.epoch
    }

    /// The distance of `node` from the most recent run's source, if the
    /// node was settled.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        self.settled(node).then(|| self.states[node.index()].dist)
    }

    /// The final parent link of `node` (the last hop of its shortest path),
    /// if the node was settled and is not the source.
    pub fn parent_link(&self, node: NodeId) -> Option<LinkId> {
        let p = self.states[node.index()].parent;
        (self.settled(node) && p != NO_PARENT).then_some(LinkId(p as usize))
    }

    /// Writes the link sequence of the shortest path from the most recent
    /// run's source to `dst` into `links` (cleared first, in source → `dst`
    /// order). Returns `false` — leaving `links` empty — when `dst` was not
    /// settled; an empty buffer with `true` means `dst` is the source.
    pub fn extract_path_links(
        &self,
        graph: &GraphCsr,
        dst: NodeId,
        links: &mut Vec<LinkId>,
    ) -> bool {
        links.clear();
        if !self.settled(dst) {
            return false;
        }
        let mut cur = dst;
        while cur != self.src {
            let p = self.states[cur.index()].parent;
            debug_assert!(p != NO_PARENT, "settled node has a parent chain");
            let lid = LinkId(p as usize);
            links.push(lid);
            cur = graph.link_src(lid);
        }
        links.reverse();
        true
    }

    /// Single-target Dijkstra with early exit, writing the path's links into
    /// the caller's reused buffer. Returns `false` when `dst` is
    /// unreachable. This is the allocation-free hot-path entry point.
    pub fn dijkstra_into(
        &mut self,
        graph: &GraphCsr,
        src: NodeId,
        dst: NodeId,
        link_weight: impl FnMut(LinkId) -> f64,
        links: &mut Vec<LinkId>,
    ) -> bool {
        self.single_source_all_targets(graph, src, std::slice::from_ref(&dst), link_weight);
        self.extract_path_links(graph, dst, links)
    }

    /// Single-target Dijkstra returning an owned [`Path`] (the drop-in
    /// engine counterpart of [`crate::dijkstra`]). Returns `None` when
    /// `dst` is unreachable.
    pub fn shortest_path(
        &mut self,
        graph: &GraphCsr,
        src: NodeId,
        dst: NodeId,
        link_weight: impl FnMut(LinkId) -> f64,
    ) -> Option<Path> {
        if src == dst {
            return graph.path_from_links(src, &[]).ok();
        }
        self.single_source_all_targets(graph, src, std::slice::from_ref(&dst), link_weight);
        self.path_to(graph, dst)
    }

    /// Builds the owned [`Path`] to `dst` from the most recent run, or
    /// `None` if `dst` was not settled.
    pub fn path_to(&self, graph: &GraphCsr, dst: NodeId) -> Option<Path> {
        if !self.settled(dst) {
            return None;
        }
        let mut links = Vec::new();
        let extracted = self.extract_path_links(graph, dst, &mut links);
        debug_assert!(extracted);
        graph.path_from_links(self.src, &links).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(deprecated)]
    use crate::dijkstra;
    use crate::{builders, Network, NodeKind};

    fn diamond() -> (Network, NodeId, NodeId, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        let b = net.add_node(NodeKind::Switch, "b");
        let c = net.add_node(NodeKind::Switch, "c");
        let d = net.add_node(NodeKind::Host, "d");
        net.add_duplex_link(a, b, 1.0);
        net.add_duplex_link(b, d, 1.0);
        net.add_duplex_link(a, c, 1.0);
        net.add_duplex_link(c, d, 1.0);
        (net, a, b, c, d)
    }

    #[test]
    fn engine_matches_classic_dijkstra() {
        let topo = builders::fat_tree(4);
        let g = GraphCsr::from_network(&topo.network);
        let mut engine = ShortestPathEngine::new();
        let hosts = topo.hosts();
        // Non-uniform deterministic weights exercise tie-breaking.
        let weight = |l: LinkId| 1.0 + (l.index() % 3) as f64 * 0.25;
        for &a in hosts.iter().step_by(2) {
            for &b in hosts.iter().step_by(3) {
                #[allow(deprecated)] // pins the engine against the classic one-shot path
                let classic = dijkstra(&topo.network, a, b, weight);
                let engined = engine.shortest_path(&g, a, b, weight);
                assert_eq!(classic, engined, "paths {a} -> {b} diverge");
            }
        }
    }

    #[test]
    fn engine_reuse_does_not_leak_state_between_runs() {
        let (net, a, b, c, d) = diamond();
        let g = GraphCsr::from_network(&net);
        let mut engine = ShortestPathEngine::new();
        // First run: forbid b, path must use c.
        let p1 = engine
            .shortest_path(&g, a, d, |l| {
                if g.link_src(l) == b || g.link_dst(l) == b {
                    f64::INFINITY
                } else {
                    1.0
                }
            })
            .unwrap();
        assert!(!p1.contains_node(b));
        // Second run on the same arenas: forbid c, path must use b.
        let p2 = engine
            .shortest_path(&g, a, d, |l| {
                if g.link_src(l) == c || g.link_dst(l) == c {
                    f64::INFINITY
                } else {
                    1.0
                }
            })
            .unwrap();
        assert!(p2.contains_node(b));
        assert!(!p2.contains_node(c));
    }

    #[test]
    fn multi_target_settles_every_target_once() {
        let topo = builders::fat_tree(4);
        let g = GraphCsr::from_network(&topo.network);
        let mut engine = ShortestPathEngine::new();
        let hosts = topo.hosts();
        let src = hosts[0];
        let targets = [hosts[3], hosts[7], hosts[15], hosts[3]]; // duplicate ok
        engine.single_source_all_targets(&g, src, &targets, |_| 1.0);
        let mut links = Vec::new();
        for &t in &targets {
            assert!(engine.settled(t));
            assert!(engine.extract_path_links(&g, t, &mut links));
            let path = g.path_from_links(src, &links).unwrap();
            #[allow(deprecated)]
            let classic = dijkstra(&topo.network, src, t, |_| 1.0).unwrap();
            assert_eq!(path, classic);
            assert_eq!(engine.distance(t), Some(classic.len() as f64));
        }
    }

    #[test]
    fn unreachable_target_reports_false() {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        let b = net.add_node(NodeKind::Host, "b");
        net.add_link(a, b, 1.0); // one-way
        let g = GraphCsr::from_network(&net);
        let mut engine = ShortestPathEngine::new();
        let mut links = vec![LinkId(0)];
        assert!(!engine.dijkstra_into(&g, b, a, |_| 1.0, &mut links));
        assert!(links.is_empty(), "failed extraction clears the buffer");
        assert!(engine.shortest_path(&g, b, a, |_| 1.0).is_none());
        assert_eq!(engine.distance(a), None);
    }

    #[test]
    fn source_equal_target_is_the_empty_path() {
        let (net, a, ..) = diamond();
        let g = GraphCsr::from_network(&net);
        let mut engine = ShortestPathEngine::new();
        let p = engine.shortest_path(&g, a, a, |_| 1.0).unwrap();
        assert!(p.is_empty());
        let mut links = Vec::new();
        assert!(engine.dijkstra_into(&g, a, a, |_| 1.0, &mut links));
        assert!(links.is_empty());
    }

    #[test]
    fn engine_grows_for_larger_graphs() {
        let small = builders::line(3);
        let big = builders::fat_tree(4);
        let gs = GraphCsr::from_network(&small.network);
        let gb = GraphCsr::from_network(&big.network);
        let mut engine = ShortestPathEngine::new();
        assert!(engine
            .shortest_path(&gs, small.hosts()[0], small.hosts()[2], |_| 1.0)
            .is_some());
        let p = engine
            .shortest_path(&gb, big.hosts()[0], big.hosts()[15], |_| 1.0)
            .unwrap();
        assert_eq!(p.len(), 6);
    }
}
