//! Identifier newtypes for nodes and links.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (switch or host) in a [`crate::Network`].
///
/// Node ids are dense: a network with `n` nodes uses ids `0..n`, so they can
/// be used directly as indices into per-node state vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifier of a directed link in a [`crate::Network`].
///
/// Link ids are dense: a network with `m` directed links uses ids `0..m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl NodeId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl LinkId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

impl From<usize> for LinkId {
    fn from(value: usize) -> Self {
        LinkId(value)
    }
}

/// The role a node plays in the data center.
///
/// The scheduling algorithms never branch on the role, but topology builders
/// record it so that workload generators can pick host pairs and experiments
/// can report per-layer statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host (server) attached to the network.
    Host,
    /// A top-of-rack / edge switch.
    EdgeSwitch,
    /// An aggregation-layer switch.
    AggregationSwitch,
    /// A core-layer switch.
    CoreSwitch,
    /// A switch with no particular layer (generic topologies).
    Switch,
}

impl NodeKind {
    /// Returns `true` if the node is an end host.
    pub fn is_host(self) -> bool {
        matches!(self, NodeKind::Host)
    }

    /// Returns `true` if the node is any kind of switch.
    pub fn is_switch(self) -> bool {
        !self.is_host()
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Host => "host",
            NodeKind::EdgeSwitch => "edge",
            NodeKind::AggregationSwitch => "aggregation",
            NodeKind::CoreSwitch => "core",
            NodeKind::Switch => "switch",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn link_id_roundtrip() {
        let id = LinkId::from(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "e7");
    }

    #[test]
    fn node_kind_predicates() {
        assert!(NodeKind::Host.is_host());
        assert!(!NodeKind::Host.is_switch());
        for kind in [
            NodeKind::EdgeSwitch,
            NodeKind::AggregationSwitch,
            NodeKind::CoreSwitch,
            NodeKind::Switch,
        ] {
            assert!(kind.is_switch(), "{kind} should be a switch");
            assert!(!kind.is_host());
        }
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(0) < LinkId(10));
    }

    #[test]
    fn display_of_kinds_is_stable() {
        assert_eq!(NodeKind::AggregationSwitch.to_string(), "aggregation");
        assert_eq!(NodeKind::CoreSwitch.to_string(), "core");
    }
}
