//! Builders for the standard data-center topologies used by the paper and
//! its evaluation: line networks (Example 1), parallel-link gadgets
//! (hardness reductions), fat-tree (the Fig. 2 evaluation topology), BCube,
//! leaf–spine, star and dumbbell.
//!
//! All builders produce every physical cable as a pair of directed links and
//! use a uniform link capacity, matching the paper's assumption of identical
//! commodity switches and links.

use crate::{Network, NodeId, NodeKind};

/// Default link capacity used by the builders (data units per time unit).
///
/// The paper never fixes absolute units; what matters is the ratio between
/// flow densities and `C`. A value of `10.0` keeps the Fig. 2 workload
/// (volumes ~ N(10,3) over spans of tens of time units) comfortably below
/// capacity on a fat-tree, as in the paper's simulation.
pub const DEFAULT_CAPACITY: f64 = 10.0;

/// A constructed topology: the network plus builder metadata (host list and
/// a descriptive name).
#[derive(Debug, Clone)]
pub struct BuiltTopology {
    /// The constructed network.
    pub network: Network,
    /// Host (server) nodes, in builder-defined order.
    pub hosts: Vec<NodeId>,
    /// Human-readable description, e.g. `"fat-tree(k=8)"`.
    pub name: String,
}

impl BuiltTopology {
    /// The host (server) nodes of the topology, in builder order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// The first host; by convention the "source" of two-terminal gadgets.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no hosts.
    pub fn source(&self) -> NodeId {
        *self.hosts.first().expect("topology has no hosts")
    }

    /// The last host; by convention the "sink" of two-terminal gadgets.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no hosts.
    pub fn sink(&self) -> NodeId {
        *self.hosts.last().expect("topology has no hosts")
    }

    /// Builds the flat CSR read view of the topology's network
    /// (a convenience for [`crate::GraphCsr::from_network`]).
    pub fn csr(&self) -> crate::GraphCsr {
        crate::GraphCsr::from_network(&self.network)
    }
}

/// A line (path) network of `n` nodes connected by `n - 1` cables, as in the
/// paper's Example 1 (Fig. 1, `A — B — C`).
///
/// All nodes are marked as hosts so that flows may start and end anywhere on
/// the line.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn line(n: usize) -> BuiltTopology {
    line_with_capacity(n, DEFAULT_CAPACITY)
}

/// Same as [`line()`] with an explicit uniform link capacity.
pub fn line_with_capacity(n: usize, capacity: f64) -> BuiltTopology {
    assert!(n >= 2, "a line network needs at least two nodes");
    let mut network = Network::new();
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| network.add_node(NodeKind::Host, format!("line-{i}")))
        .collect();
    for w in hosts.windows(2) {
        network.add_duplex_link(w[0], w[1], capacity);
    }
    BuiltTopology {
        network,
        hosts,
        name: format!("line(n={n})"),
    }
}

/// The two-terminal parallel-link gadget used in the NP-hardness and
/// inapproximability proofs (Theorems 2 and 3): `src` and `dst` connected by
/// `k` parallel cables.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn parallel(k: usize, capacity: f64) -> BuiltTopology {
    assert!(k > 0, "the parallel-link gadget needs at least one link");
    let mut network = Network::new();
    let src = network.add_node(NodeKind::Host, "src");
    let dst = network.add_node(NodeKind::Host, "dst");
    for _ in 0..k {
        network.add_duplex_link(src, dst, capacity);
    }
    BuiltTopology {
        network,
        hosts: vec![src, dst],
        name: format!("parallel(k={k})"),
    }
}

/// A `k`-ary fat-tree (Al-Fares et al., SIGCOMM 2008): the topology the
/// paper's Fig. 2 evaluation uses with `k = 8` (80 switches, 128 hosts).
///
/// Structure: `k` pods, each with `k/2` edge and `k/2` aggregation switches;
/// `(k/2)^2` core switches; each edge switch serves `k/2` hosts.
///
/// # Panics
///
/// Panics if `k` is not a positive even number.
pub fn fat_tree(k: usize) -> BuiltTopology {
    fat_tree_with_capacity(k, DEFAULT_CAPACITY)
}

/// Same as [`fat_tree`] with an explicit uniform link capacity.
pub fn fat_tree_with_capacity(k: usize, capacity: f64) -> BuiltTopology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree requires an even k >= 2, got {k}"
    );
    let half = k / 2;
    let mut network = Network::new();

    // Core switches: (k/2)^2, indexed by (i, j) with i, j in 0..k/2.
    let mut cores = Vec::with_capacity(half * half);
    for i in 0..half {
        for j in 0..half {
            cores.push(network.add_node(NodeKind::CoreSwitch, format!("core-{i}-{j}")));
        }
    }

    let mut hosts = Vec::with_capacity(half * half * k);
    for pod in 0..k {
        // Aggregation and edge switches of this pod.
        let aggs: Vec<NodeId> = (0..half)
            .map(|a| network.add_node(NodeKind::AggregationSwitch, format!("agg-{pod}-{a}")))
            .collect();
        let edges: Vec<NodeId> = (0..half)
            .map(|e| network.add_node(NodeKind::EdgeSwitch, format!("edge-{pod}-{e}")))
            .collect();
        // Pod locality labels: aggregation/edge switches and hosts belong
        // to their pod; core switches stay unlabelled (they are shared).
        for &sw in aggs.iter().chain(edges.iter()) {
            network.set_node_pod(sw, pod);
        }

        // Full bipartite mesh between edge and aggregation inside the pod.
        for &agg in &aggs {
            for &edge in &edges {
                network.add_duplex_link(agg, edge, capacity);
            }
        }
        // Aggregation switch `a` connects to core switches (a, 0..k/2).
        for (a, &agg) in aggs.iter().enumerate() {
            for j in 0..half {
                let core = cores[a * half + j];
                network.add_duplex_link(agg, core, capacity);
            }
        }
        // Hosts under each edge switch.
        for (e, &edge) in edges.iter().enumerate() {
            for h in 0..half {
                let host = network.add_node(NodeKind::Host, format!("host-{pod}-{e}-{h}"));
                network.set_node_pod(host, pod);
                network.add_duplex_link(edge, host, capacity);
                hosts.push(host);
            }
        }
    }

    BuiltTopology {
        network,
        hosts,
        name: format!("fat-tree(k={k})"),
    }
}

/// A BCube(n, k) server-centric topology (Guo et al., SIGCOMM 2009):
/// `n^(k+1)` servers and `k+1` levels of `n^k` switches, each server
/// connected to one switch per level.
///
/// In BCube, servers relay traffic; paths may therefore pass through host
/// nodes, which the routing algorithms in this crate allow.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn bcube(n: usize, k: usize) -> BuiltTopology {
    bcube_with_capacity(n, k, DEFAULT_CAPACITY)
}

/// Same as [`bcube`] with an explicit uniform link capacity.
pub fn bcube_with_capacity(n: usize, k: usize, capacity: f64) -> BuiltTopology {
    assert!(n >= 2, "BCube requires switch port count n >= 2, got {n}");
    let levels = k + 1;
    let num_servers = n.pow(levels as u32);
    let switches_per_level = n.pow(k as u32);

    let mut network = Network::new();
    let servers: Vec<NodeId> = (0..num_servers)
        .map(|i| network.add_node(NodeKind::Host, format!("server-{i}")))
        .collect();

    for level in 0..levels {
        for s in 0..switches_per_level {
            let sw = network.add_node(NodeKind::Switch, format!("switch-{level}-{s}"));
            // The switch `s` at `level` connects the n servers whose base-n
            // representation matches `s` with the digit at position `level`
            // removed.
            for port in 0..n {
                let server_index = insert_digit(s, level, port, n);
                network.add_duplex_link(sw, servers[server_index], capacity);
            }
        }
    }

    BuiltTopology {
        network,
        hosts: servers,
        name: format!("bcube(n={n},k={k})"),
    }
}

/// Re-inserts `digit` at position `pos` (base `n`) into the number `rest`,
/// producing the full server index.
fn insert_digit(rest: usize, pos: usize, digit: usize, n: usize) -> usize {
    let low_mod = n.pow(pos as u32);
    let low = rest % low_mod;
    let high = rest / low_mod;
    high * low_mod * n + digit * low_mod + low
}

/// A two-layer leaf–spine topology: every leaf switch connects to every
/// spine switch, and `hosts_per_leaf` hosts hang off each leaf.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn leaf_spine(leaves: usize, spines: usize, hosts_per_leaf: usize) -> BuiltTopology {
    leaf_spine_with_capacity(leaves, spines, hosts_per_leaf, DEFAULT_CAPACITY)
}

/// Same as [`leaf_spine`] with an explicit uniform link capacity.
pub fn leaf_spine_with_capacity(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    capacity: f64,
) -> BuiltTopology {
    assert!(leaves > 0 && spines > 0 && hosts_per_leaf > 0);
    let mut network = Network::new();
    let spine_nodes: Vec<NodeId> = (0..spines)
        .map(|s| network.add_node(NodeKind::CoreSwitch, format!("spine-{s}")))
        .collect();
    let mut hosts = Vec::new();
    for l in 0..leaves {
        let leaf = network.add_node(NodeKind::EdgeSwitch, format!("leaf-{l}"));
        // Each leaf is its own locality group; spines are shared (no pod).
        network.set_node_pod(leaf, l);
        for &spine in &spine_nodes {
            network.add_duplex_link(leaf, spine, capacity);
        }
        for h in 0..hosts_per_leaf {
            let host = network.add_node(NodeKind::Host, format!("host-{l}-{h}"));
            network.set_node_pod(host, l);
            network.add_duplex_link(leaf, host, capacity);
            hosts.push(host);
        }
    }
    BuiltTopology {
        network,
        hosts,
        name: format!("leaf-spine({leaves}x{spines},{hosts_per_leaf} hosts/leaf)"),
    }
}

/// A VL2-style Clos fabric (Greenberg et al., SIGCOMM 2009): `d_i`
/// intermediate switches fully meshed with `d_a` aggregation switches, each
/// pair of aggregation switches serving one top-of-rack switch with
/// `hosts_per_tor` hosts.
///
/// # Panics
///
/// Panics if any argument is zero or `d_a` is odd.
pub fn vl2(d_a: usize, d_i: usize, hosts_per_tor: usize) -> BuiltTopology {
    vl2_with_capacity(d_a, d_i, hosts_per_tor, DEFAULT_CAPACITY)
}

/// Same as [`vl2`] with an explicit uniform link capacity.
pub fn vl2_with_capacity(
    d_a: usize,
    d_i: usize,
    hosts_per_tor: usize,
    capacity: f64,
) -> BuiltTopology {
    assert!(
        d_a >= 2 && d_a.is_multiple_of(2),
        "VL2 requires an even d_a >= 2, got {d_a}"
    );
    assert!(d_i > 0 && hosts_per_tor > 0);
    let mut network = Network::new();
    let intermediates: Vec<NodeId> = (0..d_i)
        .map(|i| network.add_node(NodeKind::CoreSwitch, format!("int-{i}")))
        .collect();
    let aggregates: Vec<NodeId> = (0..d_a)
        .map(|a| network.add_node(NodeKind::AggregationSwitch, format!("agg-{a}")))
        .collect();
    for &agg in &aggregates {
        for &int in &intermediates {
            network.add_duplex_link(agg, int, capacity);
        }
    }
    let mut hosts = Vec::new();
    let tor_count = d_a * d_i / 4;
    for t in 0..tor_count.max(1) {
        let tor = network.add_node(NodeKind::EdgeSwitch, format!("tor-{t}"));
        // Each ToR dual-homes to two aggregation switches.
        let a0 = aggregates[(2 * t) % d_a];
        let a1 = aggregates[(2 * t + 1) % d_a];
        network.add_duplex_link(tor, a0, capacity);
        network.add_duplex_link(tor, a1, capacity);
        for h in 0..hosts_per_tor {
            let host = network.add_node(NodeKind::Host, format!("host-{t}-{h}"));
            network.add_duplex_link(tor, host, capacity);
            hosts.push(host);
        }
    }
    BuiltTopology {
        network,
        hosts,
        name: format!("vl2(da={d_a},di={d_i},{hosts_per_tor} hosts/tor)"),
    }
}

/// A Jellyfish-style random regular graph of top-of-rack switches
/// (Singla et al., NSDI 2012): `switches` ToR switches, each with `degree`
/// switch-to-switch cables wired by a seeded random matching and
/// `hosts_per_switch` hosts.
///
/// The construction is deterministic for a fixed `seed` (it uses an
/// internal linear-congruential generator, so the topology crate needs no
/// RNG dependency). If the random matching leaves the graph disconnected,
/// extra links are added between consecutive switches to restore
/// connectivity — real Jellyfish deployments do the analogous rewiring.
///
/// # Panics
///
/// Panics if `switches < 2` or `degree == 0`.
pub fn jellyfish(
    switches: usize,
    degree: usize,
    hosts_per_switch: usize,
    seed: u64,
) -> BuiltTopology {
    jellyfish_with_capacity(switches, degree, hosts_per_switch, seed, DEFAULT_CAPACITY)
}

/// Same as [`jellyfish`] with an explicit uniform link capacity.
pub fn jellyfish_with_capacity(
    switches: usize,
    degree: usize,
    hosts_per_switch: usize,
    seed: u64,
    capacity: f64,
) -> BuiltTopology {
    assert!(switches >= 2, "Jellyfish needs at least two switches");
    assert!(degree >= 1, "Jellyfish needs a positive switch degree");
    let mut network = Network::new();
    let tor: Vec<NodeId> = (0..switches)
        .map(|s| network.add_node(NodeKind::Switch, format!("tor-{s}")))
        .collect();

    // Seeded LCG (numerical recipes constants) so the builder stays
    // dependency-free yet reproducible.
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move |bound: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound
    };

    // Random matching over free ports.
    let mut free_ports: Vec<usize> = (0..switches)
        .flat_map(|s| std::iter::repeat_n(s, degree))
        .collect();
    let mut attempts = 0usize;
    while free_ports.len() >= 2 && attempts < 50 * switches * degree {
        attempts += 1;
        let i = next(free_ports.len());
        let j = next(free_ports.len());
        if i == j {
            continue;
        }
        let (a, b) = (free_ports[i], free_ports[j]);
        if a == b || network.find_link(tor[a], tor[b]).is_some() {
            continue;
        }
        network.add_duplex_link(tor[a], tor[b], capacity);
        // Remove the two used ports (larger index first).
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        free_ports.swap_remove(hi);
        free_ports.swap_remove(lo);
    }
    // Guarantee connectivity with a fallback ring over consecutive switches.
    for s in 0..switches {
        let t = (s + 1) % switches;
        if network.find_link(tor[s], tor[t]).is_none() {
            let reachable = network.hop_distances(tor[s])[tor[t].index()] != usize::MAX;
            if !reachable {
                network.add_duplex_link(tor[s], tor[t], capacity);
            }
        }
    }

    let mut hosts = Vec::new();
    for (s, &sw) in tor.iter().enumerate() {
        for h in 0..hosts_per_switch {
            let host = network.add_node(NodeKind::Host, format!("host-{s}-{h}"));
            network.add_duplex_link(sw, host, capacity);
            hosts.push(host);
        }
    }
    BuiltTopology {
        network,
        hosts,
        name: format!("jellyfish(s={switches},d={degree},{hosts_per_switch} hosts/switch)"),
    }
}

/// A star: one central switch with `n` hosts attached.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize, capacity: f64) -> BuiltTopology {
    assert!(n > 0, "a star needs at least one host");
    let mut network = Network::new();
    let center = network.add_node(NodeKind::Switch, "center");
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let h = network.add_node(NodeKind::Host, format!("host-{i}"));
            network.add_duplex_link(center, h, capacity);
            h
        })
        .collect();
    BuiltTopology {
        network,
        hosts,
        name: format!("star(n={n})"),
    }
}

/// A dumbbell: two switches joined by one (bottleneck) cable, with
/// `hosts_per_side` hosts on each side.
///
/// # Panics
///
/// Panics if `hosts_per_side == 0`.
pub fn dumbbell(hosts_per_side: usize, capacity: f64) -> BuiltTopology {
    assert!(hosts_per_side > 0);
    let mut network = Network::new();
    let left = network.add_node(NodeKind::Switch, "left");
    let right = network.add_node(NodeKind::Switch, "right");
    network.add_duplex_link(left, right, capacity);
    let mut hosts = Vec::new();
    for i in 0..hosts_per_side {
        let h = network.add_node(NodeKind::Host, format!("left-host-{i}"));
        network.add_duplex_link(left, h, capacity);
        hosts.push(h);
    }
    for i in 0..hosts_per_side {
        let h = network.add_node(NodeKind::Host, format!("right-host-{i}"));
        network.add_duplex_link(right, h, capacity);
        hosts.push(h);
    }
    BuiltTopology {
        network,
        hosts,
        name: format!("dumbbell({hosts_per_side}/side)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_structure() {
        let t = line(3);
        assert_eq!(t.network.node_count(), 3);
        assert_eq!(t.network.link_count(), 4); // 2 cables * 2 directions
        assert!(t.network.is_strongly_connected());
        assert_eq!(t.source(), t.hosts()[0]);
        assert_eq!(t.sink(), t.hosts()[2]);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn line_rejects_single_node() {
        line(1);
    }

    #[test]
    fn parallel_structure() {
        let t = parallel(5, 2.0);
        assert_eq!(t.network.node_count(), 2);
        assert_eq!(t.network.link_count(), 10);
        assert_eq!(t.network.find_links(t.source(), t.sink()).count(), 5);
        for l in t.network.links() {
            assert_eq!(l.capacity, 2.0);
        }
    }

    #[test]
    fn fat_tree_k4_counts() {
        let t = fat_tree(4);
        // 4 pods * (2 edge + 2 agg) + 4 core = 20 switches; 16 hosts.
        assert_eq!(t.network.switch_count(), 20);
        assert_eq!(t.network.host_count(), 16);
        assert_eq!(t.hosts().len(), 16);
        assert!(t.network.is_strongly_connected());
        // Cables: core-agg k^2/2*k/2? count via formula: 3 * k^3/4 cables.
        let cables = t.network.link_count() / 2;
        assert_eq!(cables, 3 * 4usize.pow(3) / 4);
    }

    #[test]
    fn fat_tree_k8_matches_paper_evaluation() {
        let t = fat_tree(8);
        assert_eq!(t.network.switch_count(), 80, "paper: 80 switches");
        assert_eq!(t.network.host_count(), 128, "paper: 128 servers");
        assert!(t.network.is_strongly_connected());
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn fat_tree_rejects_odd_k() {
        fat_tree(3);
    }

    #[test]
    fn fat_tree_pod_labels_cover_pod_switches_and_hosts() {
        let t = fat_tree(4);
        let g = t.csr();
        assert_eq!(g.pod_count(), 4);
        for node in t.network.nodes() {
            let expect = match node.kind {
                NodeKind::CoreSwitch => None,
                _ => {
                    // Labels are "{kind}-{pod}-..." for pod members.
                    let pod: usize = node.label.split('-').nth(1).unwrap().parse().unwrap();
                    Some(pod)
                }
            };
            assert_eq!(t.network.node_pod(node.id), expect, "{}", node.label);
            assert_eq!(g.pod_of(node.id), expect, "{}", node.label);
        }
    }

    #[test]
    fn leaf_spine_pods_are_per_leaf_and_spines_unlabelled() {
        let t = leaf_spine(4, 2, 3);
        let g = t.csr();
        assert_eq!(g.pod_count(), 4);
        for node in t.network.nodes() {
            match node.kind {
                NodeKind::CoreSwitch => assert_eq!(node.pod, None, "{}", node.label),
                _ => assert!(node.pod.is_some(), "{}", node.label),
            }
        }
    }

    #[test]
    fn pod_free_builders_report_zero_pods() {
        assert_eq!(line(4).csr().pod_count(), 0);
        assert_eq!(star(3, 1.0).csr().pod_count(), 0);
    }

    #[test]
    fn fat_tree_intra_pod_path_is_short() {
        let t = fat_tree(4);
        // hosts 0 and 1 share an edge switch: 2-hop path.
        let p = t.network.shortest_path(t.hosts()[0], t.hosts()[1]).unwrap();
        assert_eq!(p.len(), 2);
        // hosts 0 and 2 are in the same pod, different edge switches: 4 hops.
        let p = t.network.shortest_path(t.hosts()[0], t.hosts()[2]).unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn bcube_counts() {
        // BCube(4, 1): 16 servers, 2 levels * 4 switches = 8 switches,
        // each server has 2 links => 32 cables.
        let t = bcube(4, 1);
        assert_eq!(t.network.host_count(), 16);
        assert_eq!(t.network.switch_count(), 8);
        assert_eq!(t.network.link_count() / 2, 32);
        assert!(t.network.is_strongly_connected());
    }

    #[test]
    fn bcube_level0_is_star_of_n() {
        let t = bcube(2, 0);
        // BCube(2,0): 2 servers, 1 switch.
        assert_eq!(t.network.host_count(), 2);
        assert_eq!(t.network.switch_count(), 1);
    }

    #[test]
    fn insert_digit_roundtrip() {
        // rest=5 (base 4: 11), insert digit 2 at pos 1 => digits 1,2,1 = 1*16+2*4+1 = 25
        assert_eq!(insert_digit(5, 1, 2, 4), 25);
        assert_eq!(insert_digit(0, 0, 3, 4), 3);
    }

    #[test]
    fn leaf_spine_counts() {
        let t = leaf_spine(4, 2, 8);
        assert_eq!(t.network.switch_count(), 6);
        assert_eq!(t.network.host_count(), 32);
        assert_eq!(t.network.link_count() / 2, 4 * 2 + 4 * 8);
        assert!(t.network.is_strongly_connected());
    }

    #[test]
    fn star_and_dumbbell() {
        let s = star(6, 1.0);
        assert_eq!(s.network.switch_count(), 1);
        assert_eq!(s.network.host_count(), 6);
        assert!(s.network.is_strongly_connected());

        let d = dumbbell(3, 1.0);
        assert_eq!(d.network.switch_count(), 2);
        assert_eq!(d.network.host_count(), 6);
        assert!(d.network.is_strongly_connected());
        // Crossing the dumbbell takes 3 hops.
        let p = d.network.shortest_path(d.hosts()[0], d.hosts()[5]).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn vl2_structure() {
        let t = vl2(4, 4, 8);
        // d_a * d_i / 4 = 4 ToRs, plus 4 agg + 4 intermediate switches.
        assert_eq!(t.network.switch_count(), 4 + 4 + 4);
        assert_eq!(t.network.host_count(), 32);
        assert!(t.network.is_strongly_connected());
        // Each ToR dual-homes: host-to-host across ToRs is at most 6 hops.
        let p = t
            .network
            .shortest_path(t.hosts()[0], t.hosts()[31])
            .unwrap();
        assert!(p.len() <= 6);
    }

    #[test]
    #[should_panic(expected = "even d_a")]
    fn vl2_rejects_odd_aggregation_count() {
        vl2(3, 2, 1);
    }

    #[test]
    fn jellyfish_is_connected_and_deterministic() {
        let a = jellyfish(12, 3, 2, 42);
        let b = jellyfish(12, 3, 2, 42);
        let c = jellyfish(12, 3, 2, 43);
        assert_eq!(a.network.link_count(), b.network.link_count());
        assert!(a.network.is_strongly_connected());
        assert!(c.network.is_strongly_connected());
        assert_eq!(a.network.host_count(), 24);
        assert_eq!(a.network.switch_count(), 12);
        // Switch-to-switch degree stays close to the requested degree.
        for sw in a.network.switch_ids() {
            let switch_links = a
                .network
                .out_links(sw)
                .iter()
                .filter(|&&l| a.network.node(a.network.link(l).dst).kind.is_switch())
                .count();
            assert!(switch_links <= 3 + 2, "degree {switch_links} too large");
        }
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(fat_tree(4).name, "fat-tree(k=4)");
        assert_eq!(parallel(2, 1.0).name, "parallel(k=2)");
        assert_eq!(bcube(4, 1).name, "bcube(n=4,k=1)");
    }
}
