//! Routing paths: ordered sequences of directed links.

use crate::{LinkId, Network, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors that can occur when constructing a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// Two consecutive links do not share an endpoint.
    Disconnected {
        /// Position (0-based) of the offending link in the sequence.
        position: usize,
    },
    /// The path visits the same node more than once.
    Loop {
        /// The repeated node.
        node: NodeId,
    },
    /// A link id does not exist in the network.
    UnknownLink(LinkId),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Disconnected { position } => {
                write!(
                    f,
                    "links at positions {} and {} are not adjacent",
                    position,
                    position + 1
                )
            }
            PathError::Loop { node } => write!(f, "path visits node {node} more than once"),
            PathError::UnknownLink(l) => write!(f, "link {l} does not exist in the network"),
        }
    }
}

impl std::error::Error for PathError {}

/// A simple (loop-free) directed path through a [`Network`].
///
/// A path stores its source node and the ordered list of directed links it
/// traverses; the node sequence is derivable from those. The empty path
/// (source equals destination, no links) is allowed so that flows between
/// co-located endpoints degenerate gracefully.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    source: NodeId,
    links: Vec<LinkId>,
    nodes: Vec<NodeId>,
}

impl Path {
    /// Builds a path from a source node and an ordered link sequence,
    /// validating adjacency and simplicity.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::UnknownLink`] if a link id is out of range,
    /// [`PathError::Disconnected`] if consecutive links do not chain, and
    /// [`PathError::Loop`] if a node repeats.
    pub fn from_links(
        network: &Network,
        source: NodeId,
        links: &[LinkId],
    ) -> Result<Self, PathError> {
        let mut nodes = Vec::with_capacity(links.len() + 1);
        nodes.push(source);
        let mut cur = source;
        for (pos, &lid) in links.iter().enumerate() {
            if lid.index() >= network.link_count() {
                return Err(PathError::UnknownLink(lid));
            }
            let link = network.link(lid);
            if link.src != cur {
                return Err(PathError::Disconnected {
                    position: pos.saturating_sub(1),
                });
            }
            cur = link.dst;
            nodes.push(cur);
        }
        // Simplicity check.
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(PathError::Loop { node: w[0] });
            }
        }
        Ok(Path {
            source,
            links: links.to_vec(),
            nodes,
        })
    }

    /// Assembles a path from already-validated parts (crate-internal: used
    /// by [`crate::GraphCsr`] and the shortest-path engine, whose walks
    /// produce valid simple paths by construction).
    pub(crate) fn from_parts(source: NodeId, links: Vec<LinkId>, nodes: Vec<NodeId>) -> Self {
        debug_assert_eq!(nodes.len(), links.len() + 1);
        debug_assert_eq!(nodes.first(), Some(&source));
        Path {
            source,
            links,
            nodes,
        }
    }

    /// Builds a path from a node sequence, looking up the connecting links.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::Disconnected`] if two consecutive nodes are not
    /// directly connected, or [`PathError::Loop`] if a node repeats.
    pub fn from_nodes(network: &Network, nodes: &[NodeId]) -> Result<Self, PathError> {
        assert!(!nodes.is_empty(), "a path needs at least one node");
        let mut links = Vec::with_capacity(nodes.len().saturating_sub(1));
        for (pos, w) in nodes.windows(2).enumerate() {
            match network.find_link(w[0], w[1]) {
                Some(l) => links.push(l),
                None => return Err(PathError::Disconnected { position: pos }),
            }
        }
        Self::from_links(network, nodes[0], &links)
    }

    /// The first node of the path.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The last node of the path.
    pub fn destination(&self) -> NodeId {
        *self
            .nodes
            .last()
            .expect("path always has at least one node")
    }

    /// Number of links (hops) in the path.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the path has no links (source == destination).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The ordered link sequence.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// The ordered node sequence (one longer than [`Self::links`]).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Returns `true` if the path traverses `link`.
    pub fn contains_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Returns `true` if the path visits `node`.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Total weight of the path under a per-link weight function.
    pub fn weight(&self, mut link_weight: impl FnMut(LinkId) -> f64) -> f64 {
        self.links.iter().map(|&l| link_weight(l)).sum()
    }

    /// The minimum capacity over the links of the path (`f64::INFINITY` for
    /// the empty path): the bottleneck rate at which the path can carry
    /// traffic.
    pub fn bottleneck_capacity(&self, network: &Network) -> f64 {
        self.links
            .iter()
            .map(|&l| network.link(l).capacity)
            .fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels: Vec<String> = self.nodes.iter().map(|n| n.to_string()).collect();
        write!(f, "{}", labels.join(" -> "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    fn line3() -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        let b = net.add_node(NodeKind::Switch, "b");
        let c = net.add_node(NodeKind::Host, "c");
        net.add_duplex_link(a, b, 5.0);
        net.add_duplex_link(b, c, 3.0);
        (net, vec![a, b, c])
    }

    #[test]
    fn from_nodes_builds_expected_links() {
        let (net, ns) = line3();
        let p = Path::from_nodes(&net, &ns).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(), ns[0]);
        assert_eq!(p.destination(), ns[2]);
        assert_eq!(p.nodes(), &ns[..]);
        assert!(p.contains_node(ns[1]));
    }

    #[test]
    fn from_links_rejects_disconnected() {
        let (net, ns) = line3();
        // Take a->b and c->b: not chained.
        let ab = net.find_link(ns[0], ns[1]).unwrap();
        let cb = net.find_link(ns[2], ns[1]).unwrap();
        let err = Path::from_links(&net, ns[0], &[ab, cb]).unwrap_err();
        assert!(matches!(err, PathError::Disconnected { .. }));
    }

    #[test]
    fn from_links_rejects_loop() {
        let (net, ns) = line3();
        let ab = net.find_link(ns[0], ns[1]).unwrap();
        let ba = net.find_link(ns[1], ns[0]).unwrap();
        let err = Path::from_links(&net, ns[0], &[ab, ba]).unwrap_err();
        assert!(matches!(err, PathError::Loop { .. }));
    }

    #[test]
    fn unknown_link_is_reported() {
        let (net, ns) = line3();
        let err = Path::from_links(&net, ns[0], &[LinkId(99)]).unwrap_err();
        assert_eq!(err, PathError::UnknownLink(LinkId(99)));
    }

    #[test]
    fn empty_path_is_allowed() {
        let (net, ns) = line3();
        let p = Path::from_links(&net, ns[0], &[]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.source(), p.destination());
        assert_eq!(p.bottleneck_capacity(&net), f64::INFINITY);
    }

    #[test]
    fn bottleneck_and_weight() {
        let (net, ns) = line3();
        let p = Path::from_nodes(&net, &ns).unwrap();
        assert_eq!(p.bottleneck_capacity(&net), 3.0);
        let hops = p.weight(|_| 1.0);
        assert_eq!(hops, 2.0);
    }

    #[test]
    fn display_is_readable() {
        let (net, ns) = line3();
        let p = Path::from_nodes(&net, &ns).unwrap();
        assert_eq!(p.to_string(), "n0 -> n1 -> n2");
    }
}
