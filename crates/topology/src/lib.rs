//! Data-center network topology substrate.
//!
//! This crate provides the network model `G = (V, E)` used throughout the
//! reproduction of *"Energy-Efficient Flow Scheduling and Routing with Hard
//! Deadlines in Data Center Networks"* (Wang et al., ICDCS 2014): a directed
//! multigraph of switches and hosts connected by capacitated links, the
//! classic data-center topologies the paper assumes (fat-tree, BCube, ...),
//! and the path algorithms the scheduling/routing layer builds on.
//!
//! # Design notes
//!
//! * Every physical cable is represented by **two directed links** (one per
//!   direction), matching the paper's per-link rate variable `x_e(t)`.
//! * Links and nodes are identified by dense integer ids ([`NodeId`],
//!   [`LinkId`]) so that downstream crates can use plain `Vec`-indexed state
//!   and the randomized rounding in the core crate stays deterministic under
//!   a fixed seed.
//! * No external graph library is used: the schedulers need stable link ids,
//!   per-link attributes and deterministic iteration order, which are easier
//!   to guarantee with a purpose-built structure.
//! * [`Network`] is the **mutable builder**; the read path of every hot
//!   loop is the flat CSR view ([`GraphCsr`]) traversed through the
//!   arena-reuse [`ShortestPathEngine`], which keeps the per-query cost
//!   allocation-free and cache-friendly.
//!
//! # Example
//!
//! ```
//! use dcn_topology::{Network, builders};
//!
//! // The paper's evaluation topology: a k=8 fat-tree with 80 switches and
//! // 128 hosts.
//! let ft = builders::fat_tree(8);
//! assert_eq!(ft.hosts().len(), 128);
//! assert_eq!(ft.network.switch_count(), 80);
//!
//! // Shortest path between two hosts in different pods.
//! let path = ft
//!     .network
//!     .shortest_path(ft.hosts()[0], ft.hosts()[127])
//!     .expect("fat-tree is connected");
//! assert_eq!(path.len(), 6); // host-edge-agg-core-agg-edge-host
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod builders;
mod csr;
mod engine;
mod event;
mod ids;
mod network;
mod path;
mod routing;

pub use builders::BuiltTopology;
pub use csr::GraphCsr;
pub use engine::ShortestPathEngine;
pub use event::TopologyEvent;
pub use ids::{LinkId, NodeId, NodeKind};
pub use network::{Link, LinkEndpoints, Network, Node};
pub use path::{Path, PathError};
#[allow(deprecated)]
pub use routing::{all_shortest_paths, dijkstra, k_shortest_paths};
pub use routing::{all_shortest_paths_on, dijkstra_on, k_shortest_paths_on};
