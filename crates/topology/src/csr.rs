//! A flat, cache-friendly compressed-sparse-row (CSR) view of a
//! [`Network`].
//!
//! [`Network`] is the *mutable builder*: nodes and links are appended one at
//! a time and adjacency lives in per-node `Vec`s, which is convenient to
//! grow but scatters every neighbourhood across the heap. [`GraphCsr`] is
//! the *read path*: built once from a finished network, it packs the whole
//! graph into a handful of contiguous arrays —
//!
//! * `out_offsets`/`out_link_ids` — the out-adjacency of node `v` is the
//!   slice `out_link_ids[out_offsets[v]..out_offsets[v + 1]]`, preserving
//!   link insertion order (the deterministic tie-break order every routing
//!   algorithm in this workspace relies on);
//! * `in_offsets`/`in_link_ids` — the same for in-adjacency;
//! * `link_src`/`link_dst`/`link_capacity` — per-link attributes indexed
//!   directly by [`LinkId`].
//!
//! Traversals touch memory sequentially instead of chasing `Vec<Vec<_>>`
//! pointers, which is what makes the hot paths (the Frank–Wolfe solver's
//! inner Dijkstra, the simulator's capacity lookups) fast at fat-tree
//! k ≥ 16 scale.
//!
//! # Example
//!
//! ```
//! use dcn_topology::{builders, GraphCsr, ShortestPathEngine};
//!
//! let ft = builders::fat_tree(4);
//! let graph = GraphCsr::from_network(&ft.network);
//! assert_eq!(graph.node_count(), ft.network.node_count());
//!
//! // Same BFS shortest path as the Network, served from flat arrays.
//! let hosts = ft.hosts();
//! let path = graph.shortest_path(hosts[0], hosts[15]).unwrap();
//! assert_eq!(path.len(), 6);
//!
//! // Weighted shortest paths run through the reusable engine.
//! let mut engine = ShortestPathEngine::new();
//! let weighted = engine
//!     .shortest_path(&graph, hosts[0], hosts[15], |_| 1.0)
//!     .unwrap();
//! assert_eq!(weighted.len(), 6);
//! ```

use crate::{LinkId, Network, NodeId, Path, PathError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// The workspace-global epoch counter. Every [`GraphCsr`] build *and*
/// every mutation draws a fresh value, so an epoch uniquely identifies
/// one (graph, mutation-state) pair for the whole process lifetime —
/// unlike an allocation address, a recycled epoch can never alias a
/// different graph. Epoch values are only ever compared for equality
/// (cache keys), never emitted into artifacts, so the counter does not
/// affect the determinism contract.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// A compressed-sparse-row snapshot of a [`Network`]: contiguous adjacency
/// and per-link attribute arrays, the read-optimised counterpart of the
/// mutable builder. See the module-level documentation for the layout.
///
/// # Dynamic topology
///
/// The view supports link failure and recovery in place:
/// [`GraphCsr::fail_link`] removes a directed link from the adjacency
/// arrays and masks its capacity to zero, [`GraphCsr::restore_link`]
/// rebuilds it with the exact pre-failure capacity. Every mutation bumps
/// the graph's [`GraphCsr::epoch`] — the cache key downstream residual
/// ledgers and warm-start fingerprints use to detect that the topology
/// under them changed.
#[derive(Debug, Clone)]
pub struct GraphCsr {
    /// `out_offsets[v]..out_offsets[v + 1]` indexes `out_link_ids`.
    out_offsets: Vec<u32>,
    /// Out-links of all nodes, concatenated in node order; insertion order
    /// is preserved within each node.
    out_link_ids: Vec<LinkId>,
    /// Destination of `out_link_ids[i]`, position-aligned so traversals
    /// read the neighbour sequentially instead of via `link_dst[link]`.
    out_dsts: Vec<NodeId>,
    /// `in_offsets[v]..in_offsets[v + 1]` indexes `in_link_ids`.
    in_offsets: Vec<u32>,
    /// In-links of all nodes, concatenated in node order.
    in_link_ids: Vec<LinkId>,
    /// Source node of every link, indexed by [`LinkId`].
    link_src: Vec<NodeId>,
    /// Destination node of every link, indexed by [`LinkId`].
    link_dst: Vec<NodeId>,
    /// *Effective* capacity of every link, indexed by [`LinkId`]: the
    /// built capacity while the link is up, `0.0` while it is down.
    link_capacity: Vec<f64>,
    /// The pristine built capacity of every link; [`GraphCsr::restore_link`]
    /// copies from here so recovery is bit-exact.
    base_capacity: Vec<f64>,
    /// Whether each link is currently up (in the adjacency arrays).
    link_up: Vec<bool>,
    /// Number of currently failed links.
    down_count: usize,
    /// Locality group (pod) of every node, `u32::MAX` when unassigned.
    node_pod: Vec<u32>,
    /// Number of distinct pods (`max assigned pod + 1`, 0 when none).
    pod_count: usize,
    /// Monotonically increasing mutation stamp, globally unique per
    /// (graph, state) — see [`GraphCsr::epoch`].
    epoch: u64,
}

/// Structural equality: two views are equal when they describe the same
/// graph in the same up/down state. The `epoch` is deliberately excluded —
/// it identifies a cache generation, not graph content, and two
/// independently built identical graphs must still compare equal.
impl PartialEq for GraphCsr {
    fn eq(&self, other: &Self) -> bool {
        self.out_offsets == other.out_offsets
            && self.out_link_ids == other.out_link_ids
            && self.out_dsts == other.out_dsts
            && self.in_offsets == other.in_offsets
            && self.in_link_ids == other.in_link_ids
            && self.link_src == other.link_src
            && self.link_dst == other.link_dst
            && self.link_capacity == other.link_capacity
            && self.base_capacity == other.base_capacity
            && self.link_up == other.link_up
            && self.node_pod == other.node_pod
            && self.pod_count == other.pod_count
    }
}

impl GraphCsr {
    /// Builds the CSR view of a network.
    ///
    /// The view is a snapshot: links added to the network afterwards are
    /// not reflected. Building is `O(nodes + links)`.
    ///
    /// # Panics
    ///
    /// Panics if the network exceeds the CSR's compact id range
    /// (`u32::MAX - 1` nodes or links) — offsets and the search engine's
    /// node/parent stamps are stored as `u32`.
    pub fn from_network(network: &Network) -> Self {
        let n = network.node_count();
        let m = network.link_count();
        assert!(
            n < u32::MAX as usize && m < u32::MAX as usize,
            "network exceeds the CSR u32 id range ({n} nodes, {m} links)"
        );

        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_link_ids = Vec::with_capacity(m);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_link_ids = Vec::with_capacity(m);
        let mut out_dsts = Vec::with_capacity(m);
        out_offsets.push(0);
        in_offsets.push(0);
        for node in network.nodes() {
            out_link_ids.extend_from_slice(network.out_links(node.id));
            out_dsts.extend(
                network
                    .out_links(node.id)
                    .iter()
                    .map(|&l| network.link(l).dst),
            );
            out_offsets.push(out_link_ids.len() as u32);
            in_link_ids.extend_from_slice(network.in_links(node.id));
            in_offsets.push(in_link_ids.len() as u32);
        }

        let mut link_src = Vec::with_capacity(m);
        let mut link_dst = Vec::with_capacity(m);
        let mut link_capacity = Vec::with_capacity(m);
        for link in network.links() {
            link_src.push(link.src);
            link_dst.push(link.dst);
            link_capacity.push(link.capacity);
        }

        let node_pod: Vec<u32> = network
            .nodes()
            .map(|node| node.pod.unwrap_or(u32::MAX))
            .collect();
        let pod_count = node_pod
            .iter()
            .filter(|&&p| p != u32::MAX)
            .map(|&p| p as usize + 1)
            .max()
            .unwrap_or(0);

        let base_capacity = link_capacity.clone();
        Self {
            out_offsets,
            out_link_ids,
            out_dsts,
            in_offsets,
            in_link_ids,
            link_src,
            link_dst,
            link_capacity,
            base_capacity,
            link_up: vec![true; m],
            down_count: 0,
            node_pod,
            pod_count,
            epoch: next_epoch(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed links (up and down).
    pub fn link_count(&self) -> usize {
        self.link_src.len()
    }

    /// The graph's mutation epoch: a process-globally unique stamp drawn
    /// at build time and re-drawn on every [`GraphCsr::fail_link`] /
    /// [`GraphCsr::restore_link`]. An `(epoch, ...)` tuple is the correct
    /// cache key for state derived from this view — unlike an allocation
    /// address, it can never alias a different graph (or a different
    /// mutation state of the same graph) through allocator recycling.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `link` is currently up.
    #[inline]
    pub fn is_link_up(&self, link: LinkId) -> bool {
        self.link_up[link.index()]
    }

    /// Number of currently failed links.
    pub fn down_link_count(&self) -> usize {
        self.down_count
    }

    /// The ids of every currently failed link, in id order.
    pub fn down_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.link_up
            .iter()
            .enumerate()
            .filter(|(_, up)| !**up)
            .map(|(i, _)| LinkId(i))
    }

    /// Takes `link` down: removes it from the adjacency arrays (so every
    /// traversal — BFS, Dijkstra, reachability — automatically avoids it)
    /// and masks its capacity to zero. Bumps the epoch. Returns `false`
    /// when the link was already down (no state change, no epoch bump).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn fail_link(&mut self, link: LinkId) -> bool {
        if !self.link_up[link.index()] {
            return false;
        }
        self.link_up[link.index()] = false;
        self.link_capacity[link.index()] = 0.0;
        self.down_count += 1;
        self.rebuild_adjacency();
        self.epoch = next_epoch();
        true
    }

    /// Brings `link` back up with its exact pre-failure capacity and
    /// reinserts it into the adjacency arrays at its original position
    /// (per-node adjacency is in link-id order, so recovery restores the
    /// identical traversal order). Bumps the epoch. Returns `false` when
    /// the link was already up.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn restore_link(&mut self, link: LinkId) -> bool {
        if self.link_up[link.index()] {
            return false;
        }
        self.link_up[link.index()] = true;
        self.link_capacity[link.index()] = self.base_capacity[link.index()];
        self.down_count -= 1;
        self.rebuild_adjacency();
        self.epoch = next_epoch();
        true
    }

    /// Rebuilds the four adjacency arrays from the per-link attribute
    /// arrays, skipping down links. Per-node adjacency in a built view is
    /// in link-id order ([`Network::add_link`] assigns ids sequentially
    /// and appends), so a counting rebuild reproduces the original arrays
    /// exactly when every link is up.
    fn rebuild_adjacency(&mut self) {
        let n = self.node_count();
        let m = self.link_count();
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for id in 0..m {
            if self.link_up[id] {
                out_offsets[self.link_src[id].index() + 1] += 1;
                in_offsets[self.link_dst[id].index() + 1] += 1;
            }
        }
        for v in 0..n {
            out_offsets[v + 1] += out_offsets[v];
            in_offsets[v + 1] += in_offsets[v];
        }
        let live = m - self.down_count;
        let mut out_link_ids = vec![LinkId(0); live];
        let mut out_dsts = vec![NodeId(0); live];
        let mut in_link_ids = vec![LinkId(0); live];
        let mut out_cursor: Vec<u32> = out_offsets[..n].to_vec();
        let mut in_cursor: Vec<u32> = in_offsets[..n].to_vec();
        for id in 0..m {
            if self.link_up[id] {
                let src = self.link_src[id].index();
                let dst = self.link_dst[id].index();
                out_link_ids[out_cursor[src] as usize] = LinkId(id);
                out_dsts[out_cursor[src] as usize] = self.link_dst[id];
                out_cursor[src] += 1;
                in_link_ids[in_cursor[dst] as usize] = LinkId(id);
                in_cursor[dst] += 1;
            }
        }
        self.out_offsets = out_offsets;
        self.out_link_ids = out_link_ids;
        self.out_dsts = out_dsts;
        self.in_offsets = in_offsets;
        self.in_link_ids = in_link_ids;
    }

    /// Outgoing links of `node`, in insertion order.
    #[inline]
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        let lo = self.out_offsets[node.index()] as usize;
        let hi = self.out_offsets[node.index() + 1] as usize;
        &self.out_link_ids[lo..hi]
    }

    /// Outgoing `(link, destination)` pairs of `node`, in insertion order,
    /// read from two position-aligned sequential arrays (the hot-loop
    /// variant of [`GraphCsr::out_links`] that avoids the per-link
    /// `link_dst` lookup).
    #[inline]
    pub fn out_links_with_dsts(&self, node: NodeId) -> impl Iterator<Item = (LinkId, NodeId)> + '_ {
        let lo = self.out_offsets[node.index()] as usize;
        let hi = self.out_offsets[node.index() + 1] as usize;
        self.out_link_ids[lo..hi]
            .iter()
            .copied()
            .zip(self.out_dsts[lo..hi].iter().copied())
    }

    /// Incoming links of `node`, in insertion order.
    #[inline]
    pub fn in_links(&self, node: NodeId) -> &[LinkId] {
        let lo = self.in_offsets[node.index()] as usize;
        let hi = self.in_offsets[node.index() + 1] as usize;
        &self.in_link_ids[lo..hi]
    }

    /// Source node of `link`.
    #[inline]
    pub fn link_src(&self, link: LinkId) -> NodeId {
        self.link_src[link.index()]
    }

    /// Destination node of `link`.
    #[inline]
    pub fn link_dst(&self, link: LinkId) -> NodeId {
        self.link_dst[link.index()]
    }

    /// Effective capacity of `link`: the built capacity while the link is
    /// up, `0.0` while it is down ([`GraphCsr::fail_link`]).
    #[inline]
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.link_capacity[link.index()]
    }

    /// The pristine built capacity of `link`, regardless of its up/down
    /// state — what [`GraphCsr::capacity`] returns again after recovery.
    #[inline]
    pub fn base_capacity(&self, link: LinkId) -> f64 {
        self.base_capacity[link.index()]
    }

    /// The locality group (pod) of `node`, if the topology builder assigned
    /// one ([`Network::set_node_pod`]). `None` for shared infrastructure
    /// (core/spine switches) and pod-free topologies.
    #[inline]
    pub fn pod_of(&self, node: NodeId) -> Option<usize> {
        let p = self.node_pod[node.index()];
        (p != u32::MAX).then_some(p as usize)
    }

    /// Number of distinct pods the builder labelled (`0` when the topology
    /// has no pod structure).
    pub fn pod_count(&self) -> usize {
        self.pod_count
    }

    /// The unique out-neighbour of `node`, if its out-degree is exactly 1
    /// (e.g. a host hanging off its edge switch). Used by the search
    /// engine's leaf-skip optimisation.
    #[inline]
    pub fn sole_out_neighbor(&self, node: NodeId) -> Option<NodeId> {
        let lo = self.out_offsets[node.index()] as usize;
        let hi = self.out_offsets[node.index() + 1] as usize;
        (hi - lo == 1).then(|| self.out_dsts[lo])
    }

    /// Every directed link from `src` to `dst` (parallel links), served
    /// from the contiguous out-neighbourhood of `src` without allocating.
    pub fn links_between(&self, src: NodeId, dst: NodeId) -> impl Iterator<Item = LinkId> + '_ {
        self.out_links(src)
            .iter()
            .copied()
            .filter(move |&l| self.link_dst(l) == dst)
    }

    /// The first-inserted directed link from `src` to `dst`, if any.
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.links_between(src, dst).next()
    }

    /// Breadth-first shortest path (fewest hops) from `src` to `dst`.
    ///
    /// Identical tie-breaking (link insertion order) and results as
    /// [`Network::shortest_path`]; this is the flat-array read path.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        if src == dst {
            return self.path_from_links(src, &[]).ok();
        }
        let n = self.node_count();
        let mut parent_link: Vec<Option<LinkId>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[src.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &lid in self.out_links(u) {
                let v = self.link_dst(lid);
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parent_link[v.index()] = Some(lid);
                    if v == dst {
                        let mut links_rev = Vec::new();
                        let mut cur = dst;
                        while cur != src {
                            let lid = parent_link[cur.index()]
                                .expect("path reconstruction reached a dead end");
                            links_rev.push(lid);
                            cur = self.link_src(lid);
                        }
                        links_rev.reverse();
                        return self.path_from_links(src, &links_rev).ok();
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// BFS hop distance from every node *to* `dst` (`usize::MAX` =
    /// unreachable), computed over the in-adjacency.
    pub fn hop_distances_to(&self, dst: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[dst.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(dst);
        while let Some(u) = queue.pop_front() {
            for &lid in self.in_links(u) {
                let v = self.link_src(lid);
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Builds a [`Path`] from a link sequence, validating adjacency and
    /// simplicity against the CSR data (the counterpart of
    /// [`Path::from_links`] that does not need the originating network).
    ///
    /// # Errors
    ///
    /// Returns the same [`PathError`] variants as [`Path::from_links`].
    pub fn path_from_links(&self, source: NodeId, links: &[LinkId]) -> Result<Path, PathError> {
        let mut nodes = Vec::with_capacity(links.len() + 1);
        nodes.push(source);
        let mut cur = source;
        for (pos, &lid) in links.iter().enumerate() {
            if lid.index() >= self.link_count() {
                return Err(PathError::UnknownLink(lid));
            }
            if self.link_src(lid) != cur {
                return Err(PathError::Disconnected {
                    position: pos.saturating_sub(1),
                });
            }
            cur = self.link_dst(lid);
            nodes.push(cur);
        }
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(PathError::Loop { node: w[0] });
            }
        }
        Ok(Path::from_parts(source, links.to_vec(), nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, NodeKind};

    #[test]
    fn csr_mirrors_the_network_adjacency() {
        let ft = builders::fat_tree(4);
        let g = GraphCsr::from_network(&ft.network);
        assert_eq!(g.node_count(), ft.network.node_count());
        assert_eq!(g.link_count(), ft.network.link_count());
        for node in ft.network.nodes() {
            assert_eq!(g.out_links(node.id), ft.network.out_links(node.id));
            assert_eq!(g.in_links(node.id), ft.network.in_links(node.id));
        }
        for link in ft.network.links() {
            assert_eq!(g.link_src(link.id), link.src);
            assert_eq!(g.link_dst(link.id), link.dst);
            assert_eq!(g.capacity(link.id), link.capacity);
        }
    }

    #[test]
    fn links_between_matches_network_find_links() {
        let mut net = Network::new();
        let s = net.add_node(NodeKind::Host, "s");
        let d = net.add_node(NodeKind::Host, "d");
        for _ in 0..4 {
            net.add_link(s, d, 2.0);
        }
        net.add_link(d, s, 2.0);
        let g = GraphCsr::from_network(&net);
        let from_csr: Vec<LinkId> = g.links_between(s, d).collect();
        let from_net: Vec<LinkId> = net.find_links(s, d).collect();
        assert_eq!(from_csr, from_net);
        assert_eq!(from_csr.len(), 4);
        assert_eq!(g.find_link(s, d), net.find_link(s, d));
        assert_eq!(g.find_link(d, s), net.find_link(d, s));
    }

    #[test]
    fn bfs_shortest_path_matches_network() {
        for topo in [builders::fat_tree(4), builders::bcube(2, 1)] {
            let g = GraphCsr::from_network(&topo.network);
            let hosts = topo.hosts();
            for (i, &a) in hosts.iter().enumerate().step_by(3) {
                for &b in hosts.iter().skip(i) {
                    assert_eq!(g.shortest_path(a, b), topo.network.shortest_path(a, b));
                }
            }
        }
    }

    #[test]
    fn hop_distances_to_reverses_correctly() {
        let topo = builders::line(4);
        let g = GraphCsr::from_network(&topo.network);
        let d = g.hop_distances_to(topo.hosts()[3]);
        assert_eq!(d, vec![3, 2, 1, 0]);
    }

    #[test]
    fn fail_and_restore_round_trips_the_whole_view() {
        let ft = builders::fat_tree(4);
        let mut g = GraphCsr::from_network(&ft.network);
        let pristine = g.clone();
        let epoch0 = g.epoch();

        // Take down a couple of links (one duplex pair, one singleton).
        let victims = [LinkId(0), LinkId(1), LinkId(17)];
        for &l in &victims {
            assert!(g.fail_link(l));
            assert!(!g.is_link_up(l));
            assert_eq!(g.capacity(l), 0.0);
            assert!(g.base_capacity(l) > 0.0);
        }
        assert!(!g.fail_link(victims[0]), "double-fail is a no-op");
        assert_eq!(g.down_link_count(), victims.len());
        assert_eq!(g.down_links().collect::<Vec<_>>(), victims);
        assert_ne!(g.epoch(), epoch0, "mutations bump the epoch");
        assert_ne!(g, pristine);

        // Down links are gone from every adjacency view.
        for &l in &victims {
            assert!(!g.out_links(g.link_src(l)).contains(&l));
            assert!(!g.in_links(g.link_dst(l)).contains(&l));
            assert!(g
                .out_links_with_dsts(g.link_src(l))
                .all(|(lid, _)| lid != l));
        }

        // Recovery restores the exact pre-failure view (adjacency order,
        // capacities bit-for-bit) — everything except the epoch.
        for &l in &victims {
            assert!(g.restore_link(l));
        }
        assert!(!g.restore_link(victims[0]), "double-restore is a no-op");
        assert_eq!(g.down_link_count(), 0);
        assert_eq!(g, pristine);
        for node in ft.network.nodes() {
            assert_eq!(g.out_links(node.id), pristine.out_links(node.id));
            assert_eq!(g.in_links(node.id), pristine.in_links(node.id));
        }
        for link in ft.network.links() {
            assert_eq!(g.capacity(link.id).to_bits(), link.capacity.to_bits());
        }
    }

    #[test]
    fn traversals_avoid_down_links() {
        // line(3): host0 - host1 - host2; failing the only forward link of
        // the first cable disconnects host0 from the rest.
        let topo = builders::line(3);
        let g0 = GraphCsr::from_network(&topo.network);
        let hosts = topo.hosts();
        let p = g0.shortest_path(hosts[0], hosts[2]).unwrap();
        let first = p.links()[0];

        let mut g = GraphCsr::from_network(&topo.network);
        g.fail_link(first);
        assert!(g.shortest_path(hosts[0], hosts[2]).is_none());
        assert!(g.shortest_path(hosts[0], hosts[1]).is_none());
        // The reverse direction of the cable still works.
        assert!(g.shortest_path(hosts[2], hosts[0]).is_some());
        // hop_distances_to walks in-links, which also exclude the link.
        let d = g.hop_distances_to(hosts[2]);
        assert_eq!(d[hosts[0].index()], usize::MAX);

        g.restore_link(first);
        assert_eq!(g.shortest_path(hosts[0], hosts[2]).unwrap(), p);
    }

    #[test]
    fn epochs_never_alias_across_instances() {
        // The recycled-allocation trap: two same-shape graphs built one
        // after the other (the second plausibly at the first's freed
        // address) must still have distinct epochs.
        let topo = builders::fat_tree(4);
        let mut seen = Vec::new();
        for _ in 0..8 {
            let g = GraphCsr::from_network(&topo.network);
            assert!(
                !seen.contains(&g.epoch()),
                "epoch {} reused across instances",
                g.epoch()
            );
            seen.push(g.epoch());
        }
    }

    #[test]
    fn equality_ignores_the_epoch() {
        let topo = builders::fat_tree(4);
        let a = GraphCsr::from_network(&topo.network);
        let b = GraphCsr::from_network(&topo.network);
        assert_ne!(a.epoch(), b.epoch());
        assert_eq!(a, b);
    }

    #[test]
    fn path_from_links_validates_like_path_from_links() {
        let topo = builders::line(3);
        let net = &topo.network;
        let g = GraphCsr::from_network(net);
        let p = net.shortest_path(topo.hosts()[0], topo.hosts()[2]).unwrap();
        let rebuilt = g.path_from_links(p.source(), p.links()).unwrap();
        assert_eq!(rebuilt, p);

        assert!(matches!(
            g.path_from_links(topo.hosts()[0], &[LinkId(999)]),
            Err(PathError::UnknownLink(_))
        ));
        // Disconnected: second link does not start where the first ends.
        let l0 = p.links()[0];
        assert!(matches!(
            g.path_from_links(topo.hosts()[1], &[l0]),
            Err(PathError::Disconnected { .. })
        ));
        // Loop: forward then backward over the same cable.
        let back = net.reverse_link(l0).unwrap();
        assert!(matches!(
            g.path_from_links(topo.hosts()[0], &[l0, back]),
            Err(PathError::Loop { .. })
        ));
    }
}
