//! Path-finding algorithms: weighted shortest paths, ECMP enumeration and
//! Yen's k-shortest paths.
//!
//! These are the routing primitives the scheduling layer builds on: the
//! Frank–Wolfe multi-commodity flow solver needs weighted shortest paths
//! under marginal link costs, the SP+MCF baseline needs hop-count shortest
//! paths, and the randomized-rounding analysis benefits from bounded
//! candidate path sets (k-shortest paths).

use crate::{LinkId, Network, NodeId, Path};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry of the Dijkstra priority queue.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) pops the smallest distance;
        // ties broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Weighted shortest path from `src` to `dst` under a non-negative per-link
/// weight function.
///
/// Returns `None` if `dst` is unreachable. Weights must be non-negative and
/// finite; `f64::INFINITY` may be used to forbid a link.
///
/// # Panics
///
/// Panics (in debug builds) if a weight is negative or NaN.
pub fn dijkstra(
    network: &Network,
    src: NodeId,
    dst: NodeId,
    mut link_weight: impl FnMut(LinkId) -> f64,
) -> Option<Path> {
    let n = network.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<LinkId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[src.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        if u == dst {
            break;
        }
        for &lid in network.out_links(u) {
            let w = link_weight(lid);
            debug_assert!(
                !w.is_nan() && w >= 0.0,
                "link weight must be non-negative, got {w}"
            );
            if w.is_infinite() {
                continue;
            }
            let v = network.link(lid).dst;
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent[v.index()] = Some(lid);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    if src == dst {
        return Path::from_links(network, src, &[]).ok();
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    let mut links_rev = Vec::new();
    let mut cur = dst;
    while cur != src {
        let lid = parent[cur.index()]?;
        links_rev.push(lid);
        cur = network.link(lid).src;
    }
    links_rev.reverse();
    Path::from_links(network, src, &links_rev).ok()
}

/// Enumerates **all** hop-count shortest paths from `src` to `dst`
/// (the ECMP path set), up to `limit` paths.
///
/// Paths are produced in a deterministic order (lexicographic by link id).
pub fn all_shortest_paths(network: &Network, src: NodeId, dst: NodeId, limit: usize) -> Vec<Path> {
    if limit == 0 {
        return Vec::new();
    }
    // Distance from every node *to* dst (BFS on reversed links).
    let mut dist_to_dst = vec![usize::MAX; network.node_count()];
    dist_to_dst[dst.index()] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(dst);
    while let Some(u) = queue.pop_front() {
        for &lid in network.in_links(u) {
            let v = network.link(lid).src;
            if dist_to_dst[v.index()] == usize::MAX {
                dist_to_dst[v.index()] = dist_to_dst[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    if dist_to_dst[src.index()] == usize::MAX {
        return Vec::new();
    }

    // DFS following only links that strictly decrease the distance to dst.
    struct EcmpDfs<'a> {
        network: &'a Network,
        src: NodeId,
        dst: NodeId,
        dist_to_dst: &'a [usize],
        limit: usize,
        stack_links: Vec<LinkId>,
        result: Vec<Path>,
    }

    impl EcmpDfs<'_> {
        fn walk(&mut self, cur: NodeId) {
            if self.result.len() >= self.limit {
                return;
            }
            if cur == self.dst {
                if let Ok(p) = Path::from_links(self.network, self.src, &self.stack_links) {
                    self.result.push(p);
                }
                return;
            }
            for &lid in self.network.out_links(cur) {
                let v = self.network.link(lid).dst;
                if self.dist_to_dst[v.index()] != usize::MAX
                    && self.dist_to_dst[v.index()] + 1 == self.dist_to_dst[cur.index()]
                {
                    self.stack_links.push(lid);
                    self.walk(v);
                    self.stack_links.pop();
                    if self.result.len() >= self.limit {
                        return;
                    }
                }
            }
        }
    }

    let mut search = EcmpDfs {
        network,
        src,
        dst,
        dist_to_dst: &dist_to_dst,
        limit,
        stack_links: Vec::new(),
        result: Vec::new(),
    };
    search.walk(src);
    search.result
}

/// Yen's algorithm: the `k` loop-free shortest paths from `src` to `dst`
/// under a per-link weight function.
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// distinct simple paths. Weights must be non-negative.
pub fn k_shortest_paths(
    network: &Network,
    src: NodeId,
    dst: NodeId,
    k: usize,
    mut link_weight: impl FnMut(LinkId) -> f64,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let first = match dijkstra(network, src, dst, &mut link_weight) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let mut paths = vec![first];
    // Candidate set: (cost, path); kept sorted by cost (ascending).
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    for _ in 1..k {
        let last = paths.last().expect("paths is non-empty").clone();
        // Spur from every node of the previous path.
        for i in 0..last.nodes().len() - 1 {
            let spur_node = last.nodes()[i];
            let root_links: Vec<LinkId> = last.links()[..i].to_vec();

            // Links to ban: the next link of any already-accepted path that
            // shares the same root.
            let mut banned_links: Vec<LinkId> = Vec::new();
            for p in &paths {
                if p.links().len() > i && p.links()[..i] == root_links[..] {
                    banned_links.push(p.links()[i]);
                }
            }
            // Nodes on the root (except spur node) are banned to keep the
            // total path simple.
            let banned_nodes: Vec<NodeId> = last.nodes()[..i].to_vec();

            let spur = dijkstra(network, spur_node, dst, |lid| {
                if banned_links.contains(&lid) {
                    return f64::INFINITY;
                }
                let l = network.link(lid);
                if banned_nodes.contains(&l.dst) || banned_nodes.contains(&l.src) {
                    return f64::INFINITY;
                }
                link_weight(lid)
            });
            let Some(spur) = spur else { continue };

            let mut total_links = root_links.clone();
            total_links.extend_from_slice(spur.links());
            let Ok(total) = Path::from_links(network, src, &total_links) else {
                continue;
            };
            if paths.contains(&total) || candidates.iter().any(|(_, p)| *p == total) {
                continue;
            }
            let cost = total.weight(&mut link_weight);
            candidates.push((cost, total));
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
        let (_, next) = candidates.remove(0);
        paths.push(next);
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, NodeKind};

    fn diamond() -> (Network, NodeId, NodeId, NodeId, NodeId) {
        // a -> b -> d (cheap), a -> c -> d (expensive)
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        let b = net.add_node(NodeKind::Switch, "b");
        let c = net.add_node(NodeKind::Switch, "c");
        let d = net.add_node(NodeKind::Host, "d");
        net.add_duplex_link(a, b, 1.0);
        net.add_duplex_link(b, d, 1.0);
        net.add_duplex_link(a, c, 1.0);
        net.add_duplex_link(c, d, 1.0);
        (net, a, b, c, d)
    }

    #[test]
    fn dijkstra_prefers_cheap_route() {
        let (net, a, b, c, d) = diamond();
        let p = dijkstra(&net, a, d, |lid| {
            let l = net.link(lid);
            if l.src == c || l.dst == c {
                10.0
            } else {
                1.0
            }
        })
        .unwrap();
        assert!(p.contains_node(b));
        assert!(!p.contains_node(c));
    }

    #[test]
    fn dijkstra_respects_infinite_weights() {
        let (net, a, b, _c, d) = diamond();
        // Forbid everything through b: must go through c.
        let p = dijkstra(&net, a, d, |lid| {
            let l = net.link(lid);
            if l.src == b || l.dst == b {
                f64::INFINITY
            } else {
                1.0
            }
        })
        .unwrap();
        assert!(!p.contains_node(b));
    }

    #[test]
    fn dijkstra_unreachable_returns_none() {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        let b = net.add_node(NodeKind::Host, "b");
        let _ = (a, b);
        assert!(dijkstra(&net, a, b, |_| 1.0).is_none());
    }

    #[test]
    fn all_shortest_paths_finds_both_diamond_branches() {
        let (net, a, _b, _c, d) = diamond();
        let paths = all_shortest_paths(&net, a, d, 10);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 2);
            assert_eq!(p.source(), a);
            assert_eq!(p.destination(), d);
        }
    }

    #[test]
    fn all_shortest_paths_respects_limit() {
        let (net, a, _b, _c, d) = diamond();
        let paths = all_shortest_paths(&net, a, d, 1);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn k_shortest_orders_by_cost() {
        let (net, a, _b, c, d) = diamond();
        let paths = k_shortest_paths(&net, a, d, 3, |lid| {
            let l = net.link(lid);
            if l.src == c || l.dst == c {
                5.0
            } else {
                1.0
            }
        });
        assert_eq!(paths.len(), 2, "diamond has exactly two simple a->d paths");
        assert!(paths[0].weight(|_| 1.0) <= paths[1].weight(|_| 1.0));
        assert!(!paths[0].contains_node(c));
        assert!(paths[1].contains_node(c));
    }

    #[test]
    fn k_shortest_on_parallel_links() {
        let t = builders::parallel(4, 1.0);
        let paths = k_shortest_paths(&t.network, t.source(), t.sink(), 4, |_| 1.0);
        assert_eq!(paths.len(), 4);
        let mut links: Vec<_> = paths.iter().map(|p| p.links()[0]).collect();
        links.sort();
        links.dedup();
        assert_eq!(
            links.len(),
            4,
            "each path must use a distinct parallel link"
        );
    }

    #[test]
    fn ecmp_in_fat_tree_inter_pod() {
        let ft = builders::fat_tree(4);
        let hosts = ft.hosts();
        // First and last host are in different pods; a k=4 fat-tree has
        // (k/2)^2 = 4 equal-cost core paths between them.
        let paths = all_shortest_paths(&ft.network, hosts[0], hosts[15], 64);
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(p.len(), 6);
        }
    }
}
