//! Path-finding algorithms: weighted shortest paths, ECMP enumeration and
//! Yen's k-shortest paths.
//!
//! These are the routing primitives the scheduling layer builds on: the
//! Frank–Wolfe multi-commodity flow solver needs weighted shortest paths
//! under marginal link costs, the SP+MCF baseline needs hop-count shortest
//! paths, and the randomized-rounding analysis benefits from bounded
//! candidate path sets (k-shortest paths).
//!
//! Every algorithm runs on the flat [`GraphCsr`] view through the reusable
//! [`ShortestPathEngine`]; the `*_on` variants take both explicitly so
//! callers with many queries (per-flow routing loops, Frank–Wolfe
//! iterations) amortise the CSR build and the engine's arenas. The classic
//! `&Network` entry points remain as thin wrappers that build a one-shot
//! view — results are identical either way.

use crate::{GraphCsr, LinkId, Network, NodeId, Path, ShortestPathEngine};
use std::cmp::Ordering;

/// Weighted shortest path from `src` to `dst` under a non-negative per-link
/// weight function.
///
/// Returns `None` if `dst` is unreachable. Weights must be non-negative and
/// finite; `f64::INFINITY` may be used to forbid a link.
///
/// Convenience wrapper over [`dijkstra_on`] that builds a one-shot
/// [`GraphCsr`] and engine; batch callers should hold their own.
///
/// # Panics
///
/// Panics (in debug builds) if a weight is negative or NaN.
#[deprecated(
    since = "0.2.0",
    note = "use `dijkstra_on` with a shared GraphCsr and engine"
)]
pub fn dijkstra(
    network: &Network,
    src: NodeId,
    dst: NodeId,
    link_weight: impl FnMut(LinkId) -> f64,
) -> Option<Path> {
    let graph = GraphCsr::from_network(network);
    dijkstra_on(
        &graph,
        &mut ShortestPathEngine::new(),
        src,
        dst,
        link_weight,
    )
}

/// Weighted shortest path on a prebuilt [`GraphCsr`], reusing the engine's
/// scratch arenas. See [`dijkstra`] for the semantics.
pub fn dijkstra_on(
    graph: &GraphCsr,
    engine: &mut ShortestPathEngine,
    src: NodeId,
    dst: NodeId,
    link_weight: impl FnMut(LinkId) -> f64,
) -> Option<Path> {
    engine.shortest_path(graph, src, dst, link_weight)
}

/// Enumerates **all** hop-count shortest paths from `src` to `dst`
/// (the ECMP path set), up to `limit` paths.
///
/// Paths are produced in a deterministic order (lexicographic by link id).
///
/// Convenience wrapper over [`all_shortest_paths_on`].
#[deprecated(
    since = "0.2.0",
    note = "use `all_shortest_paths_on` with a shared GraphCsr"
)]
pub fn all_shortest_paths(network: &Network, src: NodeId, dst: NodeId, limit: usize) -> Vec<Path> {
    all_shortest_paths_on(&GraphCsr::from_network(network), src, dst, limit)
}

/// ECMP enumeration on a prebuilt [`GraphCsr`]. See [`all_shortest_paths`].
pub fn all_shortest_paths_on(
    graph: &GraphCsr,
    src: NodeId,
    dst: NodeId,
    limit: usize,
) -> Vec<Path> {
    if limit == 0 {
        return Vec::new();
    }
    // Distance from every node *to* dst (BFS on the reversed links).
    let dist_to_dst = graph.hop_distances_to(dst);
    if dist_to_dst[src.index()] == usize::MAX {
        return Vec::new();
    }

    // DFS following only links that strictly decrease the distance to dst.
    struct EcmpDfs<'a> {
        graph: &'a GraphCsr,
        src: NodeId,
        dst: NodeId,
        dist_to_dst: &'a [usize],
        limit: usize,
        stack_links: Vec<LinkId>,
        result: Vec<Path>,
    }

    impl EcmpDfs<'_> {
        fn walk(&mut self, cur: NodeId) {
            if self.result.len() >= self.limit {
                return;
            }
            if cur == self.dst {
                if let Ok(p) = self.graph.path_from_links(self.src, &self.stack_links) {
                    self.result.push(p);
                }
                return;
            }
            for &lid in self.graph.out_links(cur) {
                let v = self.graph.link_dst(lid);
                if self.dist_to_dst[v.index()] != usize::MAX
                    && self.dist_to_dst[v.index()] + 1 == self.dist_to_dst[cur.index()]
                {
                    self.stack_links.push(lid);
                    self.walk(v);
                    self.stack_links.pop();
                    if self.result.len() >= self.limit {
                        return;
                    }
                }
            }
        }
    }

    let mut search = EcmpDfs {
        graph,
        src,
        dst,
        dist_to_dst: &dist_to_dst,
        limit,
        stack_links: Vec::new(),
        result: Vec::new(),
    };
    search.walk(src);
    search.result
}

/// Yen's algorithm: the `k` loop-free shortest paths from `src` to `dst`
/// under a per-link weight function.
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// distinct simple paths. Weights must be non-negative.
///
/// Convenience wrapper over [`k_shortest_paths_on`].
#[deprecated(
    since = "0.2.0",
    note = "use `k_shortest_paths_on` with a shared GraphCsr and engine"
)]
pub fn k_shortest_paths(
    network: &Network,
    src: NodeId,
    dst: NodeId,
    k: usize,
    link_weight: impl FnMut(LinkId) -> f64,
) -> Vec<Path> {
    k_shortest_paths_on(
        &GraphCsr::from_network(network),
        &mut ShortestPathEngine::new(),
        src,
        dst,
        k,
        link_weight,
    )
}

/// Yen's algorithm on a prebuilt [`GraphCsr`], reusing the engine across
/// the spur searches. See [`k_shortest_paths`].
pub fn k_shortest_paths_on(
    graph: &GraphCsr,
    engine: &mut ShortestPathEngine,
    src: NodeId,
    dst: NodeId,
    k: usize,
    mut link_weight: impl FnMut(LinkId) -> f64,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let first = match engine.shortest_path(graph, src, dst, &mut link_weight) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let mut paths = vec![first];
    // Candidate set: (cost, path); kept sorted by cost (ascending).
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    for _ in 1..k {
        let last = paths.last().expect("paths is non-empty").clone();
        // Spur from every node of the previous path.
        for i in 0..last.nodes().len() - 1 {
            let spur_node = last.nodes()[i];
            let root_links: Vec<LinkId> = last.links()[..i].to_vec();

            // Links to ban: the next link of any already-accepted path that
            // shares the same root.
            let mut banned_links: Vec<LinkId> = Vec::new();
            for p in &paths {
                if p.links().len() > i && p.links()[..i] == root_links[..] {
                    banned_links.push(p.links()[i]);
                }
            }
            // Nodes on the root (except spur node) are banned to keep the
            // total path simple.
            let banned_nodes: Vec<NodeId> = last.nodes()[..i].to_vec();

            let spur = engine.shortest_path(graph, spur_node, dst, |lid| {
                if banned_links.contains(&lid) {
                    return f64::INFINITY;
                }
                if banned_nodes.contains(&graph.link_dst(lid))
                    || banned_nodes.contains(&graph.link_src(lid))
                {
                    return f64::INFINITY;
                }
                link_weight(lid)
            });
            let Some(spur) = spur else { continue };

            let mut total_links = root_links.clone();
            total_links.extend_from_slice(spur.links());
            let Ok(total) = graph.path_from_links(src, &total_links) else {
                continue;
            };
            if paths.contains(&total) || candidates.iter().any(|(_, p)| *p == total) {
                continue;
            }
            let cost = total.weight(&mut link_weight);
            candidates.push((cost, total));
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
        let (_, next) = candidates.remove(0);
        paths.push(next);
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, NodeKind};

    fn diamond() -> (Network, NodeId, NodeId, NodeId, NodeId) {
        // a -> b -> d (cheap), a -> c -> d (expensive)
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        let b = net.add_node(NodeKind::Switch, "b");
        let c = net.add_node(NodeKind::Switch, "c");
        let d = net.add_node(NodeKind::Host, "d");
        net.add_duplex_link(a, b, 1.0);
        net.add_duplex_link(b, d, 1.0);
        net.add_duplex_link(a, c, 1.0);
        net.add_duplex_link(c, d, 1.0);
        (net, a, b, c, d)
    }

    #[test]
    fn dijkstra_prefers_cheap_route() {
        let (net, a, b, c, d) = diamond();
        let graph = GraphCsr::from_network(&net);
        let mut engine = ShortestPathEngine::new();
        let p = dijkstra_on(&graph, &mut engine, a, d, |lid| {
            let l = net.link(lid);
            if l.src == c || l.dst == c {
                10.0
            } else {
                1.0
            }
        })
        .unwrap();
        assert!(p.contains_node(b));
        assert!(!p.contains_node(c));
    }

    #[test]
    fn dijkstra_respects_infinite_weights() {
        let (net, a, b, _c, d) = diamond();
        let graph = GraphCsr::from_network(&net);
        let mut engine = ShortestPathEngine::new();
        // Forbid everything through b: must go through c.
        let p = dijkstra_on(&graph, &mut engine, a, d, |lid| {
            let l = net.link(lid);
            if l.src == b || l.dst == b {
                f64::INFINITY
            } else {
                1.0
            }
        })
        .unwrap();
        assert!(!p.contains_node(b));
    }

    #[test]
    fn dijkstra_unreachable_returns_none() {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, "a");
        let b = net.add_node(NodeKind::Host, "b");
        let _ = (a, b);
        let graph = GraphCsr::from_network(&net);
        assert!(dijkstra_on(&graph, &mut ShortestPathEngine::new(), a, b, |_| 1.0).is_none());
    }

    #[test]
    fn all_shortest_paths_finds_both_diamond_branches() {
        let (net, a, _b, _c, d) = diamond();
        let paths = all_shortest_paths_on(&GraphCsr::from_network(&net), a, d, 10);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 2);
            assert_eq!(p.source(), a);
            assert_eq!(p.destination(), d);
        }
    }

    #[test]
    fn all_shortest_paths_respects_limit() {
        let (net, a, _b, _c, d) = diamond();
        let paths = all_shortest_paths_on(&GraphCsr::from_network(&net), a, d, 1);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn k_shortest_orders_by_cost() {
        let (net, a, _b, c, d) = diamond();
        let graph = GraphCsr::from_network(&net);
        let paths = k_shortest_paths_on(&graph, &mut ShortestPathEngine::new(), a, d, 3, |lid| {
            let l = net.link(lid);
            if l.src == c || l.dst == c {
                5.0
            } else {
                1.0
            }
        });
        assert_eq!(paths.len(), 2, "diamond has exactly two simple a->d paths");
        assert!(paths[0].weight(|_| 1.0) <= paths[1].weight(|_| 1.0));
        assert!(!paths[0].contains_node(c));
        assert!(paths[1].contains_node(c));
    }

    #[test]
    fn k_shortest_on_parallel_links() {
        let t = builders::parallel(4, 1.0);
        let paths = k_shortest_paths_on(
            &t.csr(),
            &mut ShortestPathEngine::new(),
            t.source(),
            t.sink(),
            4,
            |_| 1.0,
        );
        assert_eq!(paths.len(), 4);
        let mut links: Vec<_> = paths.iter().map(|p| p.links()[0]).collect();
        links.sort();
        links.dedup();
        assert_eq!(
            links.len(),
            4,
            "each path must use a distinct parallel link"
        );
    }

    #[test]
    fn ecmp_in_fat_tree_inter_pod() {
        let ft = builders::fat_tree(4);
        let hosts = ft.hosts();
        // First and last host are in different pods; a k=4 fat-tree has
        // (k/2)^2 = 4 equal-cost core paths between them.
        let paths = all_shortest_paths_on(&ft.csr(), hosts[0], hosts[15], 64);
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(p.len(), 6);
        }
    }

    #[test]
    fn on_variants_share_one_engine_across_queries() {
        let ft = builders::fat_tree(4);
        let graph = GraphCsr::from_network(&ft.network);
        let mut engine = ShortestPathEngine::new();
        let hosts = ft.hosts();
        for (&a, &b) in hosts.iter().zip(hosts.iter().rev()) {
            if a == b {
                continue;
            }
            let on = dijkstra_on(&graph, &mut engine, a, b, |_| 1.0).unwrap();
            #[allow(deprecated)] // pins the deprecated one-shot wrappers against the `_on` path
            let classic = dijkstra(&ft.network, a, b, |_| 1.0).unwrap();
            assert_eq!(on, classic);
            let ksp_on = k_shortest_paths_on(&graph, &mut engine, a, b, 3, |_| 1.0);
            #[allow(deprecated)]
            let ksp = k_shortest_paths(&ft.network, a, b, 3, |_| 1.0);
            assert_eq!(ksp_on, ksp);
            #[allow(deprecated)]
            let all_classic = all_shortest_paths(&ft.network, a, b, 16);
            assert_eq!(all_shortest_paths_on(&graph, a, b, 16), all_classic);
        }
    }
}
