//! Network-wide energy accounting over a scheduling horizon.

use crate::{PowerFunction, RateProfile};
use dcn_topology::LinkId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The energy consumed by a schedule, split the way the paper's objective
/// (Eq. 5) splits it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Idle energy: `(T1 - T0) * |E_a| * sigma` — every link that is ever
    /// active pays the idle power for the whole horizon, because the paper
    /// only allows a link to be powered down if it carries no traffic during
    /// the entire period.
    pub idle: f64,
    /// Dynamic (speed-scaling) energy: `integral over time of
    /// sum_e mu * x_e(t)^alpha`.
    pub dynamic: f64,
    /// Number of active links `|E_a|`.
    pub active_links: usize,
}

impl EnergyBreakdown {
    /// Total energy `Phi_f = idle + dynamic`.
    pub fn total(&self) -> f64 {
        self.idle + self.dynamic
    }
}

/// Accumulates per-link transmission activity and evaluates the paper's
/// energy objective `Phi_f` over a fixed horizon `[T0, T1]`.
///
/// # Example
///
/// ```
/// use dcn_power::{EnergyMeter, PowerFunction};
/// use dcn_topology::LinkId;
///
/// let f = PowerFunction::new(1.0, 1.0, 2.0, 10.0).unwrap();
/// let mut meter = EnergyMeter::new(f, 0.0, 10.0);
/// meter.add_transmission(LinkId(0), 0.0, 5.0, 2.0);
///
/// let e = meter.breakdown();
/// assert_eq!(e.active_links, 1);
/// assert_eq!(e.idle, 10.0);        // sigma * horizon for one active link
/// assert_eq!(e.dynamic, 20.0);     // 2^2 * 5
/// assert_eq!(e.total(), 30.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    power: PowerFunction,
    horizon_start: f64,
    horizon_end: f64,
    links: BTreeMap<LinkId, RateProfile>,
}

impl EnergyMeter {
    /// Creates a meter for the horizon `[start, end]` under the given power
    /// function.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(power: PowerFunction, start: f64, end: f64) -> Self {
        assert!(end >= start, "horizon end {end} precedes start {start}");
        Self {
            power,
            horizon_start: start,
            horizon_end: end,
            links: BTreeMap::new(),
        }
    }

    /// The power function in effect.
    pub fn power_function(&self) -> &PowerFunction {
        &self.power
    }

    /// The scheduling horizon `[T0, T1]`.
    pub fn horizon(&self) -> (f64, f64) {
        (self.horizon_start, self.horizon_end)
    }

    /// Records that `link` transmits at `rate` during `[start, end)`.
    /// Multiple recordings on the same link accumulate (the link's rate is
    /// the sum of the rates of the flows it carries).
    pub fn add_transmission(&mut self, link: LinkId, start: f64, end: f64, rate: f64) {
        self.links
            .entry(link)
            .or_default()
            .add_rate(start, end, rate);
    }

    /// Merges an entire per-link profile into the meter.
    pub fn add_profile(&mut self, link: LinkId, profile: &RateProfile) {
        self.links.entry(link).or_default().merge(profile);
    }

    /// The aggregate rate profile recorded for `link`, if any.
    pub fn link_profile(&self, link: LinkId) -> Option<&RateProfile> {
        self.links.get(&link)
    }

    /// Ids of the links that carry any traffic (the active set `E_a`).
    pub fn active_links(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|(_, p)| p.is_active())
            .map(|(&l, _)| l)
            .collect()
    }

    /// The largest factor by which any link exceeds its capacity `C`
    /// (zero if no link ever does).
    pub fn max_capacity_excess(&self) -> f64 {
        self.links
            .values()
            .map(|p| p.capacity_excess(self.power.capacity()))
            .fold(0.0, f64::max)
    }

    /// Evaluates the paper's objective (Eq. 5) for everything recorded so
    /// far.
    pub fn breakdown(&self) -> EnergyBreakdown {
        let horizon = self.horizon_end - self.horizon_start;
        let mut idle = 0.0;
        let mut dynamic = 0.0;
        let mut active = 0usize;
        for profile in self.links.values() {
            if !profile.is_active() {
                continue;
            }
            active += 1;
            idle += self.power.sigma() * horizon;
            dynamic += profile.dynamic_energy(&self.power);
        }
        EnergyBreakdown {
            idle,
            dynamic,
            active_links: active,
        }
    }

    /// Total energy `Phi_f` (idle + dynamic).
    pub fn total_energy(&self) -> f64 {
        self.breakdown().total()
    }

    /// Per-link total energy (idle share + dynamic), sorted by link id.
    pub fn per_link_energy(&self) -> Vec<(LinkId, f64)> {
        let horizon = self.horizon_end - self.horizon_start;
        self.links
            .iter()
            .filter(|(_, p)| p.is_active())
            .map(|(&l, p)| {
                (
                    l,
                    self.power.sigma() * horizon + p.dynamic_energy(&self.power),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn empty_meter_reports_zero() {
        let f = PowerFunction::new(1.0, 1.0, 2.0, 10.0).unwrap();
        let meter = EnergyMeter::new(f, 0.0, 100.0);
        let e = meter.breakdown();
        assert_eq!(e.total(), 0.0);
        assert_eq!(e.active_links, 0);
        assert!(meter.active_links().is_empty());
    }

    #[test]
    fn idle_energy_charged_for_whole_horizon() {
        // Even a short burst makes the link active for the whole period.
        let f = PowerFunction::new(2.0, 1.0, 2.0, 10.0).unwrap();
        let mut meter = EnergyMeter::new(f, 0.0, 50.0);
        meter.add_transmission(LinkId(3), 10.0, 11.0, 1.0);
        let e = meter.breakdown();
        assert!(close(e.idle, 2.0 * 50.0));
        assert!(close(e.dynamic, 1.0));
        assert_eq!(e.active_links, 1);
    }

    #[test]
    fn multiple_links_and_flows_accumulate() {
        let f = PowerFunction::new(1.0, 1.0, 2.0, 10.0).unwrap();
        let mut meter = EnergyMeter::new(f, 0.0, 10.0);
        // Two flows share link 0 during [0,5): aggregate rate 3.
        meter.add_transmission(LinkId(0), 0.0, 5.0, 1.0);
        meter.add_transmission(LinkId(0), 0.0, 5.0, 2.0);
        // Link 1 runs alone.
        meter.add_transmission(LinkId(1), 0.0, 10.0, 1.0);
        let e = meter.breakdown();
        assert_eq!(e.active_links, 2);
        assert!(close(e.idle, 2.0 * 10.0));
        assert!(close(e.dynamic, 9.0 * 5.0 + 1.0 * 10.0));
        // The aggregation on link 0 must be 3, not two separate rates.
        assert!(close(
            meter.link_profile(LinkId(0)).unwrap().max_rate(),
            3.0
        ));
    }

    #[test]
    fn per_link_energy_sums_to_total() {
        let f = PowerFunction::new(1.5, 2.0, 3.0, 10.0).unwrap();
        let mut meter = EnergyMeter::new(f, 0.0, 20.0);
        meter.add_transmission(LinkId(0), 0.0, 5.0, 2.0);
        meter.add_transmission(LinkId(7), 3.0, 9.0, 1.0);
        meter.add_transmission(LinkId(2), 0.0, 1.0, 3.0);
        let per_link: f64 = meter.per_link_energy().iter().map(|(_, e)| e).sum();
        assert!(close(per_link, meter.total_energy()));
    }

    #[test]
    fn capacity_excess_detection() {
        let f = PowerFunction::new(0.5, 1.0, 2.0, 5.0).unwrap();
        let mut meter = EnergyMeter::new(f, 0.0, 10.0);
        meter.add_transmission(LinkId(0), 0.0, 4.0, 3.0);
        assert_eq!(meter.max_capacity_excess(), 0.0);
        meter.add_transmission(LinkId(0), 2.0, 3.0, 4.0);
        assert!(close(meter.max_capacity_excess(), 2.0));
    }

    #[test]
    fn add_profile_equivalent_to_add_transmission() {
        let f = PowerFunction::new(1.0, 1.0, 2.0, 10.0).unwrap();
        let mut a = EnergyMeter::new(f, 0.0, 10.0);
        let mut b = EnergyMeter::new(f, 0.0, 10.0);
        a.add_transmission(LinkId(0), 1.0, 4.0, 2.0);
        b.add_profile(LinkId(0), &RateProfile::constant(1.0, 4.0, 2.0));
        assert!(close(a.total_energy(), b.total_energy()));
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn reversed_horizon_rejected() {
        let f = PowerFunction::new(1.0, 1.0, 2.0, 10.0).unwrap();
        EnergyMeter::new(f, 10.0, 0.0);
    }
}
