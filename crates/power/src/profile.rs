//! Piecewise-constant transmission-rate profiles.

use crate::PowerFunction;
use serde::{Deserialize, Serialize};

/// A piecewise-constant, non-negative rate as a function of time.
///
/// Profiles are built by *adding* rate over half-open intervals
/// `[start, end)`; overlapping additions accumulate, which makes the type
/// directly usable both for a single flow's transmission rate `s_i(t)` and
/// for a link's aggregate rate `x_e(t) = sum of the rates of the flows it
/// carries`.
///
/// # Example
///
/// ```
/// use dcn_power::RateProfile;
///
/// let mut p = RateProfile::new();
/// p.add_rate(0.0, 4.0, 2.0);
/// p.add_rate(2.0, 6.0, 1.0);
/// assert_eq!(p.rate_at(1.0), 2.0);
/// assert_eq!(p.rate_at(3.0), 3.0);
/// assert_eq!(p.rate_at(5.0), 1.0);
/// assert_eq!(p.volume(), 2.0 * 4.0 + 1.0 * 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RateProfile {
    /// Raw (start, end, rate) additions, not necessarily disjoint.
    pieces: Vec<(f64, f64, f64)>,
}

impl RateProfile {
    /// Creates an empty (always-zero) profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a profile equal to `rate` on `[start, end)` and zero
    /// elsewhere.
    pub fn constant(start: f64, end: f64, rate: f64) -> Self {
        let mut p = Self::new();
        p.add_rate(start, end, rate);
        p
    }

    /// Adds `rate` over the half-open interval `[start, end)`.
    ///
    /// Zero-rate or empty-interval additions are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`, if the rate is negative, or if any value is
    /// not finite.
    pub fn add_rate(&mut self, start: f64, end: f64, rate: f64) {
        assert!(
            start.is_finite() && end.is_finite() && rate.is_finite(),
            "profile pieces must be finite: [{start}, {end}) at {rate}"
        );
        assert!(end >= start, "interval end {end} precedes start {start}");
        assert!(rate >= 0.0, "rate must be non-negative, got {rate}");
        if end > start && rate > 0.0 {
            self.pieces.push((start, end, rate));
        }
    }

    /// Returns `true` if the profile is identically zero.
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Returns `true` if the profile carries any traffic (positive volume).
    pub fn is_active(&self) -> bool {
        !self.is_empty()
    }

    /// The instantaneous rate at time `t`.
    ///
    /// At a breakpoint the *right* limit applies (intervals are half-open).
    pub fn rate_at(&self, t: f64) -> f64 {
        self.pieces
            .iter()
            .filter(|&&(s, e, _)| t >= s && t < e)
            .map(|&(_, _, r)| r)
            .sum()
    }

    /// Total volume carried: the integral of the rate over all time.
    pub fn volume(&self) -> f64 {
        self.pieces.iter().map(|&(s, e, r)| (e - s) * r).sum()
    }

    /// Volume carried inside `[from, to)`.
    pub fn volume_between(&self, from: f64, to: f64) -> f64 {
        self.pieces
            .iter()
            .map(|&(s, e, r)| {
                let lo = s.max(from);
                let hi = e.min(to);
                if hi > lo {
                    (hi - lo) * r
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// The earliest and latest breakpoints of the profile, or `None` if it is
    /// empty.
    pub fn span(&self) -> Option<(f64, f64)> {
        if self.pieces.is_empty() {
            return None;
        }
        let start = self
            .pieces
            .iter()
            .map(|p| p.0)
            .fold(f64::INFINITY, f64::min);
        let end = self
            .pieces
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max);
        Some((start, end))
    }

    /// The merged, disjoint segments `(start, end, rate)` of the profile with
    /// strictly positive rate, sorted by start time.
    pub fn segments(&self) -> Vec<(f64, f64, f64)> {
        if self.pieces.is_empty() {
            return Vec::new();
        }
        let mut times: Vec<f64> = self.pieces.iter().flat_map(|&(s, e, _)| [s, e]).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        times.dedup();
        // Sweep the elementary windows with an active-piece set instead of
        // re-scanning every piece per window (quadratic in pieces, and the
        // post-run bottleneck of 100k-arrival online traces). Pieces enter
        // at their start breakpoint and leave at their end breakpoint; the
        // active set stays sorted by piece index, so each window's rate is
        // the sum of the same rates in the same order the full scan took —
        // the output is bitwise identical.
        let mut by_start: Vec<usize> = (0..self.pieces.len()).collect();
        by_start.sort_by(|&a, &b| {
            self.pieces[a]
                .0
                .partial_cmp(&self.pieces[b].0)
                .expect("finite breakpoints")
        });
        let mut next = 0usize;
        let mut active: Vec<usize> = Vec::new();
        let mut out = Vec::new();
        for w in times.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if hi <= lo {
                continue;
            }
            active.retain(|&i| self.pieces[i].1 > lo);
            while next < by_start.len() && self.pieces[by_start[next]].0 <= lo {
                let i = by_start[next];
                next += 1;
                if self.pieces[i].1 > lo {
                    if let Err(slot) = active.binary_search(&i) {
                        active.insert(slot, i);
                    }
                }
            }
            let rate: f64 = active.iter().map(|&i| self.pieces[i].2).sum();
            if rate > 0.0 {
                // Merge with the previous segment when the rate is identical
                // and the segments are adjacent.
                if let Some(last) = out.last_mut() {
                    let (_, ref mut last_end, last_rate): &mut (f64, f64, f64) = last;
                    if (*last_rate - rate).abs() < 1e-12 && (*last_end - lo).abs() < 1e-12 {
                        *last_end = hi;
                        continue;
                    }
                }
                out.push((lo, hi, rate));
            }
        }
        out
    }

    /// The maximum instantaneous rate over all time.
    pub fn max_rate(&self) -> f64 {
        self.segments()
            .iter()
            .map(|&(_, _, r)| r)
            .fold(0.0, f64::max)
    }

    /// Total time during which the rate is strictly positive.
    pub fn active_duration(&self) -> f64 {
        self.segments().iter().map(|&(s, e, _)| e - s).sum()
    }

    /// The energy of the *dynamic* (speed-scaling) term:
    /// `integral of mu * rate(t)^alpha dt`.
    pub fn dynamic_energy(&self, power: &PowerFunction) -> f64 {
        self.segments()
            .iter()
            .map(|&(s, e, r)| power.dynamic_power(r) * (e - s))
            .sum()
    }

    /// The full energy `integral of f(rate(t)) dt` where the idle power is
    /// only charged while the rate is positive.
    ///
    /// Note that the paper's objective (Eq. 5) instead charges idle power for
    /// the whole horizon on every link that is ever active; that accounting
    /// lives in [`crate::EnergyMeter`]. This method is the "ideal power
    /// down at every idle instant" variant used for lower bounds.
    pub fn energy_with_instantaneous_powerdown(&self, power: &PowerFunction) -> f64 {
        self.segments()
            .iter()
            .map(|&(s, e, r)| power.power(r) * (e - s))
            .sum()
    }

    /// The maximum amount by which the profile exceeds `capacity`
    /// (zero when it never does).
    pub fn capacity_excess(&self, capacity: f64) -> f64 {
        (self.max_rate() - capacity).max(0.0)
    }

    /// Merges another profile into this one (pointwise sum of rates).
    pub fn merge(&mut self, other: &RateProfile) {
        self.pieces.extend_from_slice(&other.pieces);
    }

    /// The profile restricted to the window `[from, to)`: identical rates
    /// inside the window, zero outside. Segments straddling a window edge
    /// are clipped to it; segments entirely inside keep their exact
    /// breakpoints, so restricting a profile to a window that contains all
    /// of its activity changes nothing.
    ///
    /// This is the commit primitive of the online rolling-horizon loop: at
    /// each arrival event only the part of the freshly solved schedule up
    /// to the next event is committed.
    pub fn restricted(&self, from: f64, to: f64) -> RateProfile {
        let mut out = RateProfile::new();
        for (start, end, rate) in self.segments() {
            let lo = start.max(from);
            let hi = end.min(to);
            if hi > lo {
                out.add_rate(lo, hi, rate);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn restricted_clips_to_the_window() {
        let mut p = RateProfile::new();
        p.add_rate(0.0, 4.0, 2.0);
        p.add_rate(6.0, 8.0, 1.0);
        let mid = p.restricted(1.0, 7.0);
        assert!(close(mid.volume(), 2.0 * 3.0 + 1.0 * 1.0));
        assert_eq!(mid.rate_at(0.5), 0.0);
        assert_eq!(mid.rate_at(2.0), 2.0);
        assert_eq!(mid.rate_at(6.5), 1.0);
        assert_eq!(mid.rate_at(7.5), 0.0);
        // A window containing all activity reproduces the profile exactly.
        assert_eq!(p.restricted(-10.0, 10.0).segments(), p.segments());
        // A window outside the activity is empty.
        assert!(p.restricted(10.0, 20.0).is_empty());
    }

    #[test]
    fn empty_profile_is_zero_everywhere() {
        let p = RateProfile::new();
        assert!(p.is_empty());
        assert!(!p.is_active());
        assert_eq!(p.rate_at(0.0), 0.0);
        assert_eq!(p.volume(), 0.0);
        assert_eq!(p.max_rate(), 0.0);
        assert!(p.span().is_none());
        assert!(p.segments().is_empty());
    }

    #[test]
    fn constant_profile() {
        let p = RateProfile::constant(1.0, 3.0, 2.5);
        assert!(close(p.volume(), 5.0));
        assert_eq!(p.rate_at(1.0), 2.5);
        assert_eq!(p.rate_at(2.9), 2.5);
        assert_eq!(p.rate_at(3.0), 0.0, "intervals are half-open");
        assert_eq!(p.span(), Some((1.0, 3.0)));
    }

    #[test]
    fn overlapping_additions_accumulate() {
        let mut p = RateProfile::new();
        p.add_rate(0.0, 4.0, 1.0);
        p.add_rate(2.0, 6.0, 2.0);
        assert_eq!(p.rate_at(1.0), 1.0);
        assert_eq!(p.rate_at(3.0), 3.0);
        assert_eq!(p.rate_at(5.0), 2.0);
        assert!(close(p.volume(), 4.0 + 8.0));
        assert_eq!(p.max_rate(), 3.0);
        let segs = p.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], (0.0, 2.0, 1.0));
        assert_eq!(segs[1], (2.0, 4.0, 3.0));
        assert_eq!(segs[2], (4.0, 6.0, 2.0));
    }

    #[test]
    fn adjacent_equal_segments_are_merged() {
        let mut p = RateProfile::new();
        p.add_rate(0.0, 1.0, 2.0);
        p.add_rate(1.0, 2.0, 2.0);
        let segs = p.segments();
        assert_eq!(segs, vec![(0.0, 2.0, 2.0)]);
        assert!(close(p.active_duration(), 2.0));
    }

    #[test]
    fn gaps_are_preserved() {
        let mut p = RateProfile::new();
        p.add_rate(0.0, 1.0, 1.0);
        p.add_rate(3.0, 4.0, 1.0);
        assert_eq!(p.rate_at(2.0), 0.0);
        assert!(close(p.active_duration(), 2.0));
        assert_eq!(p.segments().len(), 2);
    }

    #[test]
    fn volume_between_clips_correctly() {
        let p = RateProfile::constant(0.0, 10.0, 2.0);
        assert!(close(p.volume_between(2.0, 5.0), 6.0));
        assert!(close(p.volume_between(-5.0, 2.0), 4.0));
        assert!(close(p.volume_between(9.0, 20.0), 2.0));
        assert_eq!(p.volume_between(11.0, 20.0), 0.0);
    }

    #[test]
    fn zero_rate_and_empty_interval_ignored() {
        let mut p = RateProfile::new();
        p.add_rate(0.0, 5.0, 0.0);
        p.add_rate(3.0, 3.0, 7.0);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_rejected() {
        let mut p = RateProfile::new();
        p.add_rate(0.0, 1.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn reversed_interval_rejected() {
        let mut p = RateProfile::new();
        p.add_rate(2.0, 1.0, 1.0);
    }

    #[test]
    fn dynamic_energy_quadratic() {
        let f = PowerFunction::speed_scaling_only(1.0, 2.0, 100.0);
        let mut p = RateProfile::new();
        p.add_rate(0.0, 2.0, 3.0); // 2 * 9 = 18
        p.add_rate(2.0, 3.0, 1.0); // 1 * 1 = 1
        assert!(close(p.dynamic_energy(&f), 19.0));
    }

    #[test]
    fn powerdown_energy_includes_sigma_only_when_active() {
        let f = PowerFunction::new(5.0, 1.0, 2.0, 100.0).unwrap();
        let p = RateProfile::constant(0.0, 2.0, 1.0);
        // 2 seconds active: (5 + 1) * 2 = 12; no charge for idle time.
        assert!(close(p.energy_with_instantaneous_powerdown(&f), 12.0));
    }

    #[test]
    fn capacity_excess() {
        let mut p = RateProfile::new();
        p.add_rate(0.0, 1.0, 4.0);
        p.add_rate(0.5, 1.0, 3.0);
        assert!(close(p.capacity_excess(5.0), 2.0));
        assert_eq!(p.capacity_excess(10.0), 0.0);
    }

    #[test]
    fn merge_sums_pointwise() {
        let a = RateProfile::constant(0.0, 2.0, 1.0);
        let b = RateProfile::constant(1.0, 3.0, 2.0);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.rate_at(0.5), 1.0);
        assert_eq!(m.rate_at(1.5), 3.0);
        assert_eq!(m.rate_at(2.5), 2.0);
        assert!(close(m.volume(), a.volume() + b.volume()));
    }
}
