//! The combined power-down / speed-scaling link power function (paper Eq. 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when constructing a [`PowerFunction`] with invalid
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerFunctionError {
    /// `alpha` must be strictly greater than one (the function must be
    /// superadditive for the paper's results to hold).
    NonSuperadditiveAlpha(f64),
    /// `mu` must be strictly positive.
    NonPositiveMu(f64),
    /// `sigma` must be non-negative.
    NegativeSigma(f64),
    /// `capacity` must be strictly positive and finite.
    InvalidCapacity(f64),
}

impl fmt::Display for PowerFunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerFunctionError::NonSuperadditiveAlpha(a) => {
                write!(
                    f,
                    "alpha must be > 1 for a superadditive power function, got {a}"
                )
            }
            PowerFunctionError::NonPositiveMu(m) => write!(f, "mu must be > 0, got {m}"),
            PowerFunctionError::NegativeSigma(s) => write!(f, "sigma must be >= 0, got {s}"),
            PowerFunctionError::InvalidCapacity(c) => {
                write!(f, "capacity must be positive and finite, got {c}")
            }
        }
    }
}

impl std::error::Error for PowerFunctionError {}

/// The per-link power function `f(x) = sigma + mu * x^alpha` for `0 < x <= C`
/// and `f(0) = 0`, as defined in Eq. (1) of the paper.
///
/// All links in a data center are assumed identical, so a single
/// `PowerFunction` value is shared by every link of a network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerFunction {
    sigma: f64,
    mu: f64,
    alpha: f64,
    capacity: f64,
}

impl PowerFunction {
    /// Creates a power function with idle power `sigma`, speed-scaling
    /// coefficient `mu`, exponent `alpha` and link capacity `capacity`.
    ///
    /// # Errors
    ///
    /// Returns an error when `alpha <= 1`, `mu <= 0`, `sigma < 0` or the
    /// capacity is not positive and finite.
    pub fn new(sigma: f64, mu: f64, alpha: f64, capacity: f64) -> Result<Self, PowerFunctionError> {
        if alpha <= 1.0 || alpha.is_nan() {
            return Err(PowerFunctionError::NonSuperadditiveAlpha(alpha));
        }
        if mu <= 0.0 || mu.is_nan() {
            return Err(PowerFunctionError::NonPositiveMu(mu));
        }
        if sigma < 0.0 || sigma.is_nan() {
            return Err(PowerFunctionError::NegativeSigma(sigma));
        }
        if capacity <= 0.0 || !capacity.is_finite() {
            return Err(PowerFunctionError::InvalidCapacity(capacity));
        }
        Ok(Self {
            sigma,
            mu,
            alpha,
            capacity,
        })
    }

    /// A pure speed-scaling function `g(x) = mu * x^alpha` (no idle power),
    /// as used by the DCFS analysis once inactive links have been discarded,
    /// and by the paper's Fig. 2 setup (`x^2` and `x^4`).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see [`PowerFunction::new`]).
    pub fn speed_scaling_only(mu: f64, alpha: f64, capacity: f64) -> Self {
        Self::new(0.0, mu, alpha, capacity).expect("invalid speed-scaling parameters")
    }

    /// The idle power `sigma`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The speed-scaling coefficient `mu`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The speed-scaling exponent `alpha` (> 1).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The maximum transmission rate `C` of a link.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Returns a copy with a different idle power.
    pub fn with_sigma(mut self, sigma: f64) -> Result<Self, PowerFunctionError> {
        if sigma < 0.0 || sigma.is_nan() {
            return Err(PowerFunctionError::NegativeSigma(sigma));
        }
        self.sigma = sigma;
        Ok(self)
    }

    /// Power drawn at transmission rate `rate` (Eq. 1): `0` when the rate is
    /// zero, `sigma + mu * rate^alpha` otherwise.
    ///
    /// Rates above capacity are physically impossible; for robustness the
    /// function still evaluates them (the schedulers reject such schedules
    /// separately).
    pub fn power(&self, rate: f64) -> f64 {
        debug_assert!(rate >= 0.0, "negative rate {rate}");
        if rate <= 0.0 {
            0.0
        } else {
            self.sigma + self.dynamic_power(rate)
        }
    }

    /// Only the rate-dependent term `mu * rate^alpha` (zero at rate zero).
    pub fn dynamic_power(&self, rate: f64) -> f64 {
        if rate <= 0.0 {
            0.0
        } else {
            self.mu * pow_fast(rate, self.alpha)
        }
    }

    /// Energy consumed by transmitting at `rate` for a duration `dt`.
    pub fn energy(&self, rate: f64, dt: f64) -> f64 {
        debug_assert!(dt >= 0.0, "negative duration {dt}");
        self.power(rate) * dt
    }

    /// The *power rate* of Definition 3: energy spent per unit of traffic,
    /// `f(x) / x`, for `x > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn power_rate(&self, rate: f64) -> f64 {
        assert!(rate > 0.0, "power rate is undefined at rate {rate}");
        self.power(rate) / rate
    }

    /// The optimal operating rate `R_opt = (sigma / (mu (alpha - 1)))^(1/alpha)`
    /// of Lemma 3: the rate that minimises the power rate `f(x)/x`, ignoring
    /// the capacity constraint.
    ///
    /// With `sigma = 0` this is `0` (slower is always more efficient, the
    /// pure speed-scaling regime).
    pub fn optimal_rate(&self) -> f64 {
        (self.sigma / (self.mu * (self.alpha - 1.0))).powf(1.0 / self.alpha)
    }

    /// The optimal *achievable* operating rate: `min(R_opt, C)`.
    ///
    /// The paper notes `R_opt > C` is the realistic case; then a link should
    /// simply run at capacity when it runs at all.
    pub fn optimal_rate_capped(&self) -> f64 {
        self.optimal_rate().min(self.capacity)
    }

    /// Marginal power `d f / d x = mu * alpha * x^(alpha - 1)` for `x > 0`.
    ///
    /// This is the link derivative used by the Frank–Wolfe solver when
    /// routing commodities on marginal-cost shortest paths. The idle power
    /// `sigma` is a fixed cost and does not appear in the derivative.
    pub fn marginal_power(&self, rate: f64) -> f64 {
        if rate <= 0.0 {
            // Right derivative at 0+ of the dynamic term.
            if self.alpha > 1.0 {
                0.0
            } else {
                self.mu
            }
        } else {
            self.mu * self.alpha * pow_fast(rate, self.alpha - 1.0)
        }
    }

    /// Energy needed to ship `volume` units of data at a constant rate over a
    /// window of length `duration` (i.e. at rate `volume / duration`), the
    /// quantity minimised in Lemma 2: `mu * volume * (volume/duration)^(alpha-1)`
    /// plus idle energy `sigma * duration` if the volume is positive.
    ///
    /// # Panics
    ///
    /// Panics if `duration <= 0` while `volume > 0`.
    pub fn energy_for_volume(&self, volume: f64, duration: f64) -> f64 {
        if volume <= 0.0 {
            return 0.0;
        }
        assert!(
            duration > 0.0,
            "cannot ship {volume} units in a non-positive duration"
        );
        self.energy(volume / duration, duration)
    }

    /// Returns `true` if `rate` does not exceed the link capacity (with a
    /// small relative tolerance for floating-point round-off).
    pub fn within_capacity(&self, rate: f64) -> bool {
        rate <= self.capacity * (1.0 + 1e-9)
    }
}

/// `x^a` with multiply-only fast paths for the small integer exponents the
/// paper's experiments use (`alpha` in `{2, 3, 4}`, and `alpha - 1` in
/// `{1, 2, 3}`). The Frank–Wolfe line search evaluates the link cost tens
/// of thousands of times per interval, where a libm `powf` call dominates
/// the whole solve.
#[inline]
fn pow_fast(x: f64, a: f64) -> f64 {
    if a == 1.0 {
        x
    } else if a == 2.0 {
        x * x
    } else if a == 3.0 {
        x * x * x
    } else if a == 4.0 {
        let s = x * x;
        s * s
    } else {
        x.powf(a)
    }
}

impl fmt::Display for PowerFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f(x) = {} + {}·x^{} (C = {})",
            self.sigma, self.mu, self.alpha, self.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn pow_fast_agrees_with_powf() {
        // The multiply-only fast paths for integer exponents may differ
        // from libm `powf` by an ulp; pin them to within 1e-15 relative
        // error (and exactly at the exercised identities).
        for &a in &[1.0, 2.0, 3.0, 4.0, 2.5, 3.7] {
            for i in 0..200 {
                let x = 0.01 + (i as f64) * 0.173;
                let fast = pow_fast(x, a);
                let exact = x.powf(a);
                assert!(
                    (fast - exact).abs() <= 1e-15 * exact.abs(),
                    "pow_fast({x}, {a}) = {fast} vs powf {exact}"
                );
            }
        }
        assert_eq!(pow_fast(7.25, 1.0), 7.25);
        assert_eq!(pow_fast(3.0, 2.0), 9.0);
        assert_eq!(pow_fast(2.0, 3.0), 8.0);
        assert_eq!(pow_fast(2.0, 4.0), 16.0);
    }

    #[test]
    fn basic_evaluation() {
        let f = PowerFunction::new(2.0, 3.0, 2.0, 10.0).unwrap();
        assert_eq!(f.power(0.0), 0.0);
        assert!(close(f.power(2.0), 2.0 + 3.0 * 4.0));
        assert!(close(f.dynamic_power(2.0), 12.0));
        assert!(close(f.energy(2.0, 5.0), 5.0 * 14.0));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(
            PowerFunction::new(1.0, 1.0, 1.0, 10.0),
            Err(PowerFunctionError::NonSuperadditiveAlpha(_))
        ));
        assert!(matches!(
            PowerFunction::new(1.0, 0.0, 2.0, 10.0),
            Err(PowerFunctionError::NonPositiveMu(_))
        ));
        assert!(matches!(
            PowerFunction::new(-1.0, 1.0, 2.0, 10.0),
            Err(PowerFunctionError::NegativeSigma(_))
        ));
        assert!(matches!(
            PowerFunction::new(1.0, 1.0, 2.0, 0.0),
            Err(PowerFunctionError::InvalidCapacity(_))
        ));
        assert!(matches!(
            PowerFunction::new(1.0, 1.0, 2.0, f64::INFINITY),
            Err(PowerFunctionError::InvalidCapacity(_))
        ));
    }

    #[test]
    fn lemma3_optimal_rate() {
        // sigma = mu (alpha-1) B^alpha  =>  R_opt = B (the reduction in Thm 2).
        let b = 3.0_f64;
        let alpha = 2.5_f64;
        let mu = 1.7_f64;
        let sigma = mu * (alpha - 1.0) * b.powf(alpha);
        let f = PowerFunction::new(sigma, mu, alpha, 100.0).unwrap();
        assert!(close(f.optimal_rate(), b));
    }

    #[test]
    fn optimal_rate_minimises_power_rate() {
        let f = PowerFunction::new(5.0, 2.0, 3.0, 100.0).unwrap();
        let r = f.optimal_rate();
        let best = f.power_rate(r);
        for x in [0.1, 0.5, r * 0.9, r * 1.1, 2.0 * r, 10.0 * r] {
            assert!(
                f.power_rate(x) >= best - 1e-9,
                "power rate at {x} beats the optimum"
            );
        }
    }

    #[test]
    fn optimal_rate_capped_by_capacity() {
        let f = PowerFunction::new(1000.0, 1.0, 2.0, 5.0).unwrap();
        assert!(f.optimal_rate() > 5.0);
        assert_eq!(f.optimal_rate_capped(), 5.0);
    }

    #[test]
    fn speed_scaling_only_has_zero_optimal_rate() {
        let f = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        assert_eq!(f.optimal_rate(), 0.0);
        assert_eq!(f.sigma(), 0.0);
    }

    #[test]
    fn marginal_power_matches_finite_difference() {
        let f = PowerFunction::new(4.0, 2.0, 3.0, 10.0).unwrap();
        let x = 1.7;
        let h = 1e-6;
        let fd = (f.dynamic_power(x + h) - f.dynamic_power(x - h)) / (2.0 * h);
        assert!((f.marginal_power(x) - fd).abs() < 1e-4);
    }

    #[test]
    fn energy_for_volume_matches_lemma2_formula() {
        // Phi_g = mu * w * s^(alpha-1) with s = w / duration (sigma = 0).
        let f = PowerFunction::speed_scaling_only(2.0, 3.0, 100.0);
        let w = 6.0;
        let d = 2.0;
        let s: f64 = w / d;
        assert!(close(f.energy_for_volume(w, d), 2.0 * w * s.powf(2.0)));
        assert_eq!(f.energy_for_volume(0.0, 5.0), 0.0);
    }

    #[test]
    fn energy_for_volume_is_convex_in_rate() {
        // Slower transmission (longer duration) must never cost more energy
        // when sigma = 0 (Lemma 2).
        let f = PowerFunction::speed_scaling_only(1.0, 2.0, 100.0);
        let w = 10.0;
        let e_fast = f.energy_for_volume(w, 1.0);
        let e_slow = f.energy_for_volume(w, 4.0);
        assert!(e_slow < e_fast);
    }

    #[test]
    fn superadditivity_of_power() {
        // f(x1 + x2) >= f(x1) + f(x2) - sigma (dynamic part superadditive).
        let f = PowerFunction::new(1.0, 2.0, 2.0, 100.0).unwrap();
        let (x1, x2) = (1.5, 2.5);
        assert!(f.dynamic_power(x1 + x2) >= f.dynamic_power(x1) + f.dynamic_power(x2));
    }

    #[test]
    fn within_capacity_tolerance() {
        let f = PowerFunction::new(1.0, 1.0, 2.0, 10.0).unwrap();
        assert!(f.within_capacity(10.0));
        assert!(f.within_capacity(10.0 + 1e-12));
        assert!(!f.within_capacity(10.1));
    }

    #[test]
    fn display_mentions_all_parameters() {
        let f = PowerFunction::new(1.0, 2.0, 3.0, 4.0).unwrap();
        let s = f.to_string();
        for token in ["1", "2", "3", "4"] {
            assert!(s.contains(token), "{s} should mention {token}");
        }
    }

    #[test]
    fn with_sigma_replaces_idle_power() {
        let f = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        let g = f.with_sigma(5.0).unwrap();
        assert_eq!(g.sigma(), 5.0);
        assert_eq!(g.mu(), 1.0);
        assert!(f.with_sigma(-1.0).is_err());
    }
}
