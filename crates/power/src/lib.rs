//! Link power model for the deadline-constrained network energy saving
//! problem.
//!
//! The paper models every link with the combined power-down / speed-scaling
//! power function (its Eq. (1)):
//!
//! ```text
//! f(x) = 0                      if x = 0
//! f(x) = sigma + mu * x^alpha   if 0 < x <= C,  alpha > 1
//! ```
//!
//! where `sigma` is the idle power needed just to keep the link up, the
//! superadditive term `mu * x^alpha` is the rate-dependent (speed-scaling)
//! power, and `C` is the link capacity. A link may be powered down (zero
//! power) only if it carries no traffic for the whole horizon.
//!
//! This crate provides:
//!
//! * [`PowerFunction`] — the function itself plus the quantities the paper
//!   derives from it (optimal operating rate `R_opt` of Lemma 3, the power
//!   rate `f(x)/x`, marginal cost for the Frank–Wolfe solver).
//! * [`RateProfile`] — a piecewise-constant rate over time, with exact
//!   integration of both volume and energy.
//! * [`EnergyMeter`] — per-link energy accounting over a whole schedule,
//!   split into idle and dynamic energy, as needed to evaluate `Phi_f`.
//!
//! # Example
//!
//! ```
//! use dcn_power::PowerFunction;
//!
//! // The paper's Fig. 2 uses f(x) = x^2 (sigma = 0, mu = 1, alpha = 2) and
//! // f(x) = x^4 on identical links.
//! let f = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
//! assert_eq!(f.power(3.0), 9.0);
//! assert_eq!(f.power(0.0), 0.0);
//!
//! // With idle power the optimal operating rate of Lemma 3 is
//! // (sigma / (mu (alpha - 1)))^(1/alpha).
//! let f = PowerFunction::new(8.0, 1.0, 2.0, 10.0).unwrap();
//! assert!((f.optimal_rate() - 8f64.sqrt()).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

mod function;
mod meter;
mod profile;

pub use function::{PowerFunction, PowerFunctionError};
pub use meter::{EnergyBreakdown, EnergyMeter};
pub use profile::RateProfile;
