//! The parallel experiment runner and the CLI shared by every benchmark
//! binary.
//!
//! The sweeps in this crate are embarrassingly parallel: every
//! `(seed, flow-count)` instance is independent and internally seeded, so
//! [`run_indexed`] fans instances out across the scoped worker pool of
//! [`dcn_core::pool`] and collects results **in input order**, which makes
//! the output of a run — and therefore its JSON report — independent of the
//! thread count. That is the determinism contract the CI relies on: same
//! seed ⇒ byte-identical `BENCH_*.json` regardless of `--threads` *and*
//! `--solver-threads` (instance sharding and interval-parallel solving
//! share one pool implementation and compose without oversubscription: a
//! solver pool nested under an instance worker runs inline).

use std::path::PathBuf;
use std::time::Instant;

use crate::report::ExperimentReport;

pub use dcn_core::pool::{default_threads, run_indexed, run_indexed_with};

/// Runs a closure and measures its wall-clock time in seconds.
pub fn timed<T>(work: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = work();
    (value, start.elapsed().as_secs_f64())
}

/// The command line shared by all benchmark binaries.
///
/// ```text
/// --runs N        seeds averaged per sweep point
/// --seeds N       rounding seeds (ablation_rounding)
/// --flows N       workload size for the single-size ablations
/// --step N        flow-count step of the fig2 sweep
/// --threads N     worker threads for instance sharding (default: all
///                 cores)
/// --solver-threads N
///                 interval-parallel solver threads *inside* each
///                 instance (default 1 = sequential solves); artifacts
///                 are byte-identical at any value, and a solver pool
///                 nested under an instance worker runs inline, so
///                 --threads x --solver-threads never oversubscribes
/// --algorithms L  comma-separated registry names to compare (primary,
///                 reference, extras), e.g. dcfsr,sp-mcf,ecmp,greedy;
///                 defaults to the experiment's own selection
/// --load L        comma-separated load factors swept by the `online`
///                 binary, e.g. 0.5,1,2,4
/// --rates L       comma-separated link failure rates (failures per link
///                 per unit time) swept by the `failures` binary, e.g.
///                 0,0.01,0.05; 0 means the link never fails
/// --downtime D    mean outage duration of the `failures` binary's
///                 alternating-renewal process (positive, finite)
/// --policies L    comma-separated online-policy registry names compared
///                 by the `online` binary, e.g. resolve,edf,hybrid;
///                 defaults to the binary's own selection
/// --epoch W       arrival-batching window of the `online` binary in
///                 release-time units (0 disables batching); supplying
///                 the flag also turns warm starts on
/// --shards N      pod-shard worker threads of the `online` binary; the
///                 artifact is byte-identical at any N (supplying the
///                 flag also turns warm starts on)
/// --shard-workers N
///                 worker threads of the `serve` bench's in-process
///                 daemon; the artifact is byte-identical at any N
/// --queue-depth N per-worker queue bound of the `serve` bench's daemon
/// --admission R   admission rule of the `serve` bench's daemon:
///                 admit-all | reject-infeasible
/// --quick         CI smoke mode: smallest topology, one run per point
/// --full          paper-scale mode (fig2: 10 runs, step 20)
/// --small         swap the k=8 fat-tree for k=4 (fig2)
/// --json-out [P]  write the JSON report to P (default BENCH_<name>.json)
/// --timings       embed wall-clock seconds in the JSON report; timing
///                 varies run to run, so this intentionally opts out of
///                 the byte-determinism contract
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentCli {
    /// Name of the experiment (used for the default JSON path).
    pub experiment: String,
    /// `--runs N`: number of seeds averaged per sweep point.
    pub runs: Option<usize>,
    /// `--seeds N`: number of rounding seeds (`ablation_rounding`).
    pub seeds: Option<u64>,
    /// `--flows N`: workload size for the single-size ablations.
    pub flows: Option<usize>,
    /// `--step N`: flow-count step of the `fig2` sweep.
    pub step: Option<usize>,
    /// `--threads N`: worker-pool size; defaults to every available core.
    pub threads: usize,
    /// `--solver-threads N`: interval-parallel solver threads inside each
    /// instance; defaults to 1 (sequential solves, bit-for-bit the
    /// historical behaviour).
    pub solver_threads: usize,
    /// `--algorithms a,b,...`: registry names to compare (primary,
    /// reference, extras); `None` keeps the experiment's default.
    pub algorithms: Option<Vec<String>>,
    /// `--load a,b,...`: load factors for the `online` sweep; `None` keeps
    /// the binary's default grid.
    pub load: Option<Vec<f64>>,
    /// `--rates a,b,...`: link failure rates (failures per link per unit
    /// time) for the `failures` sweep; `None` keeps the binary's default
    /// grid. A rate of `0` is valid and means "no failures" (the static
    /// baseline point).
    pub rates: Option<Vec<f64>>,
    /// `--downtime D`: mean outage duration of the `failures` binary's
    /// failure process; `None` keeps the binary's default.
    pub downtime: Option<f64>,
    /// `--policies a,b,...`: online-policy registry names compared by the
    /// `online` binary (a single name is fine — unlike `--algorithms`,
    /// there is no primary/reference pairing); `None` keeps the binary's
    /// default selection.
    pub policies: Option<Vec<String>>,
    /// `--epoch W`: arrival-batching window of the `online` binary; `None`
    /// keeps batching (and warm starts) off.
    pub epoch: Option<f64>,
    /// `--shards N`: pod-shard worker threads of the `online` binary;
    /// `None` keeps sharding (and warm starts) off.
    pub shards: Option<usize>,
    /// `--shard-workers N`: worker threads of the `serve` bench's
    /// in-process daemon; `None` keeps the binary's default (1).
    pub shard_workers: Option<usize>,
    /// `--queue-depth N`: per-worker queue bound of the `serve` bench's
    /// daemon; `None` keeps the daemon's default.
    pub queue_depth: Option<usize>,
    /// `--admission R`: admission rule of the `serve` bench's daemon;
    /// `None` keeps the binary's default (`admit-all`).
    pub admission: Option<String>,
    /// `--quick`: CI smoke mode (smallest topology, one run per point).
    pub quick: bool,
    /// `--full`: paper-scale mode.
    pub full: bool,
    /// `--small`: swap the k=8 fat-tree for the k=4 one (`fig2`).
    pub small: bool,
    /// `--timings`: embed wall-clock seconds in the JSON report.
    pub timings: bool,
    /// `--json-out [PATH]`: where to write the JSON report, if anywhere.
    pub json_out: Option<PathBuf>,
}

/// The flags [`ExperimentCli::from_args`] accepts a value for.
const VALUE_FLAGS: &[&str] = &[
    "--runs",
    "--seeds",
    "--flows",
    "--step",
    "--threads",
    "--solver-threads",
    "--algorithms",
    "--load",
    "--rates",
    "--downtime",
    "--policies",
    "--epoch",
    "--shards",
    "--shard-workers",
    "--queue-depth",
    "--admission",
];

/// The boolean flags [`ExperimentCli::from_args`] accepts.
const SWITCH_FLAGS: &[&str] = &["--quick", "--full", "--small", "--timings"];

impl ExperimentCli {
    /// Parses the process's command line, exiting with usage on errors.
    pub fn parse(experiment: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::from_args(experiment, &args) {
            Ok(cli) => cli,
            Err(message) => {
                eprintln!("{experiment}: {message}");
                eprintln!(
                    "usage: {experiment} [--runs N] [--seeds N] [--flows N] [--step N] \
                     [--threads N] [--solver-threads N] [--algorithms a,b,...] \
                     [--load a,b,...] [--rates a,b,...] [--downtime D] \
                     [--policies a,b,...] [--epoch W] [--shards N] \
                     [--shard-workers N] [--queue-depth N] [--admission R] \
                     [--quick] [--full] [--small] [--json-out [PATH]] [--timings]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument slice.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags, missing or malformed values.
    pub fn from_args(experiment: &str, args: &[String]) -> Result<Self, String> {
        let mut cli = Self {
            experiment: experiment.to_string(),
            runs: None,
            seeds: None,
            flows: None,
            step: None,
            threads: default_threads(),
            solver_threads: 1,
            algorithms: None,
            load: None,
            rates: None,
            downtime: None,
            policies: None,
            epoch: None,
            shards: None,
            shard_workers: None,
            queue_depth: None,
            admission: None,
            quick: false,
            full: false,
            small: false,
            timings: false,
            json_out: None,
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if flag == "--json-out" {
                // The path is optional: `--json-out --quick` and a trailing
                // `--json-out` both mean "use the default path".
                match args.get(i + 1) {
                    Some(path) if !path.starts_with("--") => {
                        cli.json_out = Some(PathBuf::from(path));
                        i += 2;
                    }
                    _ => {
                        cli.json_out = Some(cli.default_json_path());
                        i += 1;
                    }
                }
            } else if VALUE_FLAGS.contains(&flag) {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} expects a value"))?;
                match flag {
                    "--runs" => cli.runs = Some(parse_value(flag, value)?),
                    "--seeds" => cli.seeds = Some(parse_value(flag, value)?),
                    "--flows" => cli.flows = Some(parse_value(flag, value)?),
                    "--step" => cli.step = Some(parse_value(flag, value)?),
                    "--threads" => cli.threads = parse_value(flag, value)?,
                    "--solver-threads" => cli.solver_threads = parse_value(flag, value)?,
                    "--algorithms" => {
                        let names: Vec<String> = value
                            .split(',')
                            .map(str::trim)
                            .filter(|n| !n.is_empty())
                            .map(str::to_string)
                            .collect();
                        if names.len() < 2 {
                            return Err(format!(
                                "--algorithms expects at least a primary and a reference \
                                 (comma-separated), got {value:?}"
                            ));
                        }
                        cli.algorithms = Some(names);
                    }
                    "--load" => {
                        let loads = value
                            .split(',')
                            .map(str::trim)
                            .filter(|l| !l.is_empty())
                            .map(|l| parse_value::<f64>(flag, l))
                            .collect::<Result<Vec<f64>, String>>()?;
                        if loads.is_empty() {
                            return Err(format!(
                                "--load expects comma-separated load factors, got {value:?}"
                            ));
                        }
                        if let Some(bad) = loads.iter().find(|l| !l.is_finite() || **l <= 0.0) {
                            return Err(format!(
                                "--load factors must be positive and finite, got {bad}"
                            ));
                        }
                        cli.load = Some(loads);
                    }
                    "--rates" => {
                        let rates = value
                            .split(',')
                            .map(str::trim)
                            .filter(|r| !r.is_empty())
                            .map(|r| parse_value::<f64>(flag, r))
                            .collect::<Result<Vec<f64>, String>>()?;
                        if rates.is_empty() {
                            return Err(format!(
                                "--rates expects comma-separated failure rates, got {value:?}"
                            ));
                        }
                        if let Some(bad) = rates.iter().find(|r| !r.is_finite() || **r < 0.0) {
                            return Err(format!(
                                "--rates must be non-negative and finite, got {bad}"
                            ));
                        }
                        cli.rates = Some(rates);
                    }
                    "--downtime" => {
                        let downtime: f64 = parse_value(flag, value)?;
                        if !downtime.is_finite() || downtime <= 0.0 {
                            return Err(format!(
                                "--downtime expects a positive finite duration, got {value:?}"
                            ));
                        }
                        cli.downtime = Some(downtime);
                    }
                    "--epoch" => {
                        let window: f64 = parse_value(flag, value)?;
                        if !window.is_finite() || window < 0.0 {
                            return Err(format!(
                                "--epoch expects a finite non-negative window, got {value:?}"
                            ));
                        }
                        cli.epoch = Some(window);
                    }
                    "--shards" => cli.shards = Some(parse_value(flag, value)?),
                    "--shard-workers" => cli.shard_workers = Some(parse_value(flag, value)?),
                    "--queue-depth" => cli.queue_depth = Some(parse_value(flag, value)?),
                    "--admission" => {
                        if !["admit-all", "reject-infeasible"].contains(&value.as_str()) {
                            return Err(format!(
                                "--admission expects admit-all or reject-infeasible, got {value:?}"
                            ));
                        }
                        cli.admission = Some(value.clone());
                    }
                    "--policies" => {
                        let names: Vec<String> = value
                            .split(',')
                            .map(str::trim)
                            .filter(|n| !n.is_empty())
                            .map(str::to_string)
                            .collect();
                        if names.is_empty() {
                            return Err(format!(
                                "--policies expects comma-separated policy names, got {value:?}"
                            ));
                        }
                        cli.policies = Some(names);
                    }
                    _ => unreachable!("flag is in VALUE_FLAGS"),
                }
                i += 2;
            } else if SWITCH_FLAGS.contains(&flag) {
                match flag {
                    "--quick" => cli.quick = true,
                    "--full" => cli.full = true,
                    "--small" => cli.small = true,
                    "--timings" => cli.timings = true,
                    _ => unreachable!("flag is in SWITCH_FLAGS"),
                }
                i += 1;
            } else {
                return Err(format!("unknown flag {flag:?}"));
            }
        }
        if cli.threads == 0 {
            return Err("--threads must be at least 1".to_string());
        }
        if cli.solver_threads == 0 {
            return Err("--solver-threads must be at least 1".to_string());
        }
        // Zero sweep sizes produce empty (schema-invalid) artifacts, NaN
        // averages, or a step_by(0) panic downstream; fail fast instead.
        for (flag, value) in [
            ("--runs", cli.runs),
            ("--flows", cli.flows),
            ("--step", cli.step),
        ] {
            if value == Some(0) {
                return Err(format!("{flag} must be at least 1"));
            }
        }
        if cli.seeds == Some(0) {
            return Err("--seeds must be at least 1".to_string());
        }
        if cli.shards == Some(0) {
            return Err("--shards must be at least 1".to_string());
        }
        if cli.shard_workers == Some(0) {
            return Err("--shard-workers must be at least 1".to_string());
        }
        if cli.queue_depth == Some(0) {
            return Err("--queue-depth must be at least 1".to_string());
        }
        Ok(cli)
    }

    /// The conventional artifact path: `BENCH_<experiment>.json`.
    pub fn default_json_path(&self) -> PathBuf {
        PathBuf::from(format!("BENCH_{}.json", self.experiment))
    }

    /// Writes the report to `--json-out` (when given), embedding the
    /// measured wall-clock only under `--timings`, and prints where it
    /// went.
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written — the artifact is the point
    /// of the run, so failing loudly beats a silent miss.
    pub fn emit(&self, report: &ExperimentReport, elapsed_seconds: f64) {
        eprintln!(
            "[{}] {} instance(s) on {} thread(s) in {:.2}s",
            self.experiment,
            report.instances.len(),
            self.threads,
            elapsed_seconds
        );
        let Some(path) = &self.json_out else {
            return;
        };
        let mut artifact = report.clone();
        artifact.wall_clock_seconds = self.timings.then_some(elapsed_seconds);
        artifact
            .write(path)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("[{}] report written to {}", self.experiment, path.display());
    }
}

/// Parses one flag value with a contextual error message.
fn parse_value<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects a number, got {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_indexed_is_reexported_from_the_core_pool() {
        // The pool itself is tested in `dcn_core::pool`; this pins the
        // delegation so the harness and the solvers share one
        // implementation (and therefore one nested-execution guard).
        assert_eq!(run_indexed(5, 3, |i| i + 1), vec![1, 2, 3, 4, 5]);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn cli_parses_the_shared_flags() {
        let cli = ExperimentCli::from_args(
            "fig2",
            &args(&[
                "--runs",
                "5",
                "--step",
                "20",
                "--threads",
                "3",
                "--quick",
                "--json-out",
                "out.json",
            ]),
        )
        .unwrap();
        assert_eq!(cli.runs, Some(5));
        assert_eq!(cli.step, Some(20));
        assert_eq!(cli.threads, 3);
        assert!(cli.quick && !cli.full);
        assert_eq!(cli.json_out, Some(PathBuf::from("out.json")));
    }

    #[test]
    fn cli_parses_the_algorithms_selector() {
        let cli = ExperimentCli::from_args("fig2", &args(&["--algorithms", "dcfsr,sp-mcf,ecmp"]))
            .unwrap();
        assert_eq!(
            cli.algorithms,
            Some(vec![
                "dcfsr".to_string(),
                "sp-mcf".to_string(),
                "ecmp".to_string()
            ])
        );
        // A single name cannot form a primary/reference pair.
        assert!(ExperimentCli::from_args("fig2", &args(&["--algorithms", "dcfsr"])).is_err());
        assert!(ExperimentCli::from_args("fig2", &args(&["--algorithms"])).is_err());
    }

    #[test]
    fn cli_parses_the_load_sweep() {
        let cli = ExperimentCli::from_args("online", &args(&["--load", "0.5,1,2,4"])).unwrap();
        assert_eq!(cli.load, Some(vec![0.5, 1.0, 2.0, 4.0]));
        // Non-positive, non-finite and empty lists are rejected.
        assert!(ExperimentCli::from_args("online", &args(&["--load", "0"])).is_err());
        assert!(ExperimentCli::from_args("online", &args(&["--load", "-1"])).is_err());
        assert!(ExperimentCli::from_args("online", &args(&["--load", "nan"])).is_err());
        assert!(ExperimentCli::from_args("online", &args(&["--load", ","])).is_err());
        assert!(ExperimentCli::from_args("online", &args(&["--load"])).is_err());
    }

    #[test]
    fn cli_parses_the_failure_sweep_knobs() {
        let cli = ExperimentCli::from_args(
            "failures",
            &args(&["--rates", "0,0.01,0.05", "--downtime", "2.5"]),
        )
        .unwrap();
        assert_eq!(cli.rates, Some(vec![0.0, 0.01, 0.05]));
        assert_eq!(cli.downtime, Some(2.5));
        // Rate 0 is the static baseline; negatives and NaN are rejected.
        assert!(ExperimentCli::from_args("failures", &args(&["--rates", "-0.1"])).is_err());
        assert!(ExperimentCli::from_args("failures", &args(&["--rates", "nan"])).is_err());
        assert!(ExperimentCli::from_args("failures", &args(&["--rates", ","])).is_err());
        assert!(ExperimentCli::from_args("failures", &args(&["--downtime", "0"])).is_err());
        assert!(ExperimentCli::from_args("failures", &args(&["--downtime", "-1"])).is_err());
        assert!(ExperimentCli::from_args("failures", &args(&["--downtime", "inf"])).is_err());
    }

    #[test]
    fn cli_parses_the_policies_selector() {
        let cli = ExperimentCli::from_args("online", &args(&["--policies", "resolve,edf,hybrid"]))
            .unwrap();
        assert_eq!(
            cli.policies,
            Some(vec![
                "resolve".to_string(),
                "edf".to_string(),
                "hybrid".to_string()
            ])
        );
        // A single policy is a valid selection (no primary/reference pair).
        let cli = ExperimentCli::from_args("online", &args(&["--policies", "hybrid"])).unwrap();
        assert_eq!(cli.policies, Some(vec!["hybrid".to_string()]));
        assert!(ExperimentCli::from_args("online", &args(&["--policies", ","])).is_err());
        assert!(ExperimentCli::from_args("online", &args(&["--policies"])).is_err());
    }

    #[test]
    fn cli_parses_the_online_engine_knobs() {
        let cli = ExperimentCli::from_args("online", &args(&["--epoch", "0.05", "--shards", "4"]))
            .unwrap();
        assert_eq!(cli.epoch, Some(0.05));
        assert_eq!(cli.shards, Some(4));
        // Defaults keep both knobs off.
        let cli = ExperimentCli::from_args("online", &args(&[])).unwrap();
        assert_eq!(cli.epoch, None);
        assert_eq!(cli.shards, None);
        // An epoch of zero is valid (explicitly "no batching, warm only").
        let cli = ExperimentCli::from_args("online", &args(&["--epoch", "0"])).unwrap();
        assert_eq!(cli.epoch, Some(0.0));
        // Malformed values are rejected.
        assert!(ExperimentCli::from_args("online", &args(&["--epoch", "-1"])).is_err());
        assert!(ExperimentCli::from_args("online", &args(&["--epoch", "nan"])).is_err());
        assert!(ExperimentCli::from_args("online", &args(&["--epoch"])).is_err());
        assert!(ExperimentCli::from_args("online", &args(&["--shards", "0"])).is_err());
        assert!(ExperimentCli::from_args("online", &args(&["--shards", "two"])).is_err());
    }

    #[test]
    fn cli_parses_solver_threads() {
        let cli = ExperimentCli::from_args("fig2", &args(&["--solver-threads", "4"])).unwrap();
        assert_eq!(cli.solver_threads, 4);
        // The default keeps solves sequential regardless of --threads.
        let cli = ExperimentCli::from_args("fig2", &args(&["--threads", "8"])).unwrap();
        assert_eq!(cli.solver_threads, 1);
        assert!(ExperimentCli::from_args("fig2", &args(&["--solver-threads", "0"])).is_err());
        assert!(ExperimentCli::from_args("fig2", &args(&["--solver-threads"])).is_err());
    }

    #[test]
    fn cli_json_out_path_is_optional() {
        let cli = ExperimentCli::from_args("fig2", &args(&["--json-out", "--quick"])).unwrap();
        assert_eq!(cli.json_out, Some(PathBuf::from("BENCH_fig2.json")));
        assert!(cli.quick);

        let cli = ExperimentCli::from_args("fig2", &args(&["--json-out"])).unwrap();
        assert_eq!(cli.json_out, Some(PathBuf::from("BENCH_fig2.json")));
    }

    #[test]
    fn cli_rejects_unknown_and_malformed_flags() {
        assert!(ExperimentCli::from_args("x", &args(&["--frobnicate"])).is_err());
        assert!(ExperimentCli::from_args("x", &args(&["--runs"])).is_err());
        assert!(ExperimentCli::from_args("x", &args(&["--runs", "many"])).is_err());
        assert!(ExperimentCli::from_args("x", &args(&["--threads", "0"])).is_err());
        for flag in ["--runs", "--seeds", "--flows", "--step"] {
            assert!(
                ExperimentCli::from_args("x", &args(&[flag, "0"])).is_err(),
                "{flag} 0 must be rejected"
            );
        }
    }

    #[test]
    fn timed_measures_something() {
        let (value, seconds) = timed(|| 7);
        assert_eq!(value, 7);
        assert!(seconds >= 0.0);
    }
}
