//! Ablation: sensitivity of Random-Schedule to the randomized-rounding
//! budget. The paper notes that capacity violations are unlikely but
//! suggests re-drawing until a feasible rounding is found; this experiment
//! measures how many draws that takes in practice and how much the energy
//! varies across seeds.
//!
//! The `(budget, rounding-seed)` grid shares one interval relaxation
//! (solved once, up front) and fans the rounding draws out across the
//! worker pool.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin ablation_rounding -- \
//!     [--flows N] [--seeds S] [--threads T] [--quick] [--json-out [PATH]]
//! ```

use dcn_bench::report::{ExperimentReport, InstanceRecord};
use dcn_bench::runner::{run_indexed, timed, ExperimentCli};
use dcn_bench::{harness_fmcf_config, print_table};
use dcn_core::{Algorithm, RandomSchedule, RandomScheduleConfig, RoutedMcf, SolverContext};
use dcn_flow::workload::UniformWorkload;
use dcn_power::PowerFunction;
use dcn_sim::Simulator;
use dcn_topology::builders;

const BUDGETS: [usize; 3] = [1, 5, 25];

fn main() {
    let cli = ExperimentCli::parse("ablation_rounding");
    let flows: usize = cli.flows.unwrap_or(if cli.quick { 30 } else { 60 });
    let seeds: u64 = cli.seeds.unwrap_or(if cli.quick { 3 } else { 8 });

    let topo = builders::fat_tree(4);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let workload = UniformWorkload::paper_defaults(flows, 99);
    let flow_set = workload.generate(topo.hosts()).expect("workload generates");

    println!(
        "rounding sensitivity on {} with {} flows ({} rounding seeds)\n",
        topo.name, flows, seeds
    );

    let jobs: Vec<(usize, u64)> = BUDGETS
        .iter()
        .flat_map(|&budget| (0..seeds).map(move |seed| (budget, seed)))
        .collect();
    // The timed region covers the whole solve: the shared interval
    // relaxation and SP+MCF reference (the expensive serial prefix) plus
    // the parallel rounding fan-out.
    let ((relaxation, sp_sim, outcomes), elapsed_seconds) = timed(|| {
        // The shared interval relaxation and the SP+MCF reference are the
        // expensive serial prefix, solved once on one context; the rounding
        // draws (cheap, independent) fan out across the worker pool.
        let mut ctx = SolverContext::from_network(&topo.network).expect("fat-tree validates");
        ctx.set_parallelism(dcn_core::ParallelConfig::with_threads(cli.solver_threads));
        let relaxation = ctx
            .relax(&flow_set, &power, &harness_fmcf_config())
            .expect("relaxation succeeds on connected instances");
        let sp = RoutedMcf::shortest_path()
            .solve(&mut ctx, &flow_set, &power)
            .expect("SP+MCF succeeds");
        let simulator = Simulator::new(power);
        let sp_sim = simulator
            .run_ctx(
                &ctx,
                &flow_set,
                sp.schedule.as_ref().expect("sp-mcf schedules"),
            )
            .summary();
        let outcomes = run_indexed(jobs.len(), cli.threads, |i| {
            let (budget, seed) = jobs[i];
            let outcome = RandomSchedule::new(RandomScheduleConfig {
                fmcf: harness_fmcf_config(),
                max_rounding_attempts: budget,
                seed,
                ..Default::default()
            })
            .run_with_relaxation(&topo.network, &flow_set, &power, &relaxation)
            .expect("rounding succeeds");
            let rs_sim = simulator
                .run_ctx(&ctx, &flow_set, &outcome.schedule)
                .summary();
            (
                outcome.schedule.energy(&power).total(),
                outcome.attempts,
                outcome.capacity_excess,
                rs_sim,
            )
        });
        (relaxation, sp_sim, outcomes)
    });

    let mut report = ExperimentReport::new("ablation_rounding", &topo.name);
    report.workload = Some(workload);
    let mut coordinates = Vec::with_capacity(jobs.len());
    for (&(budget, seed), &(energy, attempts, excess, rs_sim)) in jobs.iter().zip(&outcomes) {
        report.instances.push(InstanceRecord {
            label: format!("budget={budget} seed={seed}"),
            flows,
            seed,
            alpha: power.alpha(),
            lower_bound: relaxation.lower_bound,
            rs_energy: energy,
            sp_energy: sp_sim.energy,
            rs_normalized: energy / relaxation.lower_bound,
            sp_normalized: sp_sim.energy / relaxation.lower_bound,
            deadline_misses: rs_sim.deadline_misses + sp_sim.deadline_misses,
            rs_capacity_excess: excess,
            rs_sim: Some(rs_sim),
            sp_sim: Some(sp_sim),
            solve_wall_ms: None,
            intervals_per_second: None,
            requests_per_second: None,
            p99_latency_ms: None,
            extra: vec![
                ("budget".to_string(), budget as f64),
                ("attempts".to_string(), attempts as f64),
            ],
        });
        coordinates.push(("budget".to_string(), budget as f64));
    }
    report.aggregate_points(&coordinates);

    let rows: Vec<Vec<String>> = BUDGETS
        .iter()
        .map(|&budget| {
            let records: Vec<&InstanceRecord> = report
                .instances
                .iter()
                .filter(|r| r.extra("budget") == Some(budget as f64))
                .collect();
            let energies: Vec<f64> = records.iter().map(|r| r.rs_normalized).collect();
            let mean = energies.iter().sum::<f64>() / energies.len() as f64;
            let max = energies.iter().cloned().fold(f64::MIN, f64::max);
            let min = energies.iter().cloned().fold(f64::MAX, f64::min);
            let draws: f64 = records
                .iter()
                .filter_map(|r| r.extra("attempts"))
                .sum::<f64>()
                / records.len() as f64;
            let worst_excess = records
                .iter()
                .map(|r| r.rs_capacity_excess)
                .fold(0.0, f64::max);
            vec![
                budget.to_string(),
                format!("{mean:.3}"),
                format!("{min:.3}"),
                format!("{max:.3}"),
                format!("{draws:.2}"),
                format!("{worst_excess:.3}"),
            ]
        })
        .collect();
    print_table(
        "Rounding-budget sensitivity (energies normalised by LB)",
        &["budget", "mean", "min", "max", "avg draws", "worst excess"],
        &rows,
    );
    println!("With the paper's Fig. 2 workload the first draw is almost always feasible;");
    println!("a larger budget only matters when link capacities are tight.");
    cli.emit(&report, elapsed_seconds);
}
