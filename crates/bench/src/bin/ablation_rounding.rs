//! Ablation: sensitivity of Random-Schedule to the randomized-rounding
//! budget. The paper notes that capacity violations are unlikely but
//! suggests re-drawing until a feasible rounding is found; this experiment
//! measures how many draws that takes in practice and how much the energy
//! varies across seeds.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin ablation_rounding -- [--flows N] [--seeds S]
//! ```

use dcn_bench::{arg_value, harness_fmcf_config, print_table};
use dcn_core::dcfsr::{RandomSchedule, RandomScheduleConfig};
use dcn_core::relaxation::interval_relaxation;
use dcn_flow::workload::UniformWorkload;
use dcn_power::PowerFunction;
use dcn_topology::builders;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flows: usize = arg_value(&args, "--flows").unwrap_or(60);
    let seeds: u64 = arg_value(&args, "--seeds").unwrap_or(8);

    let topo = builders::fat_tree(4);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let flow_set = UniformWorkload::paper_defaults(flows, 99)
        .generate(topo.hosts())
        .expect("workload generates");
    let relaxation = interval_relaxation(&topo.network, &flow_set, &power, &harness_fmcf_config());

    println!(
        "rounding sensitivity on {} with {} flows ({} rounding seeds)\n",
        topo.name, flows, seeds
    );

    let mut rows = Vec::new();
    for attempts in [1usize, 5, 25] {
        let mut energies = Vec::new();
        let mut total_attempts = 0usize;
        let mut worst_excess: f64 = 0.0;
        for seed in 0..seeds {
            let outcome = RandomSchedule::new(RandomScheduleConfig {
                fmcf: harness_fmcf_config(),
                max_rounding_attempts: attempts,
                seed,
                ..Default::default()
            })
            .run_with_relaxation(&topo.network, &flow_set, &power, &relaxation)
            .expect("rounding succeeds");
            energies.push(outcome.schedule.energy(&power).total() / relaxation.lower_bound);
            total_attempts += outcome.attempts;
            worst_excess = worst_excess.max(outcome.capacity_excess);
        }
        let mean = energies.iter().sum::<f64>() / energies.len() as f64;
        let max = energies.iter().cloned().fold(f64::MIN, f64::max);
        let min = energies.iter().cloned().fold(f64::MAX, f64::min);
        rows.push(vec![
            attempts.to_string(),
            format!("{:.3}", mean),
            format!("{:.3}", min),
            format!("{:.3}", max),
            format!("{:.2}", total_attempts as f64 / seeds as f64),
            format!("{:.3}", worst_excess),
        ]);
    }
    print_table(
        "Rounding-budget sensitivity (energies normalised by LB)",
        &["budget", "mean", "min", "max", "avg draws", "worst excess"],
        &rows,
    );
    println!("With the paper's Fig. 2 workload the first draw is almost always feasible;");
    println!("a larger budget only matters when link capacities are tight.");
}
