//! `scaling` — the pipeline's cost and quality at growing fat-tree scale.
//!
//! Sweeps the full DCFSR pipeline (relaxation lower bound, Random-Schedule,
//! SP+MCF, simulator verification) over fat-trees of increasing size and
//! growing flow counts, producing the standard `BENCH_scaling.json`
//! artifact. The energy ratios stay flat while the instance size grows —
//! the artifact's role in the perf trajectory is the *feasible envelope*:
//! after the CSR graph core + arena-reuse engine refactor, fat-tree k = 16
//! (1024 hosts) instances run in seconds on one core, where the
//! adjacency-list implementation was impractical.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin scaling                  # k=4 and k=8
//! cargo run --release -p dcn-bench --bin scaling -- --quick       # CI smoke: k=4
//! cargo run --release -p dcn-bench --bin scaling -- --full        # adds k=16
//! cargo run --release -p dcn-bench --bin scaling -- --runs 3 --json-out --timings
//! ```
//!
//! `--runs` controls seeds per sweep point; `--timings` embeds wall-clock
//! seconds (opting out of byte-determinism, as everywhere else).

use dcn_bench::runner::ExperimentCli;
use dcn_bench::{fig2_power_functions, print_table, Experiment, InstanceInput, InstanceSpec};
use dcn_topology::builders;

fn main() {
    let cli = ExperimentCli::parse("scaling");
    let runs: usize = cli.runs.unwrap_or(if cli.quick { 1 } else { 2 });
    // One fat-tree per sweep group, smallest first.
    let ks: &[usize] = if cli.quick {
        &[4]
    } else if cli.full {
        &[4, 8, 16]
    } else {
        &[4, 8]
    };
    let topologies: Vec<_> = ks.iter().map(|&k| builders::fat_tree(k)).collect();
    println!(
        "Scaling sweep over {} ({} run(s) per point)\n",
        topologies
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        runs
    );

    let flow_counts: &[usize] = if cli.quick { &[10, 20] } else { &[20, 40, 80] };
    let power = fig2_power_functions()[0]; // x^2, the paper's primary cost
    let mut exp = Experiment::new("scaling", topologies);
    for (ti, &k) in ks.iter().enumerate() {
        let group = format!("k={k}");
        for &n in flow_counts {
            for run in 0..runs {
                exp.push(InstanceSpec {
                    group: group.clone(),
                    x: n as f64,
                    topology: ti,
                    power,
                    input: InstanceInput::Uniform { flows: n },
                    seed: 1000 * n as u64 + run as u64,
                    extra: vec![("k".to_string(), k as f64), ("run".to_string(), run as f64)],
                });
            }
        }
    }

    if let Some(algorithms) = cli.algorithms.clone() {
        exp.algorithms = algorithms;
    }
    exp.solver_threads = cli.solver_threads;
    exp.record_timings = cli.timings;
    let outcome = exp.run(cli.threads);
    for &k in ks {
        let group = format!("k={k}");
        let rows: Vec<Vec<String>> = outcome
            .report
            .points
            .iter()
            .filter(|p| p.group == group)
            .map(|p| {
                vec![
                    format!("{}", p.x as usize),
                    "1.000".to_string(),
                    format!("{:.3}", p.sp),
                    format!("{:.3}", p.rs),
                ]
            })
            .collect();
        print_table(
            &format!("Scaling, fat-tree {group}"),
            &["flows", "LB", "SP+MCF", "RS"],
            &rows,
        );
    }

    println!("Values are energies normalised by the fractional lower bound (LB = 1.0).");
    println!("Grow the envelope with --full (adds fat-tree k=16, 1024 hosts).");
    cli.emit(&outcome.report, outcome.elapsed_seconds);
}
