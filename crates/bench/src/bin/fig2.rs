//! Reproduces **Fig. 2** of the paper: the approximation performance of
//! Random-Schedule versus the SP+MCF baseline, normalised by the fractional
//! lower bound, on a fat-tree with 80 switches and 128 servers, for power
//! functions `x^2` and `x^4`, as the number of flows grows from 40 to 200.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin fig2                 # 3 runs, step 40
//! cargo run --release -p dcn-bench --bin fig2 -- --full       # paper: 10 runs, step 20
//! cargo run --release -p dcn-bench --bin fig2 -- --quick --json-out   # CI smoke
//! cargo run --release -p dcn-bench --bin fig2 -- --runs 5 --small --threads 8
//! ```
//!
//! `--small` swaps the k=8 fat-tree for a k=4 fat-tree; `--quick` also
//! drops to one run per point with a coarser flow-count grid.

use dcn_bench::runner::ExperimentCli;
use dcn_bench::{fig2_power_functions, print_table, Experiment, InstanceInput, InstanceSpec};
use dcn_topology::builders;

fn main() {
    let cli = ExperimentCli::parse("fig2");
    let runs: usize = cli.runs.unwrap_or(if cli.quick {
        1
    } else if cli.full {
        10
    } else {
        3
    });
    let step: usize = cli.step.unwrap_or(if cli.quick {
        80
    } else if cli.full {
        20
    } else {
        40
    });
    let topo = if cli.small || cli.quick {
        builders::fat_tree(4)
    } else {
        builders::fat_tree(8)
    };
    println!(
        "Fig. 2 reproduction on {} ({} switches, {} hosts), {} run(s) per point\n",
        topo.name,
        topo.network.switch_count(),
        topo.network.host_count(),
        runs
    );

    let mut exp = Experiment::new("fig2", vec![topo]);
    let flow_counts: Vec<usize> = (40..=200).step_by(step).collect();
    for power in fig2_power_functions() {
        let group = format!("x^{}", power.alpha());
        for &n in &flow_counts {
            for run in 0..runs {
                exp.push(InstanceSpec {
                    group: group.clone(),
                    x: n as f64,
                    topology: 0,
                    power,
                    input: InstanceInput::Uniform { flows: n },
                    seed: 1000 * n as u64 + run as u64,
                    extra: vec![("run".to_string(), run as f64)],
                });
            }
        }
    }

    if let Some(algorithms) = cli.algorithms.clone() {
        exp.algorithms = algorithms;
    }
    exp.solver_threads = cli.solver_threads;
    exp.record_timings = cli.timings;
    let outcome = exp.run(cli.threads);
    for power in fig2_power_functions() {
        let group = format!("x^{}", power.alpha());
        let rows: Vec<Vec<String>> = outcome
            .report
            .points
            .iter()
            .filter(|p| p.group == group)
            .map(|p| {
                vec![
                    format!("{}", p.x as usize),
                    "1.000".to_string(),
                    format!("{:.3}", p.sp),
                    format!("{:.3}", p.rs),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 2, power function {group}"),
            &["flows", "LB", "SP+MCF", "RS"],
            &rows,
        );
    }

    println!("Values are energies normalised by the fractional lower bound (LB = 1.0),");
    println!("averaged over {runs} seeded runs, as in the paper's Section V-C.");
    cli.emit(&outcome.report, outcome.elapsed_seconds);
}
