//! Reproduces **Fig. 2** of the paper: the approximation performance of
//! Random-Schedule versus the SP+MCF baseline, normalised by the fractional
//! lower bound, on a fat-tree with 80 switches and 128 servers, for power
//! functions `x^2` and `x^4`, as the number of flows grows from 40 to 200.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin fig2                 # quick: 3 runs, step 40
//! cargo run --release -p dcn-bench --bin fig2 -- --full       # paper: 10 runs, step 20
//! cargo run --release -p dcn-bench --bin fig2 -- --runs 5 --small
//! ```
//!
//! `--small` swaps the k=8 fat-tree for a k=4 fat-tree, which is useful for
//! smoke-testing the harness.

use dcn_bench::{arg_present, arg_value, average, fig2_power_functions, print_table, run_instance};
use dcn_topology::builders;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = arg_present(&args, "--full");
    let small = arg_present(&args, "--small");
    let runs: usize = arg_value(&args, "--runs").unwrap_or(if full { 10 } else { 3 });
    let step: usize = arg_value(&args, "--step").unwrap_or(if full { 20 } else { 40 });

    let topo = if small {
        builders::fat_tree(4)
    } else {
        builders::fat_tree(8)
    };
    println!(
        "Fig. 2 reproduction on {} ({} switches, {} hosts), {} run(s) per point\n",
        topo.name,
        topo.network.switch_count(),
        topo.network.host_count(),
        runs
    );

    let flow_counts: Vec<usize> = (40..=200).step_by(step).collect();
    for power in fig2_power_functions() {
        let mut rows = Vec::new();
        for &n in &flow_counts {
            let results: Vec<_> = (0..runs)
                .map(|run| run_instance(&topo, n, 1000 * n as u64 + run as u64, &power))
                .collect();
            let avg = average(&results);
            rows.push(vec![
                n.to_string(),
                "1.000".to_string(),
                format!("{:.3}", avg.sp),
                format!("{:.3}", avg.rs),
            ]);
            eprintln!(
                "  [alpha = {}] n = {n}: SP+MCF = {:.3}, RS = {:.3}",
                power.alpha(),
                avg.sp,
                avg.rs
            );
        }
        print_table(
            &format!("Fig. 2, power function x^{}", power.alpha()),
            &["flows", "LB", "SP+MCF", "RS"],
            &rows,
        );
    }

    println!("Values are energies normalised by the fractional lower bound (LB = 1.0),");
    println!("averaged over {runs} seeded runs, as in the paper's Section V-C.");
}
