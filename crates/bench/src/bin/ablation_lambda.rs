//! Ablation: the interval-granularity parameter `lambda = (t_K - t_0) /
//! min_k |I_k|` appears in Random-Schedule's approximation ratio
//! (Theorem 6). This experiment varies the minimum span of the workload —
//! shorter minimum spans produce thinner intervals and larger lambda — and
//! reports how the measured normalised energy reacts.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin ablation_lambda -- [--flows N] [--runs R]
//! ```

use dcn_bench::{arg_value, print_table, run_flow_set};
use dcn_flow::workload::UniformWorkload;
use dcn_flow::{Flow, FlowSet};
use dcn_power::PowerFunction;
use dcn_topology::builders;

/// Snaps every release down and every deadline up to a multiple of `grain`,
/// so the interval structure is controlled: the smallest interval is at
/// least `grain` and `lambda <= horizon / grain`.
fn quantize(flows: &FlowSet, grain: f64) -> FlowSet {
    let quantized: Vec<Flow> = flows
        .iter()
        .map(|f| {
            let release = (f.release / grain).floor() * grain;
            let deadline = (f.deadline / grain).ceil() * grain;
            Flow::new(
                f.id,
                f.src,
                f.dst,
                release,
                deadline.max(release + grain),
                f.volume,
            )
            .expect("quantised flow remains valid")
        })
        .collect();
    FlowSet::from_flows(quantized).expect("ids unchanged")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flows: usize = arg_value(&args, "--flows").unwrap_or(60);
    let runs: usize = arg_value(&args, "--runs").unwrap_or(3);

    let topo = builders::fat_tree(4);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    println!(
        "lambda sweep on {} with {} flows, {} run(s) per point\n",
        topo.name, flows, runs
    );

    let mut rows = Vec::new();
    for grain in [0.5, 1.0, 2.0, 5.0, 10.0] {
        let mut lambda_sum = 0.0;
        let mut interval_sum = 0.0;
        let mut rs_sum = 0.0;
        let mut sp_sum = 0.0;
        for run in 0..runs {
            let raw = UniformWorkload::paper_defaults(flows, 31 * run as u64 + 5)
                .generate(topo.hosts())
                .expect("workload generates");
            let flow_set = quantize(&raw, grain);
            lambda_sum += flow_set.lambda();
            interval_sum += flow_set.intervals().len() as f64;
            let r = run_flow_set(&topo, &flow_set, &power, run as u64);
            rs_sum += r.rs_normalized();
            sp_sum += r.sp_normalized();
        }
        rows.push(vec![
            format!("{grain:.1}"),
            format!("{:.1}", lambda_sum / runs as f64),
            format!("{:.1}", interval_sum / runs as f64),
            format!("{:.3}", sp_sum / runs as f64),
            format!("{:.3}", rs_sum / runs as f64),
        ]);
    }
    print_table(
        "Normalised energy vs interval granularity (time grid `grain`)",
        &["grain", "lambda", "intervals", "SP+MCF", "RS"],
        &rows,
    );
    println!("Theorem 6 predicts the worst case degrades with lambda; in practice the");
    println!("average-case normalised energy moves only mildly while the relaxation gets");
    println!("cheaper to solve as the number of intervals shrinks.");
}
