//! Ablation: the interval-granularity parameter `lambda = (t_K - t_0) /
//! min_k |I_k|` appears in Random-Schedule's approximation ratio
//! (Theorem 6). This experiment varies the minimum span of the workload —
//! shorter minimum spans produce thinner intervals and larger lambda — and
//! reports how the measured normalised energy reacts.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin ablation_lambda -- \
//!     [--flows N] [--runs R] [--threads T] [--quick] [--json-out [PATH]]
//! ```

use dcn_bench::runner::ExperimentCli;
use dcn_bench::{print_table, Experiment, InstanceInput, InstanceSpec};
use dcn_flow::workload::UniformWorkload;
use dcn_flow::{Flow, FlowSet};
use dcn_power::PowerFunction;
use dcn_topology::builders;

/// Snaps every release down and every deadline up to a multiple of `grain`,
/// so the interval structure is controlled: the smallest interval is at
/// least `grain` and `lambda <= horizon / grain`.
fn quantize(flows: &FlowSet, grain: f64) -> FlowSet {
    let quantized: Vec<Flow> = flows
        .iter()
        .map(|f| {
            let release = (f.release / grain).floor() * grain;
            let deadline = (f.deadline / grain).ceil() * grain;
            Flow::new(
                f.id,
                f.src,
                f.dst,
                release,
                deadline.max(release + grain),
                f.volume,
            )
            .expect("quantised flow remains valid")
        })
        .collect();
    FlowSet::from_flows(quantized).expect("ids unchanged")
}

fn main() {
    let cli = ExperimentCli::parse("ablation_lambda");
    let flows: usize = cli.flows.unwrap_or(if cli.quick { 30 } else { 60 });
    let runs: usize = cli.runs.unwrap_or(if cli.quick { 1 } else { 3 });

    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let mut exp = Experiment::new("ablation_lambda", vec![builders::fat_tree(4)]);
    println!(
        "lambda sweep on {} with {} flows, {} run(s) per point\n",
        exp.topologies[0].name, flows, runs
    );

    let grains = [0.5, 1.0, 2.0, 5.0, 10.0];
    for &grain in &grains {
        for run in 0..runs {
            // The workload is generated (cheap) up front so the interval
            // statistics land in the artifact; solving (expensive) is what
            // the runner parallelises.
            let raw = UniformWorkload::paper_defaults(flows, 31 * run as u64 + 5)
                .generate(exp.topologies[0].hosts())
                .expect("workload generates");
            let flow_set = quantize(&raw, grain);
            let extra = vec![
                ("grain".to_string(), grain),
                ("lambda".to_string(), flow_set.lambda()),
                ("intervals".to_string(), flow_set.intervals().len() as f64),
            ];
            exp.push(InstanceSpec {
                group: "grain".to_string(),
                x: grain,
                topology: 0,
                power,
                input: InstanceInput::Explicit(flow_set),
                seed: run as u64,
                extra,
            });
        }
    }

    if let Some(algorithms) = cli.algorithms.clone() {
        exp.algorithms = algorithms;
    }
    exp.solver_threads = cli.solver_threads;
    exp.record_timings = cli.timings;
    let outcome = exp.run(cli.threads);
    let report = &outcome.report;
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            let mean_extra = |key: &str| {
                let values: Vec<f64> = report
                    .instances
                    .iter()
                    .filter(|r| r.extra("grain") == Some(p.x))
                    .filter_map(|r| r.extra(key))
                    .collect();
                values.iter().sum::<f64>() / values.len() as f64
            };
            vec![
                format!("{:.1}", p.x),
                format!("{:.1}", mean_extra("lambda")),
                format!("{:.1}", mean_extra("intervals")),
                format!("{:.3}", p.sp),
                format!("{:.3}", p.rs),
            ]
        })
        .collect();
    print_table(
        "Normalised energy vs interval granularity (time grid `grain`)",
        &["grain", "lambda", "intervals", "SP+MCF", "RS"],
        &rows,
    );
    println!("Theorem 6 predicts the worst case degrades with lambda; in practice the");
    println!("average-case normalised energy moves only mildly while the relaxation gets");
    println!("cheaper to solve as the number of intervals shrinks.");
    cli.emit(report, outcome.elapsed_seconds);
}
