//! Ablation: how the speed-scaling exponent `alpha` changes the gap between
//! Random-Schedule, SP+MCF and the lower bound (the paper only evaluates
//! `alpha = 2` and `alpha = 4`).
//!
//! ```text
//! cargo run --release -p dcn-bench --bin ablation_alpha -- [--flows N] [--runs R]
//! ```

use dcn_bench::{arg_value, average, print_table, run_instance};
use dcn_power::PowerFunction;
use dcn_topology::builders;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flows: usize = arg_value(&args, "--flows").unwrap_or(80);
    let runs: usize = arg_value(&args, "--runs").unwrap_or(3);

    let topo = builders::fat_tree(4);
    println!(
        "alpha sweep on {} with {} flows, {} run(s) per point\n",
        topo.name, flows, runs
    );

    let mut rows = Vec::new();
    for alpha in [1.5, 2.0, 2.5, 3.0, 4.0] {
        let power = PowerFunction::speed_scaling_only(1.0, alpha, builders::DEFAULT_CAPACITY);
        let results: Vec<_> = (0..runs)
            .map(|run| run_instance(&topo, flows, 7 * flows as u64 + run as u64, &power))
            .collect();
        let avg = average(&results);
        rows.push(vec![
            format!("{alpha:.1}"),
            "1.000".to_string(),
            format!("{:.3}", avg.sp),
            format!("{:.3}", avg.rs),
        ]);
    }
    print_table(
        "Normalised energy vs alpha",
        &["alpha", "LB", "SP+MCF", "RS"],
        &rows,
    );
    println!("Larger alpha penalises load concentration more, so the SP+MCF gap grows with alpha.");
}
