//! Ablation: how the speed-scaling exponent `alpha` changes the gap between
//! Random-Schedule, SP+MCF and the lower bound (the paper only evaluates
//! `alpha = 2` and `alpha = 4`).
//!
//! ```text
//! cargo run --release -p dcn-bench --bin ablation_alpha -- \
//!     [--flows N] [--runs R] [--threads T] [--quick] [--json-out [PATH]]
//! ```

use dcn_bench::runner::ExperimentCli;
use dcn_bench::{print_table, Experiment, InstanceInput, InstanceSpec};
use dcn_power::PowerFunction;
use dcn_topology::builders;

fn main() {
    let cli = ExperimentCli::parse("ablation_alpha");
    let flows: usize = cli.flows.unwrap_or(if cli.quick { 40 } else { 80 });
    let runs: usize = cli.runs.unwrap_or(if cli.quick { 1 } else { 3 });

    let mut exp = Experiment::new("ablation_alpha", vec![builders::fat_tree(4)]);
    println!(
        "alpha sweep on {} with {} flows, {} run(s) per point\n",
        exp.topologies[0].name, flows, runs
    );

    for alpha in [1.5, 2.0, 2.5, 3.0, 4.0] {
        let power = PowerFunction::speed_scaling_only(1.0, alpha, builders::DEFAULT_CAPACITY);
        for run in 0..runs {
            exp.push(InstanceSpec {
                group: "alpha".to_string(),
                x: alpha,
                topology: 0,
                power,
                input: InstanceInput::Uniform { flows },
                seed: 7 * flows as u64 + run as u64,
                extra: vec![("run".to_string(), run as f64)],
            });
        }
    }

    if let Some(algorithms) = cli.algorithms.clone() {
        exp.algorithms = algorithms;
    }
    exp.solver_threads = cli.solver_threads;
    exp.record_timings = cli.timings;
    let outcome = exp.run(cli.threads);
    let rows: Vec<Vec<String>> = outcome
        .report
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.x),
                "1.000".to_string(),
                format!("{:.3}", p.sp),
                format!("{:.3}", p.rs),
            ]
        })
        .collect();
    print_table(
        "Normalised energy vs alpha",
        &["alpha", "LB", "SP+MCF", "RS"],
        &rows,
    );
    println!("Larger alpha penalises load concentration more, so the SP+MCF gap grows with alpha.");
    cli.emit(&outcome.report, outcome.elapsed_seconds);
}
