//! `serve` — closed-loop throughput and energy audit of the `dcn-server`
//! daemon.
//!
//! Every other experiment solves a batch instance; this one measures the
//! paper's scheduler *as a service*. Each cell starts an in-process
//! [`dcn_server::Server`] (the same router + shard-worker daemon behind
//! `dcn-serve`), submits the paper's uniform workload through the wire
//! [`Request`] types in release order as a closed-loop client, and then
//! audits the daemon's committed rate plans: a snapshot of every shard is
//! collected, rebuilt into a [`dcn_core` schedule], and metered under the
//! speed-scaling power function — so the artifact reports the **energy the
//! daemon actually committed to**, not a post-hoc re-solve.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin serve                      # default sweep
//! cargo run --release -p dcn-bench --bin serve -- --quick           # CI smoke
//! cargo run --release -p dcn-bench --bin serve -- --quick --timings # + req/s, p99
//! cargo run --release -p dcn-bench --bin serve -- --policies resolve --flows 200
//! cargo run --release -p dcn-bench --bin serve -- --shard-workers 4 --queue-depth 64
//! ```
//!
//! `--policies` selects the serve policies compared (default: `edf` and
//! `greedy`; `--full` adds `resolve`); `--admission` the daemon's
//! admission rule; `--shard-workers` / `--queue-depth` the daemon's worker
//! count and per-worker queue bound; `--flows` the submissions per cell;
//! `--runs` the seeds per cell.
//!
//! **`BENCH_serve.json` schema (v3):** groups are
//! `"<topology>|<policy>|<admission>"`, `x` is the submission count.
//! `rs_*` fields carry the audited energy of the cell's policy, `sp_*`
//! the `greedy` (full-blast bottleneck) reference on the same workload,
//! and `lower_bound` the fluid per-flow bound
//! `sum_f hops_f * span_f * P(vol_f / span_f)` — valid for the pure
//! speed-scaling power function by Jensen's inequality plus the
//! superadditivity of `x^alpha`, since every feasible plan moves each
//! flow over at least its shortest-path hop count. Each instance's
//! `extra` records `[["requests", n], ["admitted", a], ["rejected", j],
//! ["busy", b], ["missed", m], ["run", r]]` (the worker width is
//! deliberately **not** a column — the artifact must not depend on it). The
//! schema-v3 columns `requests_per_second` and `p99_latency_ms` are
//! populated **only under `--timings`** (wall clock varies run to run)
//! and stay `null` otherwise, which keeps the default artifact
//! byte-identical at any `--shard-workers` width — the CI pins that by
//! `cmp`-ing runs at widths 1 and 2.

use std::time::Instant;

use dcn_bench::print_table;
use dcn_bench::report::{ExperimentReport, InstanceRecord};
use dcn_bench::runner::{timed, ExperimentCli};
use dcn_flow::workload::UniformWorkload;
use dcn_power::PowerFunction;
use dcn_server::{
    Request, RequestBody, ResponseBody, ServeAdmission, ServePolicy, Server, ServerConfig,
    SubmitFlow, TopologySpec,
};
use dcn_topology::builders;
use dcn_topology::GraphCsr;

/// One cell of the serve grid.
struct Cell {
    topology: usize,
    policy: ServePolicy,
    run: u64,
}

/// What one daemon pass produced: admission counters, the audited
/// schedule metrics, and (optionally) client-side latency samples.
struct PassOutcome {
    energy: f64,
    capacity_excess: f64,
    admitted: usize,
    rejected: usize,
    busy: usize,
    missed: usize,
    elapsed_seconds: f64,
    /// Per-submission round-trip latencies in milliseconds.
    latencies_ms: Vec<f64>,
}

fn main() {
    let cli = ExperimentCli::parse("serve");
    let runs: u64 = cli.runs.unwrap_or(if cli.quick { 1 } else { 2 }) as u64;
    let flows: usize = cli.flows.unwrap_or(if cli.quick { 1000 } else { 2000 });
    let admission = cli
        .admission
        .as_deref()
        .map(|name| ServeAdmission::parse(name).unwrap_or_else(|e| panic!("[serve] {e}")))
        .unwrap_or(ServeAdmission::AdmitAll);
    let policy_names: Vec<String> = cli.policies.clone().unwrap_or_else(|| {
        let mut names = vec!["edf".to_string(), "greedy".to_string()];
        if cli.full {
            names.push("resolve".to_string());
        }
        if cli.quick {
            names = vec!["edf".to_string()];
        }
        names
    });
    let policies: Vec<ServePolicy> = policy_names
        .iter()
        .map(|name| ServePolicy::parse(name).unwrap_or_else(|e| panic!("[serve] {e}")))
        .collect();
    let topologies: Vec<TopologySpec> = if cli.quick {
        vec![TopologySpec::FatTree { k: 8 }]
    } else if cli.full {
        vec![
            TopologySpec::FatTree { k: 4 },
            TopologySpec::LeafSpine {
                leaves: 4,
                spines: 2,
                hosts_per_leaf: 6,
            },
            TopologySpec::FatTree { k: 8 },
        ]
    } else {
        vec![
            TopologySpec::FatTree { k: 4 },
            TopologySpec::FatTree { k: 8 },
        ]
    };
    let shard_workers = cli.shard_workers.unwrap_or(1);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);

    println!(
        "Scheduler-as-a-service closed loop: policies [{}] under {} on {} \
         ({} submission(s), {} run(s) per cell, {shard_workers} shard worker(s))\n",
        policy_names.join(", "),
        admission.name(),
        topologies
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        flows,
        runs
    );

    let mut grid: Vec<Cell> = Vec::new();
    for (ti, _) in topologies.iter().enumerate() {
        for policy in &policies {
            for run in 0..runs {
                grid.push(Cell {
                    topology: ti,
                    policy: *policy,
                    run,
                });
            }
        }
    }

    // The daemon owns its worker threads, and the closed-loop wall clock
    // is the measurement — cells therefore run sequentially instead of
    // through `run_indexed`, which keeps the timings honest and the
    // record order (hence the artifact) deterministic.
    let (records, elapsed_seconds) = timed(|| {
        grid.iter()
            .enumerate()
            .map(|(i, cell)| {
                let spec = topologies[cell.topology];
                // One seed per (topology, run), shared across policies so
                // the comparison columns are like for like.
                let seed = 10_000 * (cell.topology as u64 + 1) + cell.run;
                let outcome = run_pass(spec, cell.policy, &admission, &cli, flows, seed);
                // The reference pass audits the same workload under the
                // full-blast `greedy` policy (the serve-side analogue of
                // the SP baseline).
                let reference = if cell.policy == ServePolicy::Greedy {
                    None
                } else {
                    Some(run_pass(
                        spec,
                        ServePolicy::Greedy,
                        &admission,
                        &cli,
                        flows,
                        seed,
                    ))
                };
                let sp_energy = reference.as_ref().map_or(outcome.energy, |r| r.energy);
                let lower_bound = fluid_lower_bound(spec, &power, flows, seed);
                eprintln!(
                    "  [serve] {}/{} {}|{} seed={seed} — {} admitted, {} rejected, \
                     {:.0} req/s",
                    i + 1,
                    grid.len(),
                    spec,
                    cell.policy.name(),
                    outcome.admitted,
                    outcome.rejected,
                    flows as f64 / outcome.elapsed_seconds.max(f64::MIN_POSITIVE)
                );
                let extra = vec![
                    ("requests".to_string(), flows as f64),
                    ("admitted".to_string(), outcome.admitted as f64),
                    ("rejected".to_string(), outcome.rejected as f64),
                    ("busy".to_string(), outcome.busy as f64),
                    ("missed".to_string(), outcome.missed as f64),
                    ("run".to_string(), cell.run as f64),
                ];
                InstanceRecord {
                    label: format!(
                        "{}|{}|{} flows={flows} seed={seed}",
                        spec,
                        cell.policy.name(),
                        admission.name()
                    ),
                    flows,
                    seed,
                    alpha: power.alpha(),
                    lower_bound,
                    rs_energy: outcome.energy,
                    sp_energy,
                    rs_normalized: outcome.energy / lower_bound,
                    sp_normalized: sp_energy / lower_bound,
                    deadline_misses: outcome.missed,
                    rs_capacity_excess: outcome.capacity_excess,
                    rs_sim: None,
                    sp_sim: None,
                    solve_wall_ms: None,
                    intervals_per_second: None,
                    // Wall clock varies run to run, so the serving columns
                    // are opt-in — they intentionally break the byte-
                    // determinism contract, exactly like wall_clock_seconds.
                    requests_per_second: cli
                        .timings
                        .then(|| flows as f64 / outcome.elapsed_seconds.max(f64::MIN_POSITIVE)),
                    p99_latency_ms: cli.timings.then(|| p99(&outcome.latencies_ms)),
                    extra,
                }
            })
            .collect::<Vec<InstanceRecord>>()
    });

    let mut report = ExperimentReport::new(
        "serve",
        topologies
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    report.workload = Some(UniformWorkload::paper_defaults(0, 0));
    report.instances = records;
    let coordinates: Vec<(String, f64)> = grid
        .iter()
        .map(|cell| {
            (
                format!(
                    "{}|{}|{}",
                    topologies[cell.topology],
                    cell.policy.name(),
                    admission.name()
                ),
                flows as f64,
            )
        })
        .collect();
    report.aggregate_points(&coordinates);

    for (ti, spec) in topologies.iter().enumerate() {
        let rows: Vec<Vec<String>> = policies
            .iter()
            .map(|policy| {
                let group = format!("{}|{}|{}", spec, policy.name(), admission.name());
                let point = report
                    .points
                    .iter()
                    .find(|p| p.group == group)
                    .expect("every cell aggregated into a sweep point");
                let members: Vec<&InstanceRecord> = report
                    .instances
                    .iter()
                    .zip(&grid)
                    .filter(|(_, c)| c.topology == ti && c.policy == *policy)
                    .map(|(r, _)| r)
                    .collect();
                let mean = |key: &str| {
                    members.iter().filter_map(|r| r.extra(key)).sum::<f64>() / members.len() as f64
                };
                vec![
                    policy.name().to_string(),
                    format!("{:.3}", point.rs),
                    format!("{:.3}", point.sp),
                    format!("{:.3}", point.rs / point.sp),
                    format!("{:.1}", mean("admitted")),
                    format!("{:.1}", mean("rejected")),
                    format!("{:.1}", mean("missed")),
                ]
            })
            .collect();
        print_table(
            &format!("Serve {spec} ({} submissions, {})", flows, admission.name()),
            &[
                "policy",
                "serve/LB",
                "greedy/LB",
                "ratio",
                "admitted",
                "rejected",
                "missed",
            ],
            &rows,
        );
    }

    println!(
        "`serve/LB` audits the daemon's committed plans against the fluid per-flow bound; \
         `ratio` compares the policy to the greedy full-blast reference."
    );
    println!(
        "Throughput and p99 latency land in the artifact only under --timings \
         (see EXPERIMENTS.md)."
    );
    cli.emit(&report, elapsed_seconds);
}

/// Runs one closed-loop daemon pass: start, submit every flow of the
/// seeded workload in release order, collect and audit the snapshot.
fn run_pass(
    spec: TopologySpec,
    policy: ServePolicy,
    admission: &ServeAdmission,
    cli: &ExperimentCli,
    flows: usize,
    seed: u64,
) -> PassOutcome {
    let built = spec.build();
    let workload = UniformWorkload::paper_defaults(flows, seed)
        .generate(&built.hosts)
        .expect("workload generation succeeds on topologies with >= 2 hosts");
    let mut submissions: Vec<_> = workload.iter().cloned().collect();
    submissions.sort_by(|a, b| {
        a.release
            .partial_cmp(&b.release)
            .expect("workload times are finite")
            .then(a.id.cmp(&b.id))
    });

    let mut config = ServerConfig::new(spec);
    config.policy = policy;
    config.admission = *admission;
    config.seed = seed;
    config.shard_workers = cli.shard_workers.unwrap_or(1);
    if let Some(depth) = cli.queue_depth {
        config.queue_depth = depth;
    }
    let mut server = Server::start(config).unwrap_or_else(|e| panic!("[serve] {e}"));

    let mut admitted = 0usize;
    let mut rejected = 0usize;
    let mut busy = 0usize;
    let mut latencies_ms = Vec::with_capacity(submissions.len());
    let start = Instant::now();
    for (i, flow) in submissions.iter().enumerate() {
        let body = RequestBody::SubmitFlow(SubmitFlow {
            src: flow.src.0,
            dst: flow.dst.0,
            release: flow.release,
            deadline: flow.deadline,
            volume: flow.volume,
        });
        let sent = Instant::now();
        let mut response = server.request(Request::new(i as u64, body.clone()));
        // A closed-loop client rarely sees Busy (the queue drains between
        // submissions), but honor the backpressure contract anyway.
        while matches!(response.body, ResponseBody::Busy { .. }) {
            busy += 1;
            response = server.request(Request::new(i as u64, body.clone()));
        }
        latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
        match response.body {
            ResponseBody::Admit(reply) => {
                if reply.admitted {
                    admitted += 1;
                } else {
                    rejected += 1;
                }
            }
            other => panic!("[serve] unexpected reply to a submission: {other:?}"),
        }
    }
    let elapsed_seconds = start.elapsed().as_secs_f64();

    let snapshot = server
        .collect_snapshot()
        .unwrap_or_else(|e| panic!("[serve] snapshot collection failed: {e}"));
    server.shutdown();
    let missed = snapshot.missed_count();
    // With reject-infeasible admission every flow of a cell can be turned
    // away; an empty plan set carries zero energy by definition.
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let (energy, capacity_excess) = match snapshot.schedule(&built.network) {
        Ok(schedule) => (
            schedule.energy(&power).total(),
            schedule.max_capacity_excess(&power),
        ),
        Err(_) => (0.0, 0.0),
    };

    PassOutcome {
        energy,
        capacity_excess,
        admitted,
        rejected,
        busy,
        missed,
        elapsed_seconds,
        latencies_ms,
    }
}

/// The fluid per-flow lower bound on total energy: each flow must move
/// `volume` units over at least its shortest-path hop count within its
/// `[release, deadline]` window, and for the pure speed-scaling power
/// function (`sigma = 0`, `alpha > 1`) spreading the volume evenly over
/// the whole window is pointwise optimal (Jensen) while sharing links
/// only adds energy (superadditivity of `x^alpha`).
fn fluid_lower_bound(spec: TopologySpec, power: &PowerFunction, flows: usize, seed: u64) -> f64 {
    let built = spec.build();
    let graph = GraphCsr::from_network(&built.network);
    let workload = UniformWorkload::paper_defaults(flows, seed)
        .generate(&built.hosts)
        .expect("workload generation succeeds on topologies with >= 2 hosts");
    workload
        .iter()
        .map(|flow| {
            let hops = graph
                .shortest_path(flow.src, flow.dst)
                .map_or(1, |path| path.links().len());
            let span = (flow.deadline - flow.release).max(f64::MIN_POSITIVE);
            hops as f64 * span * power.power(flow.volume / span)
        })
        .sum()
}

/// The 99th-percentile of a latency sample, in the sample's unit.
fn p99(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}
