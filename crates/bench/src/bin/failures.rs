//! `failures` — online scheduling under link failures and recoveries.
//!
//! The paper's fabric is static; this experiment measures how the online
//! engine degrades when links fail and recover while flows are in flight.
//! Each instance draws the paper's uniform workload, rewrites its release
//! times with a Poisson arrival process, replaces its volumes with the
//! heavy-tailed **websearch** empirical size distribution
//! (`dcn_flow::workload::SizeDistribution`, rescaled to the base mean so
//! load factors stay comparable), and drives it through
//! `OnlineEngine::run_vs_offline_with_events` together with a seeded
//! alternating-renewal failure stream
//! (`dcn_flow::failure::FailureProcess`). The swept **failure rate** is
//! `1 / mean_uptime` — failures per link per unit time — with `0` as the
//! static baseline point; `--downtime` fixes the mean outage length. The
//! clairvoyant offline reference solves the same instance on the
//! *pristine* fabric, so the competitive ratio and the failure-attributed
//! deadline misses isolate exactly what the outages cost.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin failures                 # default sweep
//! cargo run --release -p dcn-bench --bin failures -- --quick      # CI smoke
//! cargo run --release -p dcn-bench --bin failures -- --rates 0,0.02,0.1 --json-out
//! cargo run --release -p dcn-bench --bin failures -- --downtime 5 --policies hybrid
//! ```
//!
//! `--rates` sets the swept failure rates; `--downtime` the mean outage
//! duration; `--load` the (single) arrival load factor; `--flows`,
//! `--runs`, `--policies`, `--algorithms`, `--epoch`, `--shards` and
//! `--solver-threads` behave exactly as in the `online` binary.
//!
//! **`BENCH_failures.json` schema:** the standard artifact (current
//! schema version). Groups are `"<topology>|<policy>|<admission>"`, `x` is the
//! failure rate; `rs_*` fields carry the **online** energies under
//! failures, `sp_*` the **offline clairvoyant** energies on the pristine
//! fabric, `lower_bound` the fractional LB — so `rs_normalized /
//! sp_normalized` is the competitive ratio including the failure cost.
//! `deadline_misses` counts online misses over admitted flows. Each
//! instance's `extra` records `[["rate", F], ["admission", 0|1],
//! ["events", E], ["topology_events", T], ["link_downs", D],
//! ["resolves", R], ["solve_failures", S], ["admitted", A],
//! ["rejected", J], ["missed", M], ["failure_missed", FM], ["load", L],
//! ["run", r]]`. Same determinism contract as every artifact: the failure
//! stream is a pure function of the seed (per-link derived RNG streams),
//! so without `--timings`, fixed seed ⇒ byte-identical JSON for any
//! `--threads`, `--solver-threads` and `--shards`.

use dcn_bench::report::{ExperimentReport, InstanceRecord};
use dcn_bench::runner::{run_indexed, timed, ExperimentCli};
use dcn_bench::{
    harness_fmcf_config, harness_registry, print_table, run_online_flow_set_with_events,
    OnlineKnobs,
};
use dcn_core::online::{AdmissionRule, PolicyRegistry};
use dcn_flow::failure::FailureProcess;
use dcn_flow::workload::{ArrivalProcess, SizeDistribution, UniformWorkload};
use dcn_power::PowerFunction;
use dcn_topology::builders::{self, BuiltTopology};
use dcn_topology::TopologyEvent;

/// One cell of the failure sweep grid.
struct Cell {
    topology: usize,
    policy: String,
    admission: AdmissionRule,
    /// Failure rate in failures per link per unit time (`0` = static).
    rate: f64,
    /// Index of `rate` in the swept list — the seed is derived from this
    /// (not from the float value), so arbitrary `--rates` values never
    /// collide or overflow.
    rate_index: u64,
    run: u64,
}

impl Cell {
    fn group(&self, topologies: &[BuiltTopology]) -> String {
        format!(
            "{}|{}|{}",
            topologies[self.topology].name,
            self.policy,
            self.admission.name()
        )
    }
}

fn main() {
    let cli = ExperimentCli::parse("failures");
    let runs: u64 = cli.runs.unwrap_or(if cli.quick { 1 } else { 2 }) as u64;
    let flows: usize = cli.flows.unwrap_or(if cli.quick { 10 } else { 20 });
    let load: f64 = cli.load.as_ref().map(|loads| loads[0]).unwrap_or(2.0);
    let downtime: f64 = cli.downtime.unwrap_or(1.0);
    let algorithm = cli
        .algorithms
        .as_ref()
        .map(|names| names[0].clone())
        .unwrap_or_else(|| "dcfsr".to_string());
    let policy_registry = PolicyRegistry::with_defaults();
    let policy_names: Vec<String> = cli.policies.clone().unwrap_or_else(|| {
        if cli.quick {
            vec!["resolve".to_string()]
        } else {
            vec!["resolve".to_string(), "hybrid".to_string()]
        }
    });
    for name in &policy_names {
        policy_registry
            .create(name)
            .unwrap_or_else(|e| panic!("[failures] {e}"));
    }
    let rates: Vec<f64> = cli.rates.clone().unwrap_or_else(|| {
        if cli.quick {
            vec![0.0, 0.05]
        } else {
            vec![0.0, 0.01, 0.03, 0.1]
        }
    });
    let topologies: Vec<BuiltTopology> = if cli.quick {
        vec![builders::fat_tree(4)]
    } else if cli.full {
        vec![
            builders::fat_tree(4),
            builders::leaf_spine(4, 2, 6),
            builders::fat_tree(8),
        ]
    } else {
        vec![builders::fat_tree(4), builders::leaf_spine(4, 2, 6)]
    };
    let admissions = [
        AdmissionRule::AdmitAll,
        AdmissionRule::reject_infeasible(harness_fmcf_config()),
    ];
    let knobs = OnlineKnobs::from_cli(cli.epoch, cli.shards, cli.solver_threads);

    println!(
        "Failure/recovery sweep: {algorithm} re-solves behind policies [{}] under Poisson \
         arrivals (load {load}, websearch sizes) with exponential outages (mean downtime \
         {downtime}) on {} ({} flows, {} run(s) per point)\n",
        policy_names.join(", "),
        topologies
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        flows,
        runs
    );

    let mut grid: Vec<Cell> = Vec::new();
    for (ti, _) in topologies.iter().enumerate() {
        for policy in &policy_names {
            for admission in &admissions {
                for (ri, &rate) in rates.iter().enumerate() {
                    for run in 0..runs {
                        grid.push(Cell {
                            topology: ti,
                            policy: policy.clone(),
                            admission: admission.clone(),
                            rate,
                            rate_index: ri as u64,
                            run,
                        });
                    }
                }
            }
        }
    }

    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let registry = harness_registry();
    registry
        .create(&algorithm)
        .unwrap_or_else(|e| panic!("[failures] {e}"));

    let (records, elapsed_seconds) = timed(|| {
        run_indexed(grid.len(), cli.threads, |i| {
            let cell = &grid[i];
            let topo = &topologies[cell.topology];
            // One seed per (rate, run), shared across topologies, policies
            // and admissions so the comparison columns are like for like.
            let seed = 10_000 * (cell.rate_index + 1) + cell.run;
            let base = UniformWorkload::paper_defaults(flows, seed)
                .generate(topo.hosts())
                .expect("workload generation succeeds on topologies with >= 2 hosts");
            let instance = ArrivalProcess::with_load(load, seed)
                .sizes(SizeDistribution::WebSearch)
                .apply(&base)
                .expect("arrival rewrite preserves validity");
            // The failure stream covers the whole instance horizon. Rate 0
            // is the static baseline: no process, no events.
            let events: Vec<TopologyEvent> = if cell.rate > 0.0 {
                let (_, horizon_end) = instance.horizon();
                FailureProcess::new(1.0 / cell.rate, downtime, seed)
                    .generate(topo.network.link_count(), horizon_end)
            } else {
                Vec::new()
            };
            let link_downs = events.iter().filter(|e| e.is_down()).count();
            let result = run_online_flow_set_with_events(
                topo,
                &instance,
                &power,
                seed,
                &algorithm,
                &cell.policy,
                cell.admission.clone(),
                knobs,
                &events,
                &registry,
                &policy_registry,
            );
            let report = &result.outcome.report;
            let admission_code = match cell.admission {
                AdmissionRule::AdmitAll => 0.0,
                _ => 1.0,
            };
            eprintln!(
                "  [failures] {}/{} {}|{}|{} rate={} seed={seed} ({} topology event(s))",
                i + 1,
                grid.len(),
                topo.name,
                cell.policy,
                cell.admission.name(),
                cell.rate,
                events.len()
            );
            let extra = vec![
                ("rate".to_string(), cell.rate),
                ("admission".to_string(), admission_code),
                ("events".to_string(), report.events as f64),
                ("topology_events".to_string(), report.topology_events as f64),
                ("link_downs".to_string(), link_downs as f64),
                ("resolves".to_string(), report.resolves as f64),
                ("solve_failures".to_string(), report.solve_failures as f64),
                ("admitted".to_string(), report.admitted() as f64),
                ("rejected".to_string(), report.rejected() as f64),
                ("missed".to_string(), report.missed() as f64),
                ("failure_missed".to_string(), report.failure_missed() as f64),
                ("load".to_string(), load),
                ("run".to_string(), cell.run as f64),
            ];
            InstanceRecord {
                label: format!(
                    "{}|{}|{} rate={} seed={seed}",
                    topo.name,
                    cell.policy,
                    cell.admission.name(),
                    cell.rate
                ),
                flows: instance.len(),
                seed,
                alpha: power.alpha(),
                lower_bound: result.lower_bound,
                rs_energy: result.online_sim.energy,
                sp_energy: result.offline_sim.energy,
                rs_normalized: result.online_normalized(),
                sp_normalized: result.offline_normalized(),
                deadline_misses: report.missed(),
                rs_capacity_excess: result.outcome.schedule.max_capacity_excess(&power),
                rs_sim: Some(result.online_sim),
                sp_sim: Some(result.offline_sim),
                solve_wall_ms: None,
                intervals_per_second: None,
                requests_per_second: None,
                p99_latency_ms: None,
                extra,
            }
        })
    });

    let mut report = ExperimentReport::new(
        "failures",
        topologies
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
    );
    report.workload = Some(UniformWorkload::paper_defaults(0, 0));
    report.instances = records;
    let coordinates: Vec<(String, f64)> = grid
        .iter()
        .map(|cell| (cell.group(&topologies), cell.rate))
        .collect();
    report.aggregate_points(&coordinates);

    for topo in &topologies {
        for policy in &policy_names {
            for admission in &admissions {
                let group = format!("{}|{}|{}", topo.name, policy, admission.name());
                let rows: Vec<Vec<String>> = report
                    .points
                    .iter()
                    .filter(|p| p.group == group)
                    .map(|p| {
                        let members: Vec<&InstanceRecord> = report
                            .instances
                            .iter()
                            .zip(&coordinates)
                            .filter(|(_, (g, x))| *g == group && *x == p.x)
                            .map(|(r, _)| r)
                            .collect();
                        let mean = |key: &str| {
                            members.iter().filter_map(|r| r.extra(key)).sum::<f64>()
                                / members.len() as f64
                        };
                        vec![
                            format!("{}", p.x),
                            format!("{:.3}", p.rs),
                            format!("{:.3}", p.sp),
                            format!("{:.3}", p.rs / p.sp),
                            format!("{:.1}", mean("link_downs")),
                            format!("{:.1}", mean("missed")),
                            format!("{:.1}", mean("failure_missed")),
                            format!("{:.1}", mean("rejected")),
                        ]
                    })
                    .collect();
                print_table(
                    &format!(
                        "Failures {algorithm}, {} ({} / {})",
                        topo.name,
                        policy,
                        admission.name()
                    ),
                    &[
                        "rate",
                        "online/LB",
                        "offline/LB",
                        "ratio",
                        "downs",
                        "missed",
                        "fail-missed",
                        "rejected",
                    ],
                    &rows,
                );
            }
        }
    }

    println!(
        "`fail-missed` counts deadline misses attributed to link failures (a subset of \
         `missed`); `ratio` is online energy / offline clairvoyant energy on the pristine \
         fabric."
    );
    println!(
        "Sweep other failure rates with --rates a,b,... and outage lengths with \
         --downtime D (see EXPERIMENTS.md)."
    );
    cli.emit(&report, elapsed_seconds);
}
