//! Validates `BENCH_*.json` experiment artifacts against the report
//! schema. CI runs this over every artifact the experiment binaries
//! produce before archiving them.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin report_lint -- BENCH_*.json
//! ```
//!
//! Exits non-zero when any file is missing, malformed, or violates a
//! schema invariant (see `dcn_bench::report::ExperimentReport::validate`).

use dcn_bench::report::ExperimentReport;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: report_lint <report.json>...");
        std::process::exit(2);
    }
    let mut failures = 0usize;
    for path in &paths {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match ExperimentReport::from_json(&text) {
                Ok(report) => println!(
                    "ok {path}: {} (schema v{}, {} instance(s), {} sweep point(s))",
                    report.experiment,
                    report.schema_version,
                    report.instances.len(),
                    report.points.len()
                ),
                Err(message) => {
                    eprintln!("FAIL {path}: {message}");
                    failures += 1;
                }
            },
            Err(message) => {
                eprintln!("FAIL {path}: {message}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} of {} report(s) failed validation", paths.len());
        std::process::exit(1);
    }
}
