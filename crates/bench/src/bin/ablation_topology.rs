//! Ablation: the same workload size on different data-center fabrics.
//! Path diversity is what Random-Schedule exploits, so topologies with more
//! equal-cost paths show a larger gap between RS and SP+MCF.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin ablation_topology -- [--flows N] [--runs R]
//! ```

use dcn_bench::{arg_value, average, print_table, run_instance};
use dcn_power::PowerFunction;
use dcn_topology::builders;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flows: usize = arg_value(&args, "--flows").unwrap_or(60);
    let runs: usize = arg_value(&args, "--runs").unwrap_or(3);

    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let topologies = vec![
        builders::fat_tree(4),
        builders::leaf_spine(8, 4, 8),
        builders::bcube(4, 1),
        builders::dumbbell(16, builders::DEFAULT_CAPACITY),
    ];

    println!("topology sweep with {flows} flows, {runs} run(s) per point\n");
    let mut rows = Vec::new();
    for topo in &topologies {
        let results: Vec<_> = (0..runs)
            .map(|run| run_instance(topo, flows, 11 * run as u64 + 3, &power))
            .collect();
        let avg = average(&results);
        rows.push(vec![
            topo.name.clone(),
            topo.network.switch_count().to_string(),
            topo.network.host_count().to_string(),
            format!("{:.3}", avg.sp),
            format!("{:.3}", avg.rs),
        ]);
    }
    print_table(
        "Normalised energy vs topology",
        &["topology", "switches", "hosts", "SP+MCF", "RS"],
        &rows,
    );
    println!("The dumbbell has no path diversity, so RS and SP+MCF coincide there;");
    println!("fat-tree and BCube give RS room to spread load and close in on the LB.");
}
