//! Ablation: the same workload size on different data-center fabrics.
//! Path diversity is what Random-Schedule exploits, so topologies with more
//! equal-cost paths show a larger gap between RS and SP+MCF.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin ablation_topology -- \
//!     [--flows N] [--runs R] [--threads T] [--quick] [--json-out [PATH]]
//! ```

use dcn_bench::runner::ExperimentCli;
use dcn_bench::{print_table, Experiment, InstanceInput, InstanceSpec};
use dcn_power::PowerFunction;
use dcn_topology::builders;

fn main() {
    let cli = ExperimentCli::parse("ablation_topology");
    let flows: usize = cli.flows.unwrap_or(if cli.quick { 30 } else { 60 });
    let runs: usize = cli.runs.unwrap_or(if cli.quick { 1 } else { 3 });

    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let mut exp = Experiment::new(
        "ablation_topology",
        vec![
            builders::fat_tree(4),
            builders::leaf_spine(8, 4, 8),
            builders::bcube(4, 1),
            builders::dumbbell(16, builders::DEFAULT_CAPACITY),
        ],
    );

    println!("topology sweep with {flows} flows, {runs} run(s) per point\n");
    for t in 0..exp.topologies.len() {
        let group = exp.topologies[t].name.clone();
        for run in 0..runs {
            exp.push(InstanceSpec {
                group: group.clone(),
                x: t as f64,
                topology: t,
                power,
                input: InstanceInput::Uniform { flows },
                seed: 11 * run as u64 + 3,
                extra: vec![("run".to_string(), run as f64)],
            });
        }
    }

    if let Some(algorithms) = cli.algorithms.clone() {
        exp.algorithms = algorithms;
    }
    exp.solver_threads = cli.solver_threads;
    exp.record_timings = cli.timings;
    let outcome = exp.run(cli.threads);
    let rows: Vec<Vec<String>> = outcome
        .report
        .points
        .iter()
        .map(|p| {
            let topo = &exp.topologies[p.x as usize];
            vec![
                topo.name.clone(),
                topo.network.switch_count().to_string(),
                topo.network.host_count().to_string(),
                format!("{:.3}", p.sp),
                format!("{:.3}", p.rs),
            ]
        })
        .collect();
    print_table(
        "Normalised energy vs topology",
        &["topology", "switches", "hosts", "SP+MCF", "RS"],
        &rows,
    );
    println!("The dumbbell has no path diversity, so RS and SP+MCF coincide there;");
    println!("fat-tree and BCube give RS room to spread load and close in on the LB.");
    cli.emit(&outcome.report, outcome.elapsed_seconds);
}
