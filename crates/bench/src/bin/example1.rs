//! Regenerates the paper's worked Example 1 (Section III-C): the optimal
//! DCFS schedule of two flows on a three-node line network with
//! `f(x) = x^2`, and checks it against the closed form
//! `sqrt(2) * s1 = s2 = (8 + 6 sqrt 2) / 3`.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin example1
//! ```

use dcn_bench::print_table;
use dcn_core::{most_critical_first, Routing};
use dcn_flow::FlowSet;
use dcn_power::PowerFunction;
use dcn_topology::builders;

fn main() {
    let topo = builders::line_with_capacity(3, 1e9);
    let (a, b, c) = (topo.hosts()[0], topo.hosts()[1], topo.hosts()[2]);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, 1e9);
    let flows = FlowSet::from_tuples([(a, c, 2.0, 4.0, 6.0), (a, b, 1.0, 3.0, 8.0)])
        .expect("example flows are valid");

    let paths = Routing::ShortestPath
        .compute(&topo.network, &flows)
        .expect("line network is connected");
    let schedule = most_critical_first(&topo.network, &flows, &paths, &power)
        .expect("example instance is feasible");
    schedule
        .verify(&topo.network, &flows, &power)
        .expect("optimal schedule is feasible");

    let s2_paper = (8.0 + 6.0 * 2f64.sqrt()) / 3.0;
    let s1_paper = s2_paper / 2f64.sqrt();
    let energy_paper = 2.0 * 6.0 * s1_paper + 8.0 * s2_paper;

    let rows = vec![
        vec![
            "j1 (A->C)".to_string(),
            format!(
                "{:.6}",
                schedule.flow_schedule(0).unwrap().profile.max_rate()
            ),
            format!("{s1_paper:.6}"),
        ],
        vec![
            "j2 (A->B)".to_string(),
            format!(
                "{:.6}",
                schedule.flow_schedule(1).unwrap().profile.max_rate()
            ),
            format!("{s2_paper:.6}"),
        ],
        vec![
            "energy".to_string(),
            format!("{:.6}", schedule.energy(&power).total()),
            format!("{energy_paper:.6}"),
        ],
    ];
    print_table(
        "Example 1 (line network, f(x) = x^2)",
        &["quantity", "measured", "paper"],
        &rows,
    );
}
