//! Regenerates the paper's worked Example 1 (Section III-C): the optimal
//! DCFS schedule of two flows on a three-node line network with
//! `f(x) = x^2`, and checks it against the closed form
//! `sqrt(2) * s1 = s2 = (8 + 6 sqrt 2) / 3`. In the JSON artifact the
//! closed-form energy plays the role of the `lower_bound` normaliser and
//! the "reference" energy, so `rs_normalized` measures the reproduction
//! error (it should be 1.0 to solver precision).
//!
//! ```text
//! cargo run --release -p dcn-bench --bin example1 -- [--json-out [PATH]]
//! ```

use dcn_bench::print_table;
use dcn_bench::report::{ExperimentReport, InstanceRecord};
use dcn_bench::runner::{timed, ExperimentCli};
use dcn_core::{Algorithm, RoutedMcf, SolverContext};
use dcn_flow::FlowSet;
use dcn_power::PowerFunction;
use dcn_sim::Simulator;
use dcn_topology::builders;

fn main() {
    let cli = ExperimentCli::parse("example1");
    let ((schedule_rows, report), elapsed_seconds) = timed(|| {
        let topo = builders::line_with_capacity(3, 1e9);
        let (a, b, c) = (topo.hosts()[0], topo.hosts()[1], topo.hosts()[2]);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 1e9);
        let flows = FlowSet::from_tuples([(a, c, 2.0, 4.0, 6.0), (a, b, 1.0, 3.0, 8.0)])
            .expect("example flows are valid");

        // The optimal DCFS schedule on the (forced) shortest paths is
        // exactly the `sp-mcf` algorithm of the registry.
        let mut ctx = SolverContext::from_network(&topo.network).expect("line network validates");
        ctx.set_parallelism(dcn_core::ParallelConfig::with_threads(cli.solver_threads));
        let solution = RoutedMcf::shortest_path()
            .solve(&mut ctx, &flows, &power)
            .expect("example instance is feasible");
        let schedule = solution.schedule.as_ref().expect("sp-mcf schedules");
        ctx.verify(schedule, &flows, &power)
            .expect("optimal schedule is feasible");

        let s2_paper = (8.0 + 6.0 * 2f64.sqrt()) / 3.0;
        let s1_paper = s2_paper / 2f64.sqrt();
        let energy_paper = 2.0 * 6.0 * s1_paper + 8.0 * s2_paper;

        let s1 = schedule.flow_schedule(0).unwrap().profile.max_rate();
        let s2 = schedule.flow_schedule(1).unwrap().profile.max_rate();
        let energy = schedule.energy(&power).total();
        let sim = Simulator::new(power)
            .run_ctx(&ctx, &flows, schedule)
            .summary();

        let mut report = ExperimentReport::new("example1", &topo.name);
        report.instances.push(InstanceRecord {
            label: "example1".to_string(),
            flows: flows.len(),
            seed: 0,
            alpha: power.alpha(),
            lower_bound: energy_paper,
            rs_energy: energy,
            sp_energy: energy_paper,
            rs_normalized: energy / energy_paper,
            sp_normalized: 1.0,
            deadline_misses: sim.deadline_misses,
            rs_capacity_excess: 0.0,
            rs_sim: Some(sim),
            sp_sim: None,
            solve_wall_ms: None,
            intervals_per_second: None,
            requests_per_second: None,
            p99_latency_ms: None,
            extra: vec![
                ("s1_measured".to_string(), s1),
                ("s1_paper".to_string(), s1_paper),
                ("s2_measured".to_string(), s2),
                ("s2_paper".to_string(), s2_paper),
            ],
        });
        report.aggregate_points(&[("example1".to_string(), 1.0)]);

        let rows = vec![
            vec![
                "j1 (A->C)".to_string(),
                format!("{s1:.6}"),
                format!("{s1_paper:.6}"),
            ],
            vec![
                "j2 (A->B)".to_string(),
                format!("{s2:.6}"),
                format!("{s2_paper:.6}"),
            ],
            vec![
                "energy".to_string(),
                format!("{energy:.6}"),
                format!("{energy_paper:.6}"),
            ],
        ];
        (rows, report)
    });
    print_table(
        "Example 1 (line network, f(x) = x^2)",
        &["quantity", "measured", "paper"],
        &schedule_rows,
    );
    cli.emit(&report, elapsed_seconds);
}
