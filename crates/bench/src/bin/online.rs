//! `online` — event-driven online scheduling under Poisson arrivals.
//!
//! The paper's DCFSR evaluation is clairvoyant; this experiment measures
//! what the same instances cost when flows are revealed at their release
//! times. Each instance draws the paper's uniform workload, replaces its
//! release times with a Poisson arrival process at a given **load factor**
//! (expected number of flows concurrently in flight), and executes it
//! through the `dcn_core::online::OnlineEngine` — one warm
//! `SolverContext`, one `OnlinePolicy` selected by name from the
//! `PolicyRegistry` — under both admission rules. The offline clairvoyant
//! solve of the same instance is the reference, so the artifact tracks the
//! **competitive ratio** of each online policy versus offline DCFSR as a
//! function of load, alongside its re-solve count (how often the policy
//! fell back to a full Frank–Wolfe pass).
//!
//! ```text
//! cargo run --release -p dcn-bench --bin online                    # default sweep
//! cargo run --release -p dcn-bench --bin online -- --quick         # CI smoke
//! cargo run --release -p dcn-bench --bin online -- --load 0.5,2,8 --json-out
//! cargo run --release -p dcn-bench --bin online -- --policies resolve,hybrid
//! ```
//!
//! `--load` sets the swept load factors; `--flows` the workload size;
//! `--runs` the seeds per sweep point; `--policies` the compared online
//! policies (default: every registered policy); `--algorithms` selects the
//! wrapped re-solve scheduler (first name; further names are ignored here
//! — the reference is always the same algorithm with clairvoyant
//! knowledge). `--epoch W` batches arrivals into epoch windows of width
//! `W` and `--shards N` solves residuals pod-sharded on `N` worker
//! threads; supplying either also warm-starts consecutive Frank–Wolfe
//! re-solves from the previous event's flow matrix. The artifact is
//! byte-identical at any `--shards` width (sharding only changes the
//! worker-thread count, never the partition), which the CI pins by
//! `cmp`-ing runs at widths 1, 2 and 4.
//!
//! **`BENCH_online.json` schema:** the standard artifact (schema version
//! 1). Groups are `"<topology>|<policy>|<admission>"` (e.g.
//! `"fat-tree(k=4)|hybrid|admit-all"`), `x` is the load factor; `rs_*`
//! fields carry the **online** energies, `sp_*` the **offline
//! clairvoyant** energies, `lower_bound` the fractional LB of the
//! clairvoyant instance — so `rs_normalized / sp_normalized` is the
//! competitive ratio's decomposition against the common LB.
//! `deadline_misses` counts online misses over admitted flows. Each
//! instance's `extra` records the `OnlineReport` counters: `[["load", L],
//! ["admission", 0|1], ["events", E], ["resolves", R],
//! ["solve_failures", F], ["admitted", A], ["rejected", J], ["missed", M],
//! ["run", r]]` (admission 0 = admit-all, 1 = reject-infeasible), and —
//! only under `--timings`, because wall clock varies run to run —
//! `events_per_second` and `arrivals_per_second` throughput columns.
//! Same determinism contract as every artifact: without `--timings`,
//! fixed seed ⇒ byte-identical JSON for any `--threads` (and any
//! `--shards`).
//!
//! Under `--quick` the sweep is followed by a throughput smoke: 100 000
//! arrivals on a fat-tree(k=16) pushed through the epoch-batched event
//! loop (solver-free `edf` policy, so the runtime measures the engine,
//! not Frank–Wolfe). It prints its arrivals-per-second rate and is kept
//! out of the JSON artifact — wall clock is not deterministic.

use dcn_bench::report::{ExperimentReport, InstanceRecord};
use dcn_bench::runner::{run_indexed, timed, ExperimentCli};
use dcn_bench::{
    harness_fmcf_config, harness_registry, print_table, run_online_flow_set, OnlineKnobs,
};
use dcn_core::online::{AdmissionRule, OnlineEngine, PolicyRegistry, ShardMode};
use dcn_core::SolverContext;
use dcn_flow::workload::{ArrivalProcess, UniformWorkload};
use dcn_power::PowerFunction;
use dcn_topology::builders::{self, BuiltTopology};

/// One cell of the online sweep grid.
struct Cell {
    topology: usize,
    policy: String,
    admission: AdmissionRule,
    load: f64,
    /// Index of `load` in the swept list — the seed is derived from this
    /// (not from the float value), so arbitrary `--load` values never
    /// collide or overflow.
    load_index: u64,
    run: u64,
}

impl Cell {
    fn group(&self, topologies: &[BuiltTopology]) -> String {
        format!(
            "{}|{}|{}",
            topologies[self.topology].name,
            self.policy,
            self.admission.name()
        )
    }
}

fn main() {
    let cli = ExperimentCli::parse("online");
    let runs: u64 = cli.runs.unwrap_or(if cli.quick { 1 } else { 2 }) as u64;
    let flows: usize = cli.flows.unwrap_or(if cli.quick { 10 } else { 20 });
    let algorithm = cli
        .algorithms
        .as_ref()
        .map(|names| names[0].clone())
        .unwrap_or_else(|| "dcfsr".to_string());
    let policy_registry = PolicyRegistry::with_defaults();
    let policy_names: Vec<String> = cli.policies.clone().unwrap_or_else(|| {
        policy_registry
            .names()
            .iter()
            .map(|n| n.to_string())
            .collect()
    });
    for name in &policy_names {
        policy_registry
            .create(name)
            .unwrap_or_else(|e| panic!("[online] {e}"));
    }
    let loads: Vec<f64> = cli.load.clone().unwrap_or_else(|| {
        if cli.quick {
            vec![1.0, 3.0]
        } else {
            vec![0.5, 1.0, 2.0, 4.0]
        }
    });
    let topologies: Vec<BuiltTopology> = if cli.quick {
        vec![builders::fat_tree(4)]
    } else if cli.full {
        vec![
            builders::fat_tree(4),
            builders::leaf_spine(4, 2, 6),
            builders::fat_tree(8),
        ]
    } else {
        vec![builders::fat_tree(4), builders::leaf_spine(4, 2, 6)]
    };
    let admissions = [
        AdmissionRule::AdmitAll,
        AdmissionRule::reject_infeasible(harness_fmcf_config()),
    ];
    let knobs = OnlineKnobs::from_cli(cli.epoch, cli.shards, cli.solver_threads);

    println!(
        "Online event-driven sweep: {algorithm} re-solves behind policies [{}] under Poisson \
         arrivals on {} ({} flows, {} run(s) per point)\n",
        policy_names.join(", "),
        topologies
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        flows,
        runs
    );

    let mut grid: Vec<Cell> = Vec::new();
    for (ti, _) in topologies.iter().enumerate() {
        for policy in &policy_names {
            for admission in &admissions {
                for (li, &load) in loads.iter().enumerate() {
                    for run in 0..runs {
                        grid.push(Cell {
                            topology: ti,
                            policy: policy.clone(),
                            admission: admission.clone(),
                            load,
                            load_index: li as u64,
                            run,
                        });
                    }
                }
            }
        }
    }

    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let registry = harness_registry();
    registry
        .create(&algorithm)
        .unwrap_or_else(|e| panic!("[online] {e}"));

    let (records, elapsed_seconds) = timed(|| {
        run_indexed(grid.len(), cli.threads, |i| {
            let cell = &grid[i];
            let topo = &topologies[cell.topology];
            // One seed per (load, run), shared across topologies, policies
            // and admissions so the comparison columns are like for like.
            let seed = 10_000 * (cell.load_index + 1) + cell.run;
            let base = UniformWorkload::paper_defaults(flows, seed)
                .generate(topo.hosts())
                .expect("workload generation succeeds on topologies with >= 2 hosts");
            let instance = ArrivalProcess::with_load(cell.load, seed)
                .apply(&base)
                .expect("arrival rewrite preserves validity");
            let (result, instance_seconds) = timed(|| {
                run_online_flow_set(
                    topo,
                    &instance,
                    &power,
                    seed,
                    &algorithm,
                    &cell.policy,
                    cell.admission.clone(),
                    knobs,
                    &registry,
                    &policy_registry,
                )
            });
            let report = &result.outcome.report;
            let admission_code = match cell.admission {
                AdmissionRule::AdmitAll => 0.0,
                _ => 1.0,
            };
            eprintln!(
                "  [online] {}/{} {}|{}|{} load={} seed={seed}",
                i + 1,
                grid.len(),
                topo.name,
                cell.policy,
                cell.admission.name(),
                cell.load
            );
            let mut extra = vec![
                ("load".to_string(), cell.load),
                ("admission".to_string(), admission_code),
                ("events".to_string(), report.events as f64),
                ("resolves".to_string(), report.resolves as f64),
                ("solve_failures".to_string(), report.solve_failures as f64),
                ("admitted".to_string(), report.admitted() as f64),
                ("rejected".to_string(), report.rejected() as f64),
                ("missed".to_string(), report.missed() as f64),
                ("run".to_string(), cell.run as f64),
            ];
            if cli.timings {
                // Wall clock varies run to run, so this column is opt-in —
                // it intentionally breaks the byte-determinism contract,
                // exactly like the top-level wall_clock field.
                extra.push((
                    "events_per_second".to_string(),
                    report.events as f64 / instance_seconds.max(f64::MIN_POSITIVE),
                ));
                extra.push((
                    "arrivals_per_second".to_string(),
                    instance.len() as f64 / instance_seconds.max(f64::MIN_POSITIVE),
                ));
            }
            InstanceRecord {
                label: format!(
                    "{}|{}|{} load={} seed={seed}",
                    topo.name,
                    cell.policy,
                    cell.admission.name(),
                    cell.load
                ),
                flows: instance.len(),
                seed,
                alpha: power.alpha(),
                lower_bound: result.lower_bound,
                rs_energy: result.online_sim.energy,
                sp_energy: result.offline_sim.energy,
                rs_normalized: result.online_normalized(),
                sp_normalized: result.offline_normalized(),
                deadline_misses: report.missed(),
                rs_capacity_excess: result.outcome.schedule.max_capacity_excess(&power),
                rs_sim: Some(result.online_sim),
                sp_sim: Some(result.offline_sim),
                solve_wall_ms: None,
                intervals_per_second: None,
                requests_per_second: None,
                p99_latency_ms: None,
                extra,
            }
        })
    });

    let mut report = ExperimentReport::new(
        "online",
        topologies
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
    );
    report.workload = Some(UniformWorkload::paper_defaults(0, 0));
    report.instances = records;
    let coordinates: Vec<(String, f64)> = grid
        .iter()
        .map(|cell| (cell.group(&topologies), cell.load))
        .collect();
    report.aggregate_points(&coordinates);

    for topo in &topologies {
        for policy in &policy_names {
            for admission in &admissions {
                let group = format!("{}|{}|{}", topo.name, policy, admission.name());
                let rows: Vec<Vec<String>> = report
                    .points
                    .iter()
                    .filter(|p| p.group == group)
                    .map(|p| {
                        let members: Vec<&InstanceRecord> = report
                            .instances
                            .iter()
                            .zip(&coordinates)
                            .filter(|(_, (g, x))| *g == group && *x == p.x)
                            .map(|(r, _)| r)
                            .collect();
                        let mean = |key: &str| {
                            members.iter().filter_map(|r| r.extra(key)).sum::<f64>()
                                / members.len() as f64
                        };
                        vec![
                            format!("{}", p.x),
                            format!("{:.3}", p.rs),
                            format!("{:.3}", p.sp),
                            format!("{:.3}", p.rs / p.sp),
                            format!("{:.1}", mean("rejected")),
                            format!("{:.1}", mean("missed")),
                            format!("{:.1}", mean("events")),
                            format!("{:.1}", mean("resolves")),
                        ]
                    })
                    .collect();
                print_table(
                    &format!(
                        "Online {algorithm}, {} ({} / {})",
                        topo.name,
                        policy,
                        admission.name()
                    ),
                    &[
                        "load",
                        "online/LB",
                        "offline/LB",
                        "ratio",
                        "rejected",
                        "missed",
                        "events",
                        "resolves",
                    ],
                    &rows,
                );
            }
        }
    }

    println!("`ratio` is the competitive ratio: online energy / offline clairvoyant energy.");
    println!(
        "Sweep more load factors with --load a,b,... and other policies with \
         --policies a,b,... (see EXPERIMENTS.md)."
    );
    cli.emit(&report, elapsed_seconds);

    if cli.quick {
        throughput_smoke();
    }
}

/// The `--quick` throughput smoke: 100 000 Poisson arrivals on a
/// fat-tree(k=16) through the epoch-batched event loop. The solver-free
/// `edf` policy bounds the runtime by the engine itself rather than by
/// Frank–Wolfe; warm starts and shard workers are enabled so the full
/// incremental pipeline is on the measured path. Results go to stdout
/// only — wall clock varies run to run, so the smoke never touches the
/// JSON artifact.
fn throughput_smoke() {
    const ARRIVALS: usize = 100_000;
    let topo = builders::fat_tree(16);
    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let base = UniformWorkload::paper_defaults(ARRIVALS, 42)
        .generate(topo.hosts())
        .expect("workload generation succeeds on topologies with >= 2 hosts");
    let instance = ArrivalProcess::with_load(4.0, 42)
        .apply(&base)
        .expect("arrival rewrite preserves validity");
    let mut ctx =
        SolverContext::from_network(&topo.network).expect("builder topologies always validate");
    let mut engine = OnlineEngine::builder()
        .policy("edf")
        .warm_start(true)
        .epoch(0.05)
        .shards(ShardMode::Auto)
        .seed(42)
        .build()
        .expect("the smoke configuration is valid");
    let (outcome, seconds) = timed(|| {
        engine
            .run(&mut ctx, &instance, &power)
            .expect("the smoke instance runs to completion")
    });
    println!(
        "[online] quick smoke: {} on {} arrivals — {} events, {} missed, {:.2}s \
         ({:.0} arrivals/s)",
        topo.name,
        instance.len(),
        outcome.report.events,
        outcome.report.missed(),
        seconds,
        instance.len() as f64 / seconds.max(f64::MIN_POSITIVE)
    );
}
