//! `online` — online rolling-horizon scheduling under Poisson arrivals.
//!
//! The paper's DCFSR evaluation is clairvoyant; this experiment measures
//! what the same algorithm costs when flows are revealed at their release
//! times. Each instance draws the paper's uniform workload, replaces its
//! release times with a Poisson arrival process at a given **load factor**
//! (expected number of flows concurrently in flight), and executes it
//! through the `dcn_core::online::OnlineScheduler` — re-solving the
//! residual instance at every arrival on one warm `SolverContext` — under
//! both admission policies. The offline clairvoyant solve of the same
//! instance is the reference, so the artifact tracks the **competitive
//! ratio** of online versus offline DCFSR as a function of load.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin online                    # default sweep
//! cargo run --release -p dcn-bench --bin online -- --quick         # CI smoke
//! cargo run --release -p dcn-bench --bin online -- --load 0.5,2,8 --json-out
//! cargo run --release -p dcn-bench --bin online -- --algorithms dcfsr,sp-mcf
//! ```
//!
//! `--load` sets the swept load factors; `--flows` the workload size;
//! `--runs` the seeds per sweep point; `--algorithms` selects the wrapped
//! scheduler (first name; further names are ignored here — the reference
//! is always the same algorithm with clairvoyant knowledge).
//!
//! **`BENCH_online.json` schema:** the standard artifact (schema version
//! 1). Groups are `"<topology>|<policy>"` (e.g. `"fat-tree(k=4)|admit-all"`),
//! `x` is the load factor; `rs_*` fields carry the **online** energies,
//! `sp_*` the **offline clairvoyant** energies, `lower_bound` the
//! fractional LB of the clairvoyant instance — so `rs_normalized /
//! sp_normalized` is the competitive ratio's decomposition against the
//! common LB. `deadline_misses` counts online misses over admitted flows.
//! Each instance's `extra` records the `OnlineReport` counters:
//! `[["load", L], ["policy", 0|1], ["events", E], ["resolves", R],
//! ["solve_failures", F], ["admitted", A], ["rejected", J],
//! ["missed", M], ["run", r]]` (policy 0 = admit-all, 1 =
//! reject-infeasible). Same determinism contract as every artifact: fixed
//! seed ⇒ byte-identical JSON for any `--threads`.

use dcn_bench::report::{ExperimentReport, InstanceRecord};
use dcn_bench::runner::{run_indexed, timed, ExperimentCli};
use dcn_bench::{harness_fmcf_config, harness_registry, print_table, run_online_flow_set};
use dcn_core::online::AdmissionPolicy;
use dcn_flow::workload::{ArrivalProcess, UniformWorkload};
use dcn_power::PowerFunction;
use dcn_topology::builders::{self, BuiltTopology};

/// One cell of the online sweep grid.
struct Cell {
    topology: usize,
    policy: AdmissionPolicy,
    load: f64,
    /// Index of `load` in the swept list — the seed is derived from this
    /// (not from the float value), so arbitrary `--load` values never
    /// collide or overflow.
    load_index: u64,
    run: u64,
}

fn main() {
    let cli = ExperimentCli::parse("online");
    let runs: u64 = cli.runs.unwrap_or(if cli.quick { 1 } else { 2 }) as u64;
    let flows: usize = cli.flows.unwrap_or(if cli.quick { 10 } else { 20 });
    let algorithm = cli
        .algorithms
        .as_ref()
        .map(|names| names[0].clone())
        .unwrap_or_else(|| "dcfsr".to_string());
    let loads: Vec<f64> = cli.load.clone().unwrap_or_else(|| {
        if cli.quick {
            vec![1.0, 3.0]
        } else {
            vec![0.5, 1.0, 2.0, 4.0]
        }
    });
    let topologies: Vec<BuiltTopology> = if cli.quick {
        vec![builders::fat_tree(4)]
    } else if cli.full {
        vec![
            builders::fat_tree(4),
            builders::leaf_spine(4, 2, 6),
            builders::fat_tree(8),
        ]
    } else {
        vec![builders::fat_tree(4), builders::leaf_spine(4, 2, 6)]
    };
    let policies = [
        AdmissionPolicy::AdmitAll,
        AdmissionPolicy::reject_infeasible(harness_fmcf_config()),
    ];

    println!(
        "Online rolling-horizon sweep: {algorithm} under Poisson arrivals on {} \
         ({} flows, {} run(s) per point)\n",
        topologies
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        flows,
        runs
    );

    let mut grid: Vec<Cell> = Vec::new();
    for (ti, _) in topologies.iter().enumerate() {
        for policy in &policies {
            for (li, &load) in loads.iter().enumerate() {
                for run in 0..runs {
                    grid.push(Cell {
                        topology: ti,
                        policy: policy.clone(),
                        load,
                        load_index: li as u64,
                        run,
                    });
                }
            }
        }
    }

    let power = PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY);
    let registry = harness_registry();
    registry
        .create(&algorithm)
        .unwrap_or_else(|e| panic!("[online] {e}"));

    let (records, elapsed_seconds) = timed(|| {
        run_indexed(grid.len(), cli.threads, |i| {
            let cell = &grid[i];
            let topo = &topologies[cell.topology];
            // One seed per (load, run), shared across topologies/policies
            // so policy columns compare like for like.
            let seed = 10_000 * (cell.load_index + 1) + cell.run;
            let base = UniformWorkload::paper_defaults(flows, seed)
                .generate(topo.hosts())
                .expect("workload generation succeeds on topologies with >= 2 hosts");
            let instance = ArrivalProcess::with_load(cell.load, seed)
                .apply(&base)
                .expect("arrival rewrite preserves validity");
            let result = run_online_flow_set(
                topo,
                &instance,
                &power,
                seed,
                &algorithm,
                cell.policy.clone(),
                &registry,
            );
            let report = &result.outcome.report;
            let policy_code = match cell.policy {
                AdmissionPolicy::AdmitAll => 0.0,
                _ => 1.0,
            };
            eprintln!(
                "  [online] {}/{} {}|{} load={} seed={seed}",
                i + 1,
                grid.len(),
                topo.name,
                cell.policy.name(),
                cell.load
            );
            InstanceRecord {
                label: format!(
                    "{}|{} load={} seed={seed}",
                    topo.name,
                    cell.policy.name(),
                    cell.load
                ),
                flows: instance.len(),
                seed,
                alpha: power.alpha(),
                lower_bound: result.lower_bound,
                rs_energy: result.online_sim.energy,
                sp_energy: result.offline_sim.energy,
                rs_normalized: result.online_normalized(),
                sp_normalized: result.offline_normalized(),
                deadline_misses: report.missed(),
                rs_capacity_excess: result.outcome.schedule.max_capacity_excess(&power),
                rs_sim: Some(result.online_sim),
                sp_sim: Some(result.offline_sim),
                extra: vec![
                    ("load".to_string(), cell.load),
                    ("policy".to_string(), policy_code),
                    ("events".to_string(), report.events as f64),
                    ("resolves".to_string(), report.resolves as f64),
                    ("solve_failures".to_string(), report.solve_failures as f64),
                    ("admitted".to_string(), report.admitted() as f64),
                    ("rejected".to_string(), report.rejected() as f64),
                    ("missed".to_string(), report.missed() as f64),
                    ("run".to_string(), cell.run as f64),
                ],
            }
        })
    });

    let mut report = ExperimentReport::new(
        "online",
        topologies
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
    );
    report.workload = Some(UniformWorkload::paper_defaults(0, 0));
    report.instances = records;
    let coordinates: Vec<(String, f64)> = grid
        .iter()
        .map(|cell| {
            (
                format!("{}|{}", topologies[cell.topology].name, cell.policy.name()),
                cell.load,
            )
        })
        .collect();
    report.aggregate_points(&coordinates);

    for topo in &topologies {
        for policy in &policies {
            let group = format!("{}|{}", topo.name, policy.name());
            let rows: Vec<Vec<String>> = report
                .points
                .iter()
                .filter(|p| p.group == group)
                .map(|p| {
                    let members: Vec<&InstanceRecord> = report
                        .instances
                        .iter()
                        .zip(&coordinates)
                        .filter(|(_, (g, x))| *g == group && *x == p.x)
                        .map(|(r, _)| r)
                        .collect();
                    let mean = |key: &str| {
                        members.iter().filter_map(|r| r.extra(key)).sum::<f64>()
                            / members.len() as f64
                    };
                    vec![
                        format!("{}", p.x),
                        format!("{:.3}", p.rs),
                        format!("{:.3}", p.sp),
                        format!("{:.3}", p.rs / p.sp),
                        format!("{:.1}", mean("rejected")),
                        format!("{:.1}", mean("missed")),
                        format!("{:.1}", mean("resolves")),
                    ]
                })
                .collect();
            print_table(
                &format!("Online {algorithm}, {} ({})", topo.name, policy.name()),
                &[
                    "load",
                    "online/LB",
                    "offline/LB",
                    "ratio",
                    "rejected",
                    "missed",
                    "resolves",
                ],
                &rows,
            );
        }
    }

    println!("`ratio` is the competitive ratio: online energy / offline clairvoyant energy.");
    println!("Sweep more load factors with --load a,b,... (see EXPERIMENTS.md).");
    cli.emit(&report, elapsed_seconds);
}
