//! Sanity experiment on the hardness gadget of Theorems 2–3: `3m` flows of
//! one unit of time between two hosts joined by parallel links, with
//! `R_opt = B`. The reduction's optimum uses exactly `m` links at rate `B`
//! for a total energy of `m * alpha * mu * B^alpha`; this binary reports how
//! close Random-Schedule gets and how much worse single-path (SP+MCF)
//! routing is. In the JSON artifact the analytic optimum plays the role of
//! the `lower_bound` normaliser.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin hardness_gadget -- \
//!     [--threads T] [--quick] [--json-out [PATH]]
//! ```

use dcn_bench::print_table;
use dcn_bench::report::{ExperimentReport, InstanceRecord};
use dcn_bench::runner::{run_indexed, timed, ExperimentCli};
use dcn_core::{Algorithm, Dcfsr, RandomScheduleConfig, RoutedMcf, SolverContext};
use dcn_flow::workload::hardness;
use dcn_power::PowerFunction;
use dcn_topology::builders;

fn main() {
    let cli = ExperimentCli::parse("hardness_gadget");
    let alpha = 2.0;
    let mu = 1.0;
    let b = 9.0_f64;
    let sigma = mu * (alpha - 1.0) * b.powf(alpha);
    let sizes: &[usize] = if cli.quick { &[2, 4] } else { &[2, 4, 6, 8] };

    let (solved, elapsed_seconds) = timed(|| {
        run_indexed(sizes.len(), cli.threads, |i| {
            let m = sizes[i];
            let power =
                PowerFunction::new(sigma, mu, alpha, 2.0 * b).expect("valid power function");
            let topo = builders::parallel(2 * m, 2.0 * b);
            let values = hardness::satisfiable_three_partition(m, b);
            let flows = hardness::three_partition_flows(topo.source(), topo.sink(), &values)
                .expect("gadget flows are valid");

            let mut ctx = SolverContext::from_network(&topo.network).expect("gadget validates");
            ctx.set_parallelism(dcn_core::ParallelConfig::with_threads(cli.solver_threads));
            let rs = Dcfsr::new(RandomScheduleConfig {
                max_rounding_attempts: 50,
                ..Default::default()
            })
            .solve(&mut ctx, &flows, &power)
            .expect("gadget is connected");
            let sp = RoutedMcf::shortest_path()
                .solve(&mut ctx, &flows, &power)
                .expect("gadget is connected");

            let optimum = m as f64 * alpha * mu * b.powf(alpha);
            let rs_energy = rs.total_energy().expect("dcfsr schedules");
            let sp_energy = sp.total_energy().expect("sp-mcf schedules");
            InstanceRecord {
                label: format!("m={m}"),
                flows: flows.len(),
                seed: 0,
                alpha,
                lower_bound: optimum,
                rs_energy,
                sp_energy,
                rs_normalized: rs_energy / optimum,
                sp_normalized: sp_energy / optimum,
                deadline_misses: 0,
                rs_capacity_excess: rs.diagnostics.capacity_excess.unwrap_or(0.0),
                rs_sim: None,
                sp_sim: None,
                solve_wall_ms: None,
                intervals_per_second: None,
                requests_per_second: None,
                p99_latency_ms: None,
                extra: vec![("m".to_string(), m as f64), ("B".to_string(), b)],
            }
        })
    });

    let mut report = ExperimentReport::new("hardness_gadget", "parallel(2m)");
    let coordinates: Vec<(String, f64)> = sizes
        .iter()
        .map(|&m| ("gadget".to_string(), m as f64))
        .collect();
    report.instances = solved;
    report.aggregate_points(&coordinates);

    let rows: Vec<Vec<String>> = report
        .instances
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.extra("m").expect("m recorded") as usize),
                format!("{:.1}", r.lower_bound),
                format!("{:.1}", r.rs_energy),
                format!("{:.2}", r.rs_normalized),
                format!("{:.1}", r.sp_energy),
                format!("{:.2}", r.sp_normalized),
            ]
        })
        .collect();
    print_table(
        "3-partition gadget (B = 9, R_opt = B)",
        &["m", "optimum", "RS", "RS/opt", "SP+MCF", "SP/opt"],
        &rows,
    );
    println!("Spreading flows across parallel links (RS) stays near the reduction's optimum,");
    println!("while single-path routing pays the alpha-th power of the concentration.");
    cli.emit(&report, elapsed_seconds);
}
