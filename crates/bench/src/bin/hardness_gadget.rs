//! Sanity experiment on the hardness gadget of Theorems 2–3: `3m` flows of
//! one unit of time between two hosts joined by parallel links, with
//! `R_opt = B`. The reduction's optimum uses exactly `m` links at rate `B`
//! for a total energy of `m * alpha * mu * B^alpha`; this binary reports how
//! close Random-Schedule gets and how much worse single-path (SP+MCF)
//! routing is.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin hardness_gadget
//! ```

use dcn_bench::print_table;
use dcn_core::baselines;
use dcn_core::dcfsr::{RandomSchedule, RandomScheduleConfig};
use dcn_flow::workload::hardness;
use dcn_power::PowerFunction;
use dcn_topology::builders;

fn main() {
    let alpha = 2.0;
    let mu = 1.0;
    let b = 9.0_f64;
    let sigma = mu * (alpha - 1.0) * b.powf(alpha);

    let mut rows = Vec::new();
    for m in [2usize, 4, 6, 8] {
        let power = PowerFunction::new(sigma, mu, alpha, 2.0 * b).expect("valid power function");
        let topo = builders::parallel(2 * m, 2.0 * b);
        let values = hardness::satisfiable_three_partition(m, b);
        let flows = hardness::three_partition_flows(topo.source(), topo.sink(), &values)
            .expect("gadget flows are valid");

        let outcome = RandomSchedule::new(RandomScheduleConfig {
            max_rounding_attempts: 50,
            ..Default::default()
        })
        .run(&topo.network, &flows, &power)
        .expect("gadget is connected");
        let sp = baselines::sp_mcf(&topo.network, &flows, &power).expect("gadget is connected");

        let optimum = m as f64 * alpha * mu * b.powf(alpha);
        let rs = outcome.schedule.energy(&power).total();
        let sp_energy = sp.energy(&power).total();
        rows.push(vec![
            m.to_string(),
            format!("{optimum:.1}"),
            format!("{:.1}", rs),
            format!("{:.2}", rs / optimum),
            format!("{:.1}", sp_energy),
            format!("{:.2}", sp_energy / optimum),
        ]);
    }
    print_table(
        "3-partition gadget (B = 9, R_opt = B)",
        &["m", "optimum", "RS", "RS/opt", "SP+MCF", "SP/opt"],
        &rows,
    );
    println!("Spreading flows across parallel links (RS) stays near the reduction's optimum,");
    println!("while single-path routing pays the alpha-th power of the concentration.");
}
