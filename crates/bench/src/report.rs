//! Machine-readable experiment reports.
//!
//! Every benchmark binary can serialize its run to a `BENCH_<name>.json`
//! artifact built from the types in this module. The schema is versioned
//! ([`SCHEMA_VERSION`]) and validated ([`ExperimentReport::validate`]), and
//! the serialization is **canonical**: field order follows the struct
//! definitions, floats print via Rust's shortest round-trip formatting, and
//! nothing in the artifact depends on the machine, the wall clock or the
//! thread count — unless the run opts into `--timings`, which embeds
//! [`ExperimentReport::wall_clock_seconds`] and is documented to break the
//! byte-determinism contract.

use dcn_flow::workload::UniformWorkload;
use dcn_sim::SimSummary;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Version of the report schema; bump on any breaking field change.
///
/// * v2 — added the opt-in per-instance timing columns
///   [`InstanceRecord::solve_wall_ms`] and
///   [`InstanceRecord::intervals_per_second`] (both `null` outside
///   `--timings` runs).
/// * v3 — added the serving-throughput columns
///   [`InstanceRecord::requests_per_second`] and
///   [`InstanceRecord::p99_latency_ms`] for the `serve` bench (both
///   `null` outside `--timings` runs and for every batch experiment).
pub const SCHEMA_VERSION: u32 = 3;

/// One solved `(topology, workload, power-function, seed)` instance, as it
/// appears in the JSON artifact.
///
/// The record is shared by all experiments: `rs_*` fields describe the
/// **primary** algorithm of the experiment (Random-Schedule everywhere
/// except `example1`, where it is the optimal DCFS schedule) and `sp_*`
/// fields the **reference** it is compared against (SP+MCF, or the paper's
/// closed form). `lower_bound` is the normaliser: the fractional LB for the
/// sweeps, the analytic optimum for the hardness gadget, the closed-form
/// energy for `example1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// Human-readable instance label, e.g. `"x^2 flows=80 seed=80003"`.
    pub label: String,
    /// Number of flows in the instance.
    pub flows: usize,
    /// RNG seed of the instance.
    pub seed: u64,
    /// Speed-scaling exponent of the power function.
    pub alpha: f64,
    /// The normaliser (fractional LB, analytic optimum, or closed form).
    pub lower_bound: f64,
    /// Absolute energy of the primary algorithm.
    pub rs_energy: f64,
    /// Absolute energy of the reference.
    pub sp_energy: f64,
    /// `rs_energy / lower_bound`.
    pub rs_normalized: f64,
    /// `sp_energy / lower_bound`.
    pub sp_normalized: f64,
    /// Deadline misses across both schedules (zero for every sweep).
    pub deadline_misses: usize,
    /// Worst per-link capacity excess of the primary schedule's rounding.
    pub rs_capacity_excess: f64,
    /// Simulator verification of the primary schedule, when simulated.
    pub rs_sim: Option<SimSummary>,
    /// Simulator verification of the reference schedule, when simulated.
    pub sp_sim: Option<SimSummary>,
    /// Wall-clock of the instance's algorithm `solve` calls in
    /// milliseconds; only populated under `--timings` because timing
    /// columns are machine-dependent and break byte-for-byte artifact
    /// comparison.
    pub solve_wall_ms: Option<f64>,
    /// Relaxation-interval throughput (`intervals / solve seconds`) of the
    /// instance; only populated under `--timings` and only when the
    /// instance solved at least one interval in measurable time.
    pub intervals_per_second: Option<f64>,
    /// Sustained request throughput of the `serve` bench's closed-loop
    /// client (`requests / wall seconds`); only populated under
    /// `--timings`, `null` for every batch experiment.
    pub requests_per_second: Option<f64>,
    /// 99th-percentile admission latency of the `serve` bench in
    /// milliseconds; only populated under `--timings`, `null` for every
    /// batch experiment.
    pub p99_latency_ms: Option<f64>,
    /// Experiment-specific dimensions (e.g. `grain`, `lambda`, `budget`,
    /// `m`), in a fixed order.
    pub extra: Vec<(String, f64)>,
}

impl InstanceRecord {
    /// Looks an experiment-specific dimension up by name.
    pub fn extra(&self, key: &str) -> Option<f64> {
        self.extra.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// One averaged point of a sweep: the mean normalised energies of all
/// instances sharing a `(group, x)` coordinate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Series the point belongs to (e.g. `"x^2"`, one per table).
    pub group: String,
    /// Sweep coordinate (flow count, alpha, grain, ...).
    pub x: f64,
    /// Mean LB-normalised energy of the primary algorithm.
    pub rs: f64,
    /// Mean LB-normalised energy of the reference.
    pub sp: f64,
    /// Number of instances averaged.
    pub runs: usize,
}

/// The complete, versioned JSON artifact of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Schema version; always [`SCHEMA_VERSION`] for freshly written files.
    pub schema_version: u32,
    /// Experiment name (`fig2`, `ablation_alpha`, ...).
    pub experiment: String,
    /// Human-readable topology description.
    pub topology: String,
    /// The workload-descriptor template the instances were drawn from
    /// (`num_flows` and `seed` are overridden per instance), when the
    /// experiment uses the paper's uniform workload.
    pub workload: Option<UniformWorkload>,
    /// Every solved instance, in deterministic order.
    pub instances: Vec<InstanceRecord>,
    /// The averaged sweep table, in deterministic order.
    pub points: Vec<SweepPoint>,
    /// Wall-clock of the run in seconds; only embedded under `--timings`
    /// because it breaks byte-for-byte determinism across runs.
    pub wall_clock_seconds: Option<f64>,
}

impl ExperimentReport {
    /// Creates an empty report shell for an experiment.
    pub fn new(experiment: impl Into<String>, topology: impl Into<String>) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            experiment: experiment.into(),
            topology: topology.into(),
            workload: None,
            instances: Vec::new(),
            points: Vec::new(),
            wall_clock_seconds: None,
        }
    }

    /// Serializes the report to canonical pretty-printed JSON (trailing
    /// newline included).
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("reports always serialize");
        text.push('\n');
        text
    }

    /// Writes the canonical JSON to a file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be written.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Parses and validates a report from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a schema mismatch, or a
    /// validation failure (see [`Self::validate`]).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let report: Self = serde_json::from_str(text).map_err(|e| e.to_string())?;
        report.validate()?;
        Ok(report)
    }

    /// Checks the report's structural invariants: current schema version,
    /// non-empty experiment name and instance list, finite metrics, labelled
    /// instances and extras, and sweep points whose `runs` add up to no more
    /// than the instance count.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.experiment.is_empty() {
            return Err("experiment name is empty".to_string());
        }
        if self.instances.is_empty() {
            return Err("report contains no instances".to_string());
        }
        for (i, record) in self.instances.iter().enumerate() {
            if record.label.is_empty() {
                return Err(format!("instance {i} has an empty label"));
            }
            let metrics = [
                ("alpha", record.alpha),
                ("lower_bound", record.lower_bound),
                ("rs_energy", record.rs_energy),
                ("sp_energy", record.sp_energy),
                ("rs_normalized", record.rs_normalized),
                ("sp_normalized", record.sp_normalized),
                ("rs_capacity_excess", record.rs_capacity_excess),
            ];
            for (name, value) in metrics {
                if !value.is_finite() {
                    return Err(format!(
                        "instance {i} ({}): {name} not finite",
                        record.label
                    ));
                }
            }
            if record.lower_bound <= 0.0 {
                return Err(format!(
                    "instance {i} ({}): lower_bound must be positive",
                    record.label
                ));
            }
            for (name, value) in [
                ("solve_wall_ms", record.solve_wall_ms),
                ("intervals_per_second", record.intervals_per_second),
                ("requests_per_second", record.requests_per_second),
                ("p99_latency_ms", record.p99_latency_ms),
            ] {
                if let Some(value) = value {
                    if !value.is_finite() || value < 0.0 {
                        return Err(format!(
                            "instance {i} ({}): {name} must be finite and non-negative",
                            record.label
                        ));
                    }
                }
            }
            for (key, value) in &record.extra {
                if key.is_empty() {
                    return Err(format!("instance {i} ({}): empty extra key", record.label));
                }
                if !value.is_finite() {
                    return Err(format!(
                        "instance {i} ({}): extra {key:?} not finite",
                        record.label
                    ));
                }
            }
        }
        let averaged: usize = self.points.iter().map(|p| p.runs).sum();
        if averaged > self.instances.len() {
            return Err(format!(
                "sweep points average {averaged} runs but only {} instances exist",
                self.instances.len()
            ));
        }
        for (i, point) in self.points.iter().enumerate() {
            if point.group.is_empty() {
                return Err(format!("sweep point {i} has an empty group"));
            }
            if point.runs == 0 {
                return Err(format!("sweep point {i} averages zero runs"));
            }
            for (name, value) in [("x", point.x), ("rs", point.rs), ("sp", point.sp)] {
                if !value.is_finite() {
                    return Err(format!("sweep point {i}: {name} not finite"));
                }
            }
        }
        Ok(())
    }

    /// Groups instances by `(group, x)` in first-appearance order and
    /// appends the averaged [`SweepPoint`]s, using each record's
    /// `rs_normalized` / `sp_normalized`.
    ///
    /// `coordinates` supplies the `(group, x)` pair of every instance, in
    /// the same order as `self.instances`.
    ///
    /// # Panics
    ///
    /// Panics when `coordinates` and `instances` have different lengths.
    pub fn aggregate_points(&mut self, coordinates: &[(String, f64)]) {
        assert_eq!(
            coordinates.len(),
            self.instances.len(),
            "one (group, x) coordinate per instance"
        );
        // Insertion-ordered grouping: no HashMap, so the output order (and
        // therefore the JSON bytes) never depends on hasher state.
        let mut groups: Vec<((&String, u64), Vec<usize>)> = Vec::new();
        for (i, (group, x)) in coordinates.iter().enumerate() {
            let key = (group, x.to_bits());
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        for ((group, x_bits), members) in groups {
            let runs = members.len();
            let mean = |f: &dyn Fn(&InstanceRecord) -> f64| {
                members.iter().map(|&i| f(&self.instances[i])).sum::<f64>() / runs as f64
            };
            self.points.push(SweepPoint {
                group: group.clone(),
                x: f64::from_bits(x_bits),
                rs: mean(&|r| r.rs_normalized),
                sp: mean(&|r| r.sp_normalized),
                runs,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str) -> InstanceRecord {
        InstanceRecord {
            label: label.to_string(),
            flows: 10,
            seed: 3,
            alpha: 2.0,
            lower_bound: 100.0,
            rs_energy: 110.0,
            sp_energy: 130.0,
            rs_normalized: 1.1,
            sp_normalized: 1.3,
            deadline_misses: 0,
            rs_capacity_excess: 0.0,
            rs_sim: None,
            sp_sim: None,
            solve_wall_ms: None,
            intervals_per_second: None,
            requests_per_second: None,
            p99_latency_ms: None,
            extra: vec![("grain".to_string(), 2.0)],
        }
    }

    fn report() -> ExperimentReport {
        let mut r = ExperimentReport::new("unit", "fat-tree(k=4)");
        r.instances.push(record("a"));
        r.instances.push(record("b"));
        r.aggregate_points(&[("g".to_string(), 1.0), ("g".to_string(), 1.0)]);
        r
    }

    #[test]
    fn roundtrips_through_json() {
        let r = report();
        let back = ExperimentReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.instances[0].extra("grain"), Some(2.0));
        assert_eq!(back.instances[0].extra("absent"), None);
    }

    #[test]
    fn aggregation_averages_per_coordinate_in_order() {
        let mut r = ExperimentReport::new("unit", "t");
        for (label, rs) in [("a", 1.0), ("b", 3.0), ("c", 7.0)] {
            let mut rec = record(label);
            rec.rs_normalized = rs;
            r.instances.push(rec);
        }
        r.aggregate_points(&[
            ("g2".to_string(), 5.0),
            ("g1".to_string(), 5.0),
            ("g2".to_string(), 5.0),
        ]);
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.points[0].group, "g2");
        assert_eq!(r.points[0].runs, 2);
        assert!((r.points[0].rs - 4.0).abs() < 1e-12);
        assert_eq!(r.points[1].group, "g1");
        assert_eq!(r.points[1].runs, 1);
    }

    #[test]
    fn validation_catches_schema_and_value_errors() {
        let mut r = report();
        r.schema_version = 99;
        assert!(r.validate().unwrap_err().contains("schema_version"));

        let mut r = report();
        r.instances.clear();
        r.points.clear();
        assert!(r.validate().unwrap_err().contains("no instances"));

        let mut r = report();
        r.instances[0].rs_energy = f64::NAN;
        assert!(r.validate().unwrap_err().contains("rs_energy"));

        let mut r = report();
        r.instances[0].lower_bound = 0.0;
        assert!(r.validate().unwrap_err().contains("lower_bound"));

        let mut r = report();
        r.points[0].runs = 9;
        assert!(r.validate().unwrap_err().contains("average"));

        let mut r = report();
        r.instances[0].solve_wall_ms = Some(-1.0);
        assert!(r.validate().unwrap_err().contains("solve_wall_ms"));

        let mut r = report();
        r.instances[0].intervals_per_second = Some(f64::INFINITY);
        assert!(r.validate().unwrap_err().contains("intervals_per_second"));

        let mut r = report();
        r.instances[0].requests_per_second = Some(-5.0);
        assert!(r.validate().unwrap_err().contains("requests_per_second"));

        let mut r = report();
        r.instances[0].p99_latency_ms = Some(f64::NAN);
        assert!(r.validate().unwrap_err().contains("p99_latency_ms"));
    }

    #[test]
    fn timing_columns_default_to_null_and_roundtrip_when_set() {
        let r = report();
        let json = r.to_json();
        assert!(json.contains("\"solve_wall_ms\": null"));
        assert!(json.contains("\"intervals_per_second\": null"));

        let mut r = report();
        r.instances[0].solve_wall_ms = Some(12.5);
        r.instances[0].intervals_per_second = Some(400.0);
        let back = ExperimentReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.instances[0].solve_wall_ms, Some(12.5));
        assert_eq!(back.instances[0].intervals_per_second, Some(400.0));
    }

    #[test]
    fn nan_does_not_sneak_through_serialization() {
        // The JSON stand-in writes non-finite floats as null, which fails
        // to parse back into the non-optional f64 field: a NaN metric can
        // never produce a loadable artifact.
        let mut r = report();
        r.instances[0].alpha = f64::NAN;
        assert!(ExperimentReport::from_json(&r.to_json()).is_err());
    }
}
