//! Shared harness code for the benchmark binaries that regenerate the
//! paper's evaluation (Fig. 2) and the extension experiments documented in
//! `EXPERIMENTS.md`.
//!
//! The crate is an experiment-runner subsystem in three layers:
//!
//! * **this module** — the solving primitives ([`run_instance`],
//!   [`run_flow_set`]) and the declarative [`Experiment`] descriptor
//!   (name, topologies, workload template, instance grid);
//! * **[`runner`]** — the scoped worker pool that fans independent
//!   `(seed, flow-count)` instances out across cores, plus the
//!   [`runner::ExperimentCli`] shared by every binary;
//! * **[`report`]** — the versioned, canonical JSON artifact
//!   (`BENCH_<name>.json`) each run can be serialized to.
//!
//! Every binary builds on [`run_instance`]: generate the paper's workload
//! for a given flow count and seed, solve the per-interval relaxation once
//! (its cost is the `LB` normaliser), run Random-Schedule on that
//! relaxation, run the SP+MCF baseline, verify both against the instance
//! with the fluid simulator, and report LB-normalised energies.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod report;
pub mod runner;

use dcn_core::baselines;
use dcn_core::dcfsr::{RandomSchedule, RandomScheduleConfig};
use dcn_core::relaxation::interval_relaxation_on;
use dcn_flow::workload::UniformWorkload;
use dcn_flow::FlowSet;
use dcn_power::PowerFunction;
use dcn_sim::{SimSummary, Simulator};
use dcn_solver::fmcf::FmcfSolverConfig;
use dcn_topology::builders::BuiltTopology;
use serde::Serialize;

use report::{ExperimentReport, InstanceRecord};

/// The result of one (topology, workload, power-function, seed) instance.
#[derive(Debug, Clone, Serialize)]
pub struct InstanceResult {
    /// Number of flows in the instance.
    pub flows: usize,
    /// RNG seed of the workload.
    pub seed: u64,
    /// The speed-scaling exponent alpha of the power function.
    pub alpha: f64,
    /// The fractional lower bound LB.
    pub lower_bound: f64,
    /// Energy of Random-Schedule (absolute).
    pub rs_energy: f64,
    /// Energy of the SP+MCF baseline (absolute).
    pub sp_energy: f64,
    /// Number of deadline misses measured by the simulator (must be zero).
    pub deadline_misses: usize,
    /// Worst per-link capacity excess of the Random-Schedule draw.
    pub rs_capacity_excess: f64,
    /// Simulator verification of the Random-Schedule schedule.
    pub rs_sim: SimSummary,
    /// Simulator verification of the SP+MCF schedule.
    pub sp_sim: SimSummary,
}

impl InstanceResult {
    /// Random-Schedule energy normalised by the lower bound.
    pub fn rs_normalized(&self) -> f64 {
        self.rs_energy / self.lower_bound
    }

    /// SP+MCF energy normalised by the lower bound.
    pub fn sp_normalized(&self) -> f64 {
        self.sp_energy / self.lower_bound
    }
}

/// A Frank–Wolfe configuration tuned for the benchmark harness: slightly
/// looser than the library default so the fat-tree(8) sweeps finish in
/// minutes rather than hours, while keeping the lower bound within a couple
/// of percent of the converged value.
pub fn harness_fmcf_config() -> FmcfSolverConfig {
    FmcfSolverConfig {
        max_iterations: 25,
        tolerance: 1e-3,
        line_search_steps: 24,
        ..Default::default()
    }
}

/// Runs one instance of the Fig. 2 experiment on an arbitrary topology and
/// flow set.
///
/// # Panics
///
/// Panics if the schedulers fail or produce schedules with deadline misses
/// — these are invariants of the algorithms, so a violation indicates a bug
/// rather than an expected error path.
pub fn run_flow_set(
    topo: &BuiltTopology,
    flows: &FlowSet,
    power: &PowerFunction,
    seed: u64,
) -> InstanceResult {
    // One CSR view per instance, shared by the relaxation's interval loop
    // and both simulator verifications.
    let graph = topo.csr();
    let relaxation = interval_relaxation_on(&graph, flows, power, &harness_fmcf_config());
    let rs = RandomSchedule::new(RandomScheduleConfig {
        fmcf: harness_fmcf_config(),
        seed,
        ..Default::default()
    })
    .run_with_relaxation(&topo.network, flows, power, &relaxation)
    .expect("Random-Schedule must succeed on connected topologies");
    let sp = baselines::sp_mcf(&topo.network, flows, power)
        .expect("SP+MCF must succeed on connected topologies");

    let simulator = Simulator::new(*power);
    let rs_report = simulator.run_on(&graph, flows, &rs.schedule);
    let sp_report = simulator.run_on(&graph, flows, &sp);
    assert_eq!(
        rs_report.deadline_misses, 0,
        "Random-Schedule must meet every deadline (Theorem 4)"
    );
    assert_eq!(
        sp_report.deadline_misses, 0,
        "Most-Critical-First must meet every deadline"
    );

    InstanceResult {
        flows: flows.len(),
        seed,
        alpha: power.alpha(),
        lower_bound: relaxation.lower_bound,
        rs_energy: rs_report.energy.total(),
        sp_energy: sp_report.energy.total(),
        deadline_misses: rs_report.deadline_misses + sp_report.deadline_misses,
        rs_capacity_excess: rs.capacity_excess,
        rs_sim: rs_report.summary(),
        sp_sim: sp_report.summary(),
    }
}

/// Generates the paper's uniform workload and runs one instance.
pub fn run_instance(
    topo: &BuiltTopology,
    num_flows: usize,
    seed: u64,
    power: &PowerFunction,
) -> InstanceResult {
    let flows = UniformWorkload::paper_defaults(num_flows, seed)
        .generate(topo.hosts())
        .expect("workload generation succeeds on topologies with >= 2 hosts");
    run_flow_set(topo, &flows, power, seed)
}

/// The two power functions of the paper's Fig. 2: `x^2` and `x^4` on links
/// of capacity 10 (the builders' default).
pub fn fig2_power_functions() -> Vec<PowerFunction> {
    vec![
        PowerFunction::speed_scaling_only(1.0, 2.0, dcn_topology::builders::DEFAULT_CAPACITY),
        PowerFunction::speed_scaling_only(1.0, 4.0, dcn_topology::builders::DEFAULT_CAPACITY),
    ]
}

/// Prints an experiment table row-by-row in a fixed-width format shared by
/// all binaries.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(String::len).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!();
}

/// The flows one experiment instance solves.
#[derive(Debug, Clone)]
pub enum InstanceInput {
    /// Draw `flows` flows from the experiment's [`UniformWorkload`]
    /// template (with `num_flows` and `seed` overridden per instance).
    Uniform {
        /// Number of flows to draw.
        flows: usize,
    },
    /// Solve an explicit, pre-built flow set (used by the ablations that
    /// post-process the workload, e.g. interval quantisation).
    Explicit(FlowSet),
}

/// One cell of an experiment's instance grid.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// Series the instance belongs to (one table per group, e.g. `"x^2"`).
    pub group: String,
    /// Sweep coordinate within the group (flow count, alpha, grain, ...).
    pub x: f64,
    /// Index into the experiment's topology list.
    pub topology: usize,
    /// The power function of this instance.
    pub power: PowerFunction,
    /// The flows to solve.
    pub input: InstanceInput,
    /// Seed for workload generation and randomized rounding.
    pub seed: u64,
    /// Experiment-specific dimensions recorded verbatim in the artifact.
    pub extra: Vec<(String, f64)>,
}

/// A declarative experiment: a name, the topologies it runs on, an optional
/// uniform-workload template, and the grid of instances to solve.
///
/// [`Experiment::run`] fans the grid out over [`runner::run_indexed`] —
/// every instance is an independent, internally seeded unit of work — and
/// assembles the [`ExperimentReport`] artifact with one [`InstanceRecord`]
/// per instance (in grid order) plus the `(group, x)`-averaged sweep
/// points. The artifact is byte-identical for a fixed grid regardless of
/// the thread count.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment name (also names the default `BENCH_<name>.json`).
    pub name: String,
    /// The topologies instances reference by index.
    pub topologies: Vec<BuiltTopology>,
    /// Template for [`InstanceInput::Uniform`] instances; `None` means
    /// paper defaults.
    pub workload: Option<UniformWorkload>,
    /// The instance grid, in deterministic order.
    pub instances: Vec<InstanceSpec>,
}

/// The outcome of [`Experiment::run`]: the artifact plus the measured
/// wall-clock (kept outside the report so the default artifact stays
/// deterministic).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The assembled report.
    pub report: ExperimentReport,
    /// Wall-clock of the whole run in seconds.
    pub elapsed_seconds: f64,
}

impl Experiment {
    /// Creates an experiment with an empty instance grid.
    pub fn new(name: impl Into<String>, topologies: Vec<BuiltTopology>) -> Self {
        Self {
            name: name.into(),
            topologies,
            workload: None,
            instances: Vec::new(),
        }
    }

    /// Appends one instance to the grid.
    pub fn push(&mut self, spec: InstanceSpec) {
        self.instances.push(spec);
    }

    /// Solves the whole grid on `threads` workers and assembles the
    /// artifact.
    ///
    /// # Panics
    ///
    /// Panics when an instance references a topology index out of range,
    /// when workload generation fails, or when a scheduler violates its
    /// invariants (see [`run_flow_set`]).
    pub fn run(&self, threads: usize) -> RunOutcome {
        let total = self.instances.len();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let (results, elapsed_seconds) = runner::timed(|| {
            runner::run_indexed(total, threads, |i| {
                let result = self.solve(i);
                let spec = &self.instances[i];
                let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                eprintln!(
                    "  [{}] {n}/{total} {} x={} seed={}",
                    self.name, spec.group, spec.x, spec.seed
                );
                result
            })
        });
        let mut report = ExperimentReport::new(&self.name, self.topology_description());
        // Record the workload template the uniform instances were drawn
        // from (num_flows/seed are the per-instance overrides, so the
        // template's own values for those two fields are zeroed).
        report.workload = self.workload.clone().or_else(|| {
            self.instances
                .iter()
                .any(|s| matches!(s.input, InstanceInput::Uniform { .. }))
                .then(|| UniformWorkload::paper_defaults(0, 0))
        });
        let mut coordinates = Vec::with_capacity(self.instances.len());
        for (spec, result) in self.instances.iter().zip(&results) {
            report.instances.push(Self::record(spec, result));
            coordinates.push((spec.group.clone(), spec.x));
        }
        report.aggregate_points(&coordinates);
        RunOutcome {
            report,
            elapsed_seconds,
        }
    }

    /// Solves the `i`-th instance of the grid.
    fn solve(&self, i: usize) -> InstanceResult {
        let spec = &self.instances[i];
        let topo = &self.topologies[spec.topology];
        match &spec.input {
            InstanceInput::Uniform { flows } => {
                let mut workload = self
                    .workload
                    .clone()
                    .unwrap_or_else(|| UniformWorkload::paper_defaults(*flows, spec.seed));
                workload.num_flows = *flows;
                workload.seed = spec.seed;
                let flow_set = workload
                    .generate(topo.hosts())
                    .expect("workload generation succeeds on topologies with >= 2 hosts");
                run_flow_set(topo, &flow_set, &spec.power, spec.seed)
            }
            InstanceInput::Explicit(flow_set) => {
                run_flow_set(topo, flow_set, &spec.power, spec.seed)
            }
        }
    }

    /// Builds the artifact record of one solved instance.
    fn record(spec: &InstanceSpec, result: &InstanceResult) -> InstanceRecord {
        InstanceRecord {
            label: format!("{} x={} seed={}", spec.group, spec.x, spec.seed),
            flows: result.flows,
            seed: result.seed,
            alpha: result.alpha,
            lower_bound: result.lower_bound,
            rs_energy: result.rs_energy,
            sp_energy: result.sp_energy,
            rs_normalized: result.rs_normalized(),
            sp_normalized: result.sp_normalized(),
            deadline_misses: result.deadline_misses,
            rs_capacity_excess: result.rs_capacity_excess,
            rs_sim: Some(result.rs_sim),
            sp_sim: Some(result.sp_sim),
            extra: spec.extra.clone(),
        }
    }

    /// Human-readable list of the topologies in use.
    fn topology_description(&self) -> String {
        self.topologies
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;

    #[test]
    fn run_instance_produces_sane_numbers() {
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        let r = run_instance(&topo, 15, 3, &power);
        assert_eq!(r.flows, 15);
        assert!(r.lower_bound > 0.0);
        assert!(r.rs_energy >= r.lower_bound - 1e-6);
        assert!(r.sp_energy >= r.lower_bound - 1e-6);
        assert!(r.rs_normalized() >= 1.0 - 1e-9);
        assert!(r.sp_normalized() >= 1.0 - 1e-9);
        assert_eq!(r.deadline_misses, 0);
    }

    #[test]
    fn experiment_grid_runs_and_aggregates() {
        let mut exp = Experiment::new("unit", vec![builders::fat_tree(4)]);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        for flows in [8usize, 12] {
            for run in 0..2u64 {
                exp.push(InstanceSpec {
                    group: "x^2".to_string(),
                    x: flows as f64,
                    topology: 0,
                    power,
                    input: InstanceInput::Uniform { flows },
                    seed: 100 * flows as u64 + run,
                    extra: vec![("run".to_string(), run as f64)],
                });
            }
        }
        let outcome = exp.run(1);
        let report = &outcome.report;
        report.validate().expect("artifact validates");
        assert_eq!(report.instances.len(), 4);
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.points[0].runs, 2);
        assert_eq!(report.topology, "fat-tree(k=4)");
        let template = report.workload.as_ref().expect("uniform template recorded");
        assert_eq!(template.num_flows, 0, "per-instance override is zeroed");
        assert_eq!(template.horizon_end, 100.0);
        assert!(report.points.iter().all(|p| p.rs >= 1.0 - 1e-9));
        assert!(report
            .instances
            .iter()
            .all(|r| r.rs_sim.expect("simulated").all_good()));
        assert!(outcome.elapsed_seconds >= 0.0);
    }

    #[test]
    fn experiment_report_is_thread_count_invariant() {
        let mut exp = Experiment::new("unit", vec![builders::fat_tree(4)]);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        for run in 0..3u64 {
            exp.push(InstanceSpec {
                group: "x^2".to_string(),
                x: 10.0,
                topology: 0,
                power,
                input: InstanceInput::Uniform { flows: 10 },
                seed: run,
                extra: vec![],
            });
        }
        let serial = exp.run(1).report.to_json();
        let parallel = exp.run(3).report.to_json();
        assert_eq!(serial, parallel, "JSON must not depend on --threads");
    }

    #[test]
    fn fig2_power_functions_match_the_paper() {
        let p = fig2_power_functions();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].alpha(), 2.0);
        assert_eq!(p[1].alpha(), 4.0);
        assert_eq!(p[0].sigma(), 0.0);
    }
}
