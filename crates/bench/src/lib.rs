//! Shared harness code for the benchmark binaries that regenerate the
//! paper's evaluation (Fig. 2) and the extension experiments documented in
//! `EXPERIMENTS.md`.
//!
//! Every binary builds on [`run_instance`]: generate the paper's workload
//! for a given flow count and seed, solve the per-interval relaxation once
//! (its cost is the `LB` normaliser), run Random-Schedule on that
//! relaxation, run the SP+MCF baseline, verify both against the instance
//! with the fluid simulator, and report LB-normalised energies.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dcn_core::baselines;
use dcn_core::dcfsr::{RandomSchedule, RandomScheduleConfig};
use dcn_core::relaxation::interval_relaxation;
use dcn_flow::workload::UniformWorkload;
use dcn_flow::FlowSet;
use dcn_power::PowerFunction;
use dcn_sim::Simulator;
use dcn_solver::fmcf::FmcfSolverConfig;
use dcn_topology::builders::BuiltTopology;
use serde::Serialize;

/// The result of one (topology, workload, power-function, seed) instance.
#[derive(Debug, Clone, Serialize)]
pub struct InstanceResult {
    /// Number of flows in the instance.
    pub flows: usize,
    /// RNG seed of the workload.
    pub seed: u64,
    /// The speed-scaling exponent alpha of the power function.
    pub alpha: f64,
    /// The fractional lower bound LB.
    pub lower_bound: f64,
    /// Energy of Random-Schedule (absolute).
    pub rs_energy: f64,
    /// Energy of the SP+MCF baseline (absolute).
    pub sp_energy: f64,
    /// Number of deadline misses measured by the simulator (must be zero).
    pub deadline_misses: usize,
    /// Worst per-link capacity excess of the Random-Schedule draw.
    pub rs_capacity_excess: f64,
}

impl InstanceResult {
    /// Random-Schedule energy normalised by the lower bound.
    pub fn rs_normalized(&self) -> f64 {
        self.rs_energy / self.lower_bound
    }

    /// SP+MCF energy normalised by the lower bound.
    pub fn sp_normalized(&self) -> f64 {
        self.sp_energy / self.lower_bound
    }
}

/// A Frank–Wolfe configuration tuned for the benchmark harness: slightly
/// looser than the library default so the fat-tree(8) sweeps finish in
/// minutes rather than hours, while keeping the lower bound within a couple
/// of percent of the converged value.
pub fn harness_fmcf_config() -> FmcfSolverConfig {
    FmcfSolverConfig {
        max_iterations: 25,
        tolerance: 1e-3,
        line_search_steps: 24,
        ..Default::default()
    }
}

/// Runs one instance of the Fig. 2 experiment on an arbitrary topology and
/// flow set.
///
/// # Panics
///
/// Panics if the schedulers fail or produce schedules with deadline misses
/// — these are invariants of the algorithms, so a violation indicates a bug
/// rather than an expected error path.
pub fn run_flow_set(
    topo: &BuiltTopology,
    flows: &FlowSet,
    power: &PowerFunction,
    seed: u64,
) -> InstanceResult {
    let relaxation = interval_relaxation(&topo.network, flows, power, &harness_fmcf_config());
    let rs = RandomSchedule::new(RandomScheduleConfig {
        fmcf: harness_fmcf_config(),
        seed,
        ..Default::default()
    })
    .run_with_relaxation(&topo.network, flows, power, &relaxation)
    .expect("Random-Schedule must succeed on connected topologies");
    let sp = baselines::sp_mcf(&topo.network, flows, power)
        .expect("SP+MCF must succeed on connected topologies");

    let simulator = Simulator::new(*power);
    let rs_report = simulator.run(&topo.network, flows, &rs.schedule);
    let sp_report = simulator.run(&topo.network, flows, &sp);
    assert_eq!(
        rs_report.deadline_misses, 0,
        "Random-Schedule must meet every deadline (Theorem 4)"
    );
    assert_eq!(
        sp_report.deadline_misses, 0,
        "Most-Critical-First must meet every deadline"
    );

    InstanceResult {
        flows: flows.len(),
        seed,
        alpha: power.alpha(),
        lower_bound: relaxation.lower_bound,
        rs_energy: rs_report.energy.total(),
        sp_energy: sp_report.energy.total(),
        deadline_misses: rs_report.deadline_misses + sp_report.deadline_misses,
        rs_capacity_excess: rs.capacity_excess,
    }
}

/// Generates the paper's uniform workload and runs one instance.
pub fn run_instance(
    topo: &BuiltTopology,
    num_flows: usize,
    seed: u64,
    power: &PowerFunction,
) -> InstanceResult {
    let flows = UniformWorkload::paper_defaults(num_flows, seed)
        .generate(topo.hosts())
        .expect("workload generation succeeds on topologies with >= 2 hosts");
    run_flow_set(topo, &flows, power, seed)
}

/// Averages the normalised energies of several runs of the same
/// configuration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AveragedPoint {
    /// Number of flows.
    pub flows: usize,
    /// Mean LB-normalised energy of Random-Schedule.
    pub rs: f64,
    /// Mean LB-normalised energy of SP+MCF.
    pub sp: f64,
    /// Number of runs averaged.
    pub runs: usize,
}

/// Averages a slice of instance results (all with the same flow count).
pub fn average(results: &[InstanceResult]) -> AveragedPoint {
    assert!(!results.is_empty(), "cannot average zero runs");
    let flows = results[0].flows;
    let rs = results
        .iter()
        .map(InstanceResult::rs_normalized)
        .sum::<f64>()
        / results.len() as f64;
    let sp = results
        .iter()
        .map(InstanceResult::sp_normalized)
        .sum::<f64>()
        / results.len() as f64;
    AveragedPoint {
        flows,
        rs,
        sp,
        runs: results.len(),
    }
}

/// The two power functions of the paper's Fig. 2: `x^2` and `x^4` on links
/// of capacity 10 (the builders' default).
pub fn fig2_power_functions() -> Vec<PowerFunction> {
    vec![
        PowerFunction::speed_scaling_only(1.0, 2.0, dcn_topology::builders::DEFAULT_CAPACITY),
        PowerFunction::speed_scaling_only(1.0, 4.0, dcn_topology::builders::DEFAULT_CAPACITY),
    ]
}

/// Prints an experiment table row-by-row in a fixed-width format shared by
/// all binaries.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(String::len).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!();
}

/// Parses a `--flag value` style option from the command line.
pub fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Returns `true` when `--flag` appears on the command line.
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;

    #[test]
    fn run_instance_produces_sane_numbers() {
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        let r = run_instance(&topo, 15, 3, &power);
        assert_eq!(r.flows, 15);
        assert!(r.lower_bound > 0.0);
        assert!(r.rs_energy >= r.lower_bound - 1e-6);
        assert!(r.sp_energy >= r.lower_bound - 1e-6);
        assert!(r.rs_normalized() >= 1.0 - 1e-9);
        assert!(r.sp_normalized() >= 1.0 - 1e-9);
        assert_eq!(r.deadline_misses, 0);
    }

    #[test]
    fn average_combines_runs() {
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        let results: Vec<_> = (0..2).map(|s| run_instance(&topo, 10, s, &power)).collect();
        let avg = average(&results);
        assert_eq!(avg.flows, 10);
        assert_eq!(avg.runs, 2);
        assert!(avg.rs >= 1.0 - 1e-9);
        assert!(avg.sp >= 1.0 - 1e-9);
    }

    #[test]
    fn arg_parsing_helpers() {
        let args: Vec<String> = ["--runs", "5", "--full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value::<usize>(&args, "--runs"), Some(5));
        assert_eq!(arg_value::<usize>(&args, "--flows"), None);
        assert!(arg_present(&args, "--full"));
        assert!(!arg_present(&args, "--quick"));
    }

    #[test]
    fn fig2_power_functions_match_the_paper() {
        let p = fig2_power_functions();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].alpha(), 2.0);
        assert_eq!(p[1].alpha(), 4.0);
        assert_eq!(p[0].sigma(), 0.0);
    }
}
