//! Shared harness code for the benchmark binaries that regenerate the
//! paper's evaluation (Fig. 2) and the extension experiments documented in
//! `EXPERIMENTS.md`.
//!
//! The crate is an experiment-runner subsystem in three layers:
//!
//! * **this module** — the solving primitives ([`run_instance`],
//!   [`run_flow_set`], [`run_flow_set_algorithms`], and
//!   [`run_online_flow_set`] for the event-driven online sweeps, with the
//!   policy selected by name through the
//!   [`dcn_core::online::PolicyRegistry`]) and
//!   the declarative [`Experiment`] descriptor (name, topologies, workload
//!   template, **algorithm list**, instance grid);
//! * **[`runner`]** — the scoped worker pool that fans independent
//!   `(seed, flow-count)` instances out across cores, plus the
//!   [`runner::ExperimentCli`] shared by every binary;
//! * **[`report`]** — the versioned, canonical JSON artifact
//!   (`BENCH_<name>.json`) each run can be serialized to.
//!
//! Schedulers are selected **by name** through the
//! [`dcn_core::AlgorithmRegistry`] ([`harness_registry`] re-registers
//! `dcfsr` and `lb` with the harness-tuned Frank–Wolfe configuration).
//! Every instance builds one [`SolverContext`] per solve, runs the
//! experiment's algorithm list on it — the first algorithm is the
//! **primary** (the `rs_*` artifact fields), the second the **reference**
//! (`sp_*`), any further ones land in the record's `extra` dimensions —
//! and verifies each schedule with the fluid simulator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod report;
pub mod runner;

use dcn_core::online::{AdmissionRule, OnlineEngine, OnlineOutcome, PolicyRegistry, ShardMode};
use dcn_core::{
    AlgorithmRegistry, Dcfsr, ParallelConfig, RandomScheduleConfig, RelaxationLb, SolverContext,
};
use dcn_flow::workload::UniformWorkload;
use dcn_flow::FlowSet;
use dcn_power::PowerFunction;
use dcn_sim::{SimSummary, Simulator};
use dcn_solver::fmcf::FmcfSolverConfig;
use dcn_topology::builders::BuiltTopology;
use serde::Serialize;

use report::{ExperimentReport, InstanceRecord};

/// The default algorithm pair of every experiment: Random-Schedule as the
/// primary, the paper's SP+MCF baseline as the reference.
pub const DEFAULT_ALGORITHMS: [&str; 2] = ["dcfsr", "sp-mcf"];

/// [`DEFAULT_ALGORITHMS`] as owned strings (the shape
/// [`Experiment::algorithms`] stores).
pub fn default_algorithms() -> Vec<String> {
    DEFAULT_ALGORITHMS.iter().map(|s| s.to_string()).collect()
}

/// The result of one (topology, workload, power-function, seed) instance.
#[derive(Debug, Clone, Serialize)]
pub struct InstanceResult {
    /// Number of flows in the instance.
    pub flows: usize,
    /// RNG seed of the workload.
    pub seed: u64,
    /// The speed-scaling exponent alpha of the power function.
    pub alpha: f64,
    /// The fractional lower bound LB.
    pub lower_bound: f64,
    /// Energy of the primary algorithm (absolute, simulated).
    pub rs_energy: f64,
    /// Energy of the reference algorithm (absolute, simulated).
    pub sp_energy: f64,
    /// Number of deadline misses measured by the simulator (must be zero).
    pub deadline_misses: usize,
    /// Worst per-link capacity excess of the primary algorithm's schedule.
    pub rs_capacity_excess: f64,
    /// Simulator verification of the primary schedule.
    pub rs_sim: SimSummary,
    /// Simulator verification of the reference schedule.
    pub sp_sim: SimSummary,
    /// Simulated energies of any algorithm beyond the first two, as
    /// `("<name>_energy", energy)` pairs in selection order.
    pub extra_energies: Vec<(String, f64)>,
    /// Wall-clock spent inside the algorithms' `solve` calls, in
    /// milliseconds (simulator verification excluded). Only surfaces in
    /// the artifact when the experiment opts into `--timings`.
    pub solve_wall_ms: f64,
    /// Total relaxation intervals solved across the instance's algorithms
    /// (summed over every algorithm that reports the diagnostic).
    pub relaxation_intervals: usize,
}

impl InstanceResult {
    /// Primary-algorithm energy normalised by the lower bound.
    pub fn rs_normalized(&self) -> f64 {
        self.rs_energy / self.lower_bound
    }

    /// Reference-algorithm energy normalised by the lower bound.
    pub fn sp_normalized(&self) -> f64 {
        self.sp_energy / self.lower_bound
    }
}

/// A Frank–Wolfe configuration tuned for the benchmark harness: slightly
/// looser than the library default so the fat-tree(8) sweeps finish in
/// minutes rather than hours, while keeping the lower bound within a couple
/// of percent of the converged value.
pub fn harness_fmcf_config() -> FmcfSolverConfig {
    FmcfSolverConfig {
        max_iterations: 25,
        tolerance: 1e-3,
        line_search_steps: 24,
        ..Default::default()
    }
}

/// The algorithm registry of the benchmark harness: the library defaults
/// with `dcfsr` and `lb` re-registered on [`harness_fmcf_config`].
pub fn harness_registry() -> AlgorithmRegistry {
    let mut registry = AlgorithmRegistry::with_defaults();
    registry.register("dcfsr", || {
        Box::new(Dcfsr::new(RandomScheduleConfig {
            fmcf: harness_fmcf_config(),
            ..Default::default()
        }))
    });
    registry.register("lb", || Box::new(RelaxationLb::new(harness_fmcf_config())));
    registry
}

/// Runs one instance with the default algorithm pair
/// ([`DEFAULT_ALGORITHMS`]) through [`harness_registry`].
///
/// # Panics
///
/// See [`run_flow_set_algorithms`].
pub fn run_flow_set(
    topo: &BuiltTopology,
    flows: &FlowSet,
    power: &PowerFunction,
    seed: u64,
) -> InstanceResult {
    run_flow_set_algorithms(
        topo,
        flows,
        power,
        seed,
        &default_algorithms(),
        &harness_registry(),
    )
}

/// Runs one instance of an experiment on an arbitrary topology and flow
/// set, with an explicit algorithm selection.
///
/// One [`SolverContext`] is built per instance and shared by every
/// algorithm run (warm CSR view, shortest-path arenas and Frank–Wolfe
/// buffers) and by the simulator verifications. `algorithms[0]` is the
/// primary (`rs_*` fields), `algorithms[1]` the reference (`sp_*`), any
/// further names land in [`InstanceResult::extra_energies`]. The lower
/// bound is taken from the first algorithm that computes one (`dcfsr`,
/// `lb`); when none does, the `lb` algorithm is run additionally.
///
/// `seed` re-seeds every algorithm's randomness ([`dcn_core::Algorithm::set_seed`]).
///
/// # Panics
///
/// Panics when fewer than two algorithms are selected, when a name is not
/// registered, when the first two algorithms do not produce schedules,
/// when a scheduler fails, or when a primary/reference schedule misses a
/// deadline — these are invariants of the experiments, so a violation
/// indicates a bug rather than an expected error path.
pub fn run_flow_set_algorithms(
    topo: &BuiltTopology,
    flows: &FlowSet,
    power: &PowerFunction,
    seed: u64,
    algorithms: &[String],
    registry: &AlgorithmRegistry,
) -> InstanceResult {
    run_flow_set_algorithms_threads(topo, flows, power, seed, algorithms, registry, 1)
}

/// [`run_flow_set_algorithms`] with the instance's [`SolverContext`]
/// configured to solve independent relaxation intervals on
/// `solver_threads` pool workers ([`ParallelConfig`]).
///
/// The solution is bit-identical at any `solver_threads` — parallelism
/// only changes wall-clock (and the opt-in
/// [`InstanceResult::solve_wall_ms`] measurement). When instances are
/// themselves sharded across `--threads` workers, the nested interval
/// pools run inline, so the two axes compose without oversubscription.
///
/// # Panics
///
/// See [`run_flow_set_algorithms`].
pub fn run_flow_set_algorithms_threads(
    topo: &BuiltTopology,
    flows: &FlowSet,
    power: &PowerFunction,
    seed: u64,
    algorithms: &[String],
    registry: &AlgorithmRegistry,
    solver_threads: usize,
) -> InstanceResult {
    assert!(
        algorithms.len() >= 2,
        "an experiment needs a primary and a reference algorithm, got {algorithms:?}"
    );
    let mut ctx =
        SolverContext::from_network(&topo.network).expect("builder topologies always validate");
    ctx.set_parallelism(ParallelConfig::with_threads(solver_threads));
    let simulator = Simulator::new(*power);

    struct Ran {
        name: String,
        sim: Option<SimSummary>,
        energy: f64,
        lower_bound: Option<f64>,
        capacity_excess: f64,
    }

    let mut ran: Vec<Ran> = Vec::with_capacity(algorithms.len());
    let mut solve_wall_ms = 0.0;
    let mut relaxation_intervals = 0;
    for name in algorithms {
        let mut algo = registry
            .create(name)
            .unwrap_or_else(|e| panic!("cannot select algorithm: {e}"));
        algo.set_seed(seed);
        let (solution, solve_seconds) = runner::timed(|| algo.solve(&mut ctx, flows, power));
        let solution =
            solution.unwrap_or_else(|e| panic!("{name} must solve connected instances: {e}"));
        solve_wall_ms += solve_seconds * 1e3;
        relaxation_intervals += solution.diagnostics.relaxation_intervals.unwrap_or(0);
        match &solution.schedule {
            Some(schedule) => {
                let sim = simulator.run_ctx(&ctx, flows, schedule);
                ran.push(Ran {
                    name: name.clone(),
                    sim: Some(sim.summary()),
                    energy: sim.energy.total(),
                    lower_bound: solution.lower_bound,
                    capacity_excess: solution.diagnostics.capacity_excess.unwrap_or(0.0),
                });
            }
            None => ran.push(Ran {
                name: name.clone(),
                sim: None,
                energy: solution.lower_bound.unwrap_or(0.0),
                lower_bound: solution.lower_bound,
                capacity_excess: 0.0,
            }),
        }
    }

    let lower_bound = ran.iter().find_map(|r| r.lower_bound).unwrap_or_else(|| {
        registry
            .create("lb")
            .expect("lb is always registered")
            .solve(&mut ctx, flows, power)
            .expect("the relaxation solves on connected instances")
            .lower_bound
            .expect("lb reports a bound")
    });

    let rs_sim = ran[0]
        .sim
        .expect("the primary algorithm must produce a schedule");
    let sp_sim = ran[1]
        .sim
        .expect("the reference algorithm must produce a schedule");
    assert_eq!(
        rs_sim.deadline_misses, 0,
        "{} must meet every deadline",
        ran[0].name
    );
    assert_eq!(
        sp_sim.deadline_misses, 0,
        "{} must meet every deadline",
        ran[1].name
    );

    InstanceResult {
        flows: flows.len(),
        seed,
        alpha: power.alpha(),
        lower_bound,
        rs_energy: ran[0].energy,
        sp_energy: ran[1].energy,
        deadline_misses: rs_sim.deadline_misses + sp_sim.deadline_misses,
        rs_capacity_excess: ran[0].capacity_excess,
        rs_sim,
        sp_sim,
        extra_energies: ran[2..]
            .iter()
            .map(|r| (format!("{}_energy", r.name), r.energy))
            .collect(),
        solve_wall_ms,
        relaxation_intervals,
    }
}

/// The result of one online rolling-horizon instance: the online outcome,
/// the offline clairvoyant reference and the artifact-ready measurements.
#[derive(Debug, Clone)]
pub struct OnlineInstanceResult {
    /// What the online loop decided and stitched together.
    pub outcome: OnlineOutcome,
    /// The fractional lower bound of the (clairvoyant) instance.
    pub lower_bound: f64,
    /// Simulator verification of the stitched online schedule
    /// (deadline misses counted over admitted flows only).
    pub online_sim: SimSummary,
    /// Simulator verification of the offline clairvoyant schedule.
    pub offline_sim: SimSummary,
}

impl OnlineInstanceResult {
    /// Simulated online energy normalised by the lower bound.
    pub fn online_normalized(&self) -> f64 {
        self.online_sim.energy / self.lower_bound
    }

    /// Simulated offline energy normalised by the lower bound.
    pub fn offline_normalized(&self) -> f64 {
        self.offline_sim.energy / self.lower_bound
    }
}

/// The engine knobs the `online` binary threads from its CLI into
/// [`run_online_flow_set`]: incremental warm starts, epoch batching of
/// arrivals, and pod-sharded residual solving. The default is the plain
/// event loop (cold solves, no batching, no shards) — the configuration
/// every pre-existing sweep ran under.
#[derive(Debug, Clone, Copy)]
pub struct OnlineKnobs {
    /// Warm-start consecutive Frank–Wolfe re-solves from the previous
    /// event's flow matrix ([`dcn_core::online::EngineConfig::warm_start`]).
    pub warm_start: bool,
    /// Epoch window for batching arrivals; `0.0` disables batching
    /// ([`dcn_core::online::EngineConfig::epoch`]).
    pub epoch: f64,
    /// Pod-sharded residual solving ([`ShardMode`]). The artifact is
    /// byte-identical at any shard width — `Fixed(n)` only sets the
    /// worker-thread count.
    pub shards: ShardMode,
    /// Interval-parallel offline/cold solving ([`ParallelConfig`]); `1`
    /// keeps every solve sequential. Warm-started re-solves always run
    /// sequentially regardless of this knob, so the artifact stays
    /// byte-identical at any value.
    pub solver_threads: usize,
}

impl Default for OnlineKnobs {
    fn default() -> Self {
        Self {
            warm_start: false,
            epoch: 0.0,
            shards: ShardMode::Off,
            solver_threads: 1,
        }
    }
}

impl OnlineKnobs {
    /// Builds the knob set from the CLI's optional `--epoch`/`--shards`
    /// values plus the `--solver-threads` pool width: supplying either of
    /// the first two flags also enables warm starts (the incremental
    /// pipeline is one feature from the harness's viewpoint).
    pub fn from_cli(epoch: Option<f64>, shards: Option<usize>, solver_threads: usize) -> Self {
        Self {
            warm_start: epoch.is_some() || shards.is_some(),
            epoch: epoch.unwrap_or(0.0),
            shards: shards.map_or(ShardMode::Off, ShardMode::Fixed),
            solver_threads: solver_threads.max(1),
        }
    }
}

/// Runs one **online** instance: executes `flows` through an
/// [`OnlineEngine`] wrapping the named algorithm, driven by the named
/// [`dcn_core::OnlinePolicy`] under `admission` with the warm-start /
/// epoch / shard `knobs`, solves the same instance offline with
/// clairvoyant knowledge as the reference, and verifies both schedules
/// with the fluid simulator. One [`SolverContext`] is shared by every
/// re-solve, the offline solve and both simulations.
///
/// The lower bound is taken from the offline solution when the algorithm
/// computes one (`dcfsr`); otherwise the `lb` algorithm is run
/// additionally.
///
/// # Panics
///
/// Panics when the algorithm or policy name is not registered, when the
/// online loop or the offline solve fails (connected benchmark instances
/// must solve), or when the *offline* clairvoyant schedule misses a
/// deadline — offline feasibility is an invariant of the experiments;
/// online misses and rejections are data, not bugs.
#[allow(clippy::too_many_arguments)]
pub fn run_online_flow_set(
    topo: &BuiltTopology,
    flows: &FlowSet,
    power: &PowerFunction,
    seed: u64,
    algorithm: &str,
    policy: &str,
    admission: AdmissionRule,
    knobs: OnlineKnobs,
    registry: &AlgorithmRegistry,
    policies: &PolicyRegistry,
) -> OnlineInstanceResult {
    run_online_flow_set_with_events(
        topo,
        flows,
        power,
        seed,
        algorithm,
        policy,
        admission,
        knobs,
        &[],
        registry,
        policies,
    )
}

/// [`run_online_flow_set`] with a dynamic topology: the typed
/// failure/recovery `events` are merged into the engine's event queue
/// ([`OnlineEngine::run_vs_offline_with_events`]). The clairvoyant
/// offline reference and both simulator verifications run on the
/// *pristine* fabric — the engine rolls its topology changes back before
/// returning — so the energy gap and the failure-attributed misses
/// isolate exactly what the outages cost the online loop.
///
/// # Panics
///
/// As [`run_online_flow_set`], plus when an event is malformed (non-finite
/// time or out-of-range link).
#[allow(clippy::too_many_arguments)]
pub fn run_online_flow_set_with_events(
    topo: &BuiltTopology,
    flows: &FlowSet,
    power: &PowerFunction,
    seed: u64,
    algorithm: &str,
    policy: &str,
    admission: AdmissionRule,
    knobs: OnlineKnobs,
    events: &[dcn_topology::TopologyEvent],
    registry: &AlgorithmRegistry,
    policies: &PolicyRegistry,
) -> OnlineInstanceResult {
    let mut ctx =
        SolverContext::from_network(&topo.network).expect("builder topologies always validate");
    ctx.set_parallelism(ParallelConfig::with_threads(knobs.solver_threads));
    let mut online = OnlineEngine::builder()
        .algorithm(algorithm)
        .algorithms(registry.clone())
        .policy(policy)
        .policies(policies.clone())
        .admission(admission)
        .warm_start(knobs.warm_start)
        .epoch(knobs.epoch)
        .shards(knobs.shards)
        .seed(seed)
        .build()
        .unwrap_or_else(|e| panic!("cannot configure the online engine: {e}"));
    let outcome = online
        .run_vs_offline_with_events(&mut ctx, flows, power, events)
        .unwrap_or_else(|e| panic!("{algorithm} must run connected online instances: {e}"));

    let offline = outcome
        .offline
        .as_ref()
        .expect("run_vs_offline computes the clairvoyant solution");
    let lower_bound = offline.lower_bound.unwrap_or_else(|| {
        registry
            .create("lb")
            .expect("lb is always registered")
            .solve(&mut ctx, flows, power)
            .expect("the relaxation solves on connected instances")
            .lower_bound
            .expect("lb reports a bound")
    });

    let simulator = Simulator::new(*power);
    let online_sim = simulator
        .run_admitted(
            ctx.graph(),
            flows,
            &outcome.schedule,
            &outcome.report.admitted_mask(),
        )
        .summary();
    let offline_schedule = offline
        .schedule
        .as_ref()
        .expect("the clairvoyant reference produces a schedule");
    let offline_sim = simulator.run_ctx(&ctx, flows, offline_schedule);
    assert_eq!(
        offline_sim.deadline_misses, 0,
        "{algorithm} must meet every deadline with clairvoyant knowledge"
    );
    OnlineInstanceResult {
        outcome,
        lower_bound,
        online_sim,
        offline_sim: offline_sim.summary(),
    }
}

/// Generates the paper's uniform workload and runs one instance with the
/// default algorithm pair.
pub fn run_instance(
    topo: &BuiltTopology,
    num_flows: usize,
    seed: u64,
    power: &PowerFunction,
) -> InstanceResult {
    let flows = UniformWorkload::paper_defaults(num_flows, seed)
        .generate(topo.hosts())
        .expect("workload generation succeeds on topologies with >= 2 hosts");
    run_flow_set(topo, &flows, power, seed)
}

/// The two power functions of the paper's Fig. 2: `x^2` and `x^4` on links
/// of capacity 10 (the builders' default).
pub fn fig2_power_functions() -> Vec<PowerFunction> {
    vec![
        PowerFunction::speed_scaling_only(1.0, 2.0, dcn_topology::builders::DEFAULT_CAPACITY),
        PowerFunction::speed_scaling_only(1.0, 4.0, dcn_topology::builders::DEFAULT_CAPACITY),
    ]
}

/// Prints an experiment table row-by-row in a fixed-width format shared by
/// all binaries.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(String::len).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!();
}

/// The flows one experiment instance solves.
#[derive(Debug, Clone)]
pub enum InstanceInput {
    /// Draw `flows` flows from the experiment's [`UniformWorkload`]
    /// template (with `num_flows` and `seed` overridden per instance).
    Uniform {
        /// Number of flows to draw.
        flows: usize,
    },
    /// Solve an explicit, pre-built flow set (used by the ablations that
    /// post-process the workload, e.g. interval quantisation).
    Explicit(FlowSet),
}

/// One cell of an experiment's instance grid.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// Series the instance belongs to (one table per group, e.g. `"x^2"`).
    pub group: String,
    /// Sweep coordinate within the group (flow count, alpha, grain, ...).
    pub x: f64,
    /// Index into the experiment's topology list.
    pub topology: usize,
    /// The power function of this instance.
    pub power: PowerFunction,
    /// The flows to solve.
    pub input: InstanceInput,
    /// Seed for workload generation and randomized rounding.
    pub seed: u64,
    /// Experiment-specific dimensions recorded verbatim in the artifact.
    pub extra: Vec<(String, f64)>,
}

/// A declarative experiment: a name, the topologies it runs on, an optional
/// uniform-workload template, the algorithms to compare, and the grid of
/// instances to solve.
///
/// [`Experiment::run`] fans the grid out over [`runner::run_indexed`] —
/// every instance is an independent, internally seeded unit of work — and
/// assembles the [`ExperimentReport`] artifact with one [`InstanceRecord`]
/// per instance (in grid order) plus the `(group, x)`-averaged sweep
/// points. The artifact is byte-identical for a fixed grid regardless of
/// the thread count.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment name (also names the default `BENCH_<name>.json`).
    pub name: String,
    /// The topologies instances reference by index.
    pub topologies: Vec<BuiltTopology>,
    /// Template for [`InstanceInput::Uniform`] instances; `None` means
    /// paper defaults.
    pub workload: Option<UniformWorkload>,
    /// Registry names of the algorithms every instance runs, in order:
    /// primary, reference, extras. Defaults to [`DEFAULT_ALGORITHMS`];
    /// overridden by the `--algorithms` CLI selector.
    pub algorithms: Vec<String>,
    /// The instance grid, in deterministic order.
    pub instances: Vec<InstanceSpec>,
    /// Pool workers each instance's offline solves use for independent
    /// relaxation intervals (the `--solver-threads` CLI knob). `1` — the
    /// default — is today's fully sequential behaviour; any value yields
    /// the same bytes in the artifact's deterministic columns.
    pub solver_threads: usize,
    /// Emit the wall-clock columns ([`report::InstanceRecord::solve_wall_ms`]
    /// and [`report::InstanceRecord::intervals_per_second`]) into the
    /// artifact (the `--timings` CLI knob). Off by default because timing
    /// columns are machine-dependent and break byte-for-byte artifact
    /// comparison.
    pub record_timings: bool,
}

/// The outcome of [`Experiment::run`]: the artifact plus the measured
/// wall-clock (kept outside the report so the default artifact stays
/// deterministic).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The assembled report.
    pub report: ExperimentReport,
    /// Wall-clock of the whole run in seconds.
    pub elapsed_seconds: f64,
}

impl Experiment {
    /// Creates an experiment with an empty instance grid and the default
    /// algorithm pair.
    pub fn new(name: impl Into<String>, topologies: Vec<BuiltTopology>) -> Self {
        Self {
            name: name.into(),
            topologies,
            workload: None,
            algorithms: default_algorithms(),
            instances: Vec::new(),
            solver_threads: 1,
            record_timings: false,
        }
    }

    /// Appends one instance to the grid.
    pub fn push(&mut self, spec: InstanceSpec) {
        self.instances.push(spec);
    }

    /// Solves the whole grid on `threads` workers and assembles the
    /// artifact.
    ///
    /// # Panics
    ///
    /// Panics when an algorithm name is not registered in
    /// [`harness_registry`], when an instance references a topology index
    /// out of range, when workload generation fails, or when a scheduler
    /// violates its invariants (see [`run_flow_set_algorithms`]).
    pub fn run(&self, threads: usize) -> RunOutcome {
        let registry = harness_registry();
        for name in &self.algorithms {
            registry
                .create(name)
                .unwrap_or_else(|e| panic!("[{}] {e}", self.name));
        }
        let total = self.instances.len();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let (results, elapsed_seconds) = runner::timed(|| {
            runner::run_indexed(total, threads, |i| {
                let result = self.solve(i, &registry);
                let spec = &self.instances[i];
                let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                eprintln!(
                    "  [{}] {n}/{total} {} x={} seed={}",
                    self.name, spec.group, spec.x, spec.seed
                );
                result
            })
        });
        let mut report = ExperimentReport::new(&self.name, self.topology_description());
        // Record the workload template the uniform instances were drawn
        // from (num_flows/seed are the per-instance overrides, so the
        // template's own values for those two fields are zeroed).
        report.workload = self.workload.clone().or_else(|| {
            self.instances
                .iter()
                .any(|s| matches!(s.input, InstanceInput::Uniform { .. }))
                .then(|| UniformWorkload::paper_defaults(0, 0))
        });
        let mut coordinates = Vec::with_capacity(self.instances.len());
        for (spec, result) in self.instances.iter().zip(&results) {
            report.instances.push(self.record(spec, result));
            coordinates.push((spec.group.clone(), spec.x));
        }
        report.aggregate_points(&coordinates);
        RunOutcome {
            report,
            elapsed_seconds,
        }
    }

    /// Solves the `i`-th instance of the grid.
    fn solve(&self, i: usize, registry: &AlgorithmRegistry) -> InstanceResult {
        let spec = &self.instances[i];
        let topo = &self.topologies[spec.topology];
        match &spec.input {
            InstanceInput::Uniform { flows } => {
                let mut workload = self
                    .workload
                    .clone()
                    .unwrap_or_else(|| UniformWorkload::paper_defaults(*flows, spec.seed));
                workload.num_flows = *flows;
                workload.seed = spec.seed;
                let flow_set = workload
                    .generate(topo.hosts())
                    .expect("workload generation succeeds on topologies with >= 2 hosts");
                run_flow_set_algorithms_threads(
                    topo,
                    &flow_set,
                    &spec.power,
                    spec.seed,
                    &self.algorithms,
                    registry,
                    self.solver_threads,
                )
            }
            InstanceInput::Explicit(flow_set) => run_flow_set_algorithms_threads(
                topo,
                flow_set,
                &spec.power,
                spec.seed,
                &self.algorithms,
                registry,
                self.solver_threads,
            ),
        }
    }

    /// Builds the artifact record of one solved instance; energies of
    /// algorithms beyond the primary/reference pair are appended to the
    /// record's `extra` dimensions. The wall-clock columns are populated
    /// only under [`Experiment::record_timings`] so the default artifact
    /// stays machine-independent.
    fn record(&self, spec: &InstanceSpec, result: &InstanceResult) -> InstanceRecord {
        let mut extra = spec.extra.clone();
        extra.extend(result.extra_energies.iter().cloned());
        let solve_wall_ms = self.record_timings.then_some(result.solve_wall_ms);
        let intervals_per_second = self
            .record_timings
            .then(|| {
                (result.solve_wall_ms > 0.0 && result.relaxation_intervals > 0)
                    .then(|| result.relaxation_intervals as f64 / (result.solve_wall_ms / 1e3))
            })
            .flatten();
        InstanceRecord {
            label: format!("{} x={} seed={}", spec.group, spec.x, spec.seed),
            flows: result.flows,
            seed: result.seed,
            alpha: result.alpha,
            lower_bound: result.lower_bound,
            rs_energy: result.rs_energy,
            sp_energy: result.sp_energy,
            rs_normalized: result.rs_normalized(),
            sp_normalized: result.sp_normalized(),
            deadline_misses: result.deadline_misses,
            rs_capacity_excess: result.rs_capacity_excess,
            rs_sim: Some(result.rs_sim),
            sp_sim: Some(result.sp_sim),
            solve_wall_ms,
            intervals_per_second,
            requests_per_second: None,
            p99_latency_ms: None,
            extra,
        }
    }

    /// Human-readable list of the topologies in use.
    fn topology_description(&self) -> String {
        self.topologies
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;

    #[test]
    fn run_instance_produces_sane_numbers() {
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        let r = run_instance(&topo, 15, 3, &power);
        assert_eq!(r.flows, 15);
        assert!(r.lower_bound > 0.0);
        assert!(r.rs_energy >= r.lower_bound - 1e-6);
        assert!(r.sp_energy >= r.lower_bound - 1e-6);
        assert!(r.rs_normalized() >= 1.0 - 1e-9);
        assert!(r.sp_normalized() >= 1.0 - 1e-9);
        assert_eq!(r.deadline_misses, 0);
        assert!(r.extra_energies.is_empty());
    }

    #[test]
    fn extra_algorithms_land_in_extra_energies() {
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        let flows = UniformWorkload::paper_defaults(12, 3)
            .generate(topo.hosts())
            .unwrap();
        let names: Vec<String> = ["dcfsr", "sp-mcf", "ecmp", "least-loaded"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let r = run_flow_set_algorithms(&topo, &flows, &power, 3, &names, &harness_registry());
        assert_eq!(r.extra_energies.len(), 2);
        assert_eq!(r.extra_energies[0].0, "ecmp_energy");
        assert_eq!(r.extra_energies[1].0, "least-loaded_energy");
        for (_, energy) in &r.extra_energies {
            assert!(*energy >= r.lower_bound - 1e-6);
        }
    }

    #[test]
    fn reference_only_selection_still_gets_a_lower_bound() {
        // Neither sp-mcf nor ecmp computes LB as a by-product; the harness
        // must fall back to the lb algorithm.
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        let flows = UniformWorkload::paper_defaults(10, 5)
            .generate(topo.hosts())
            .unwrap();
        let names: Vec<String> = ["sp-mcf", "ecmp"].iter().map(|s| s.to_string()).collect();
        let r = run_flow_set_algorithms(&topo, &flows, &power, 5, &names, &harness_registry());
        assert!(r.lower_bound > 0.0);
        assert!(r.rs_energy >= r.lower_bound - 1e-6);
    }

    #[test]
    fn online_instance_produces_sane_numbers() {
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        let base = UniformWorkload::paper_defaults(12, 6)
            .generate(topo.hosts())
            .unwrap();
        let flows = dcn_flow::workload::ArrivalProcess::with_load(2.0, 6)
            .apply(&base)
            .unwrap();
        let r = run_online_flow_set(
            &topo,
            &flows,
            &power,
            6,
            "dcfsr",
            "resolve",
            AdmissionRule::AdmitAll,
            OnlineKnobs::default(),
            &harness_registry(),
            &PolicyRegistry::with_defaults(),
        );
        assert!(r.lower_bound > 0.0);
        assert_eq!(r.outcome.report.admitted(), 12);
        assert!(r.outcome.report.resolves >= 1);
        assert!(r.online_normalized() >= 1.0 - 1e-9);
        assert!(r.offline_normalized() >= 1.0 - 1e-9);
        assert_eq!(r.offline_sim.deadline_misses, 0);
        // The report's competitive ratio is consistent with the simulated
        // energies up to the analytic/simulated agreement.
        let ratio = r.outcome.report.competitive_ratio().unwrap();
        let simulated = r.online_sim.energy / r.offline_sim.energy;
        assert!((ratio - simulated).abs() < 1e-6 * (1.0 + simulated));
    }

    #[test]
    fn online_instance_with_full_knowledge_matches_offline_exactly() {
        // All flows released together: the online run is the offline run.
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        let flows = UniformWorkload::paper_defaults(10, 3)
            .generate(topo.hosts())
            .unwrap();
        let zeroed = FlowSet::from_flows(
            flows
                .iter()
                .map(|f| {
                    dcn_flow::Flow::new(f.id, f.src, f.dst, 1.0, f.deadline, f.volume).unwrap()
                })
                .collect(),
        )
        .unwrap();
        let r = run_online_flow_set(
            &topo,
            &zeroed,
            &power,
            3,
            "dcfsr",
            "resolve",
            AdmissionRule::AdmitAll,
            OnlineKnobs::default(),
            &harness_registry(),
            &PolicyRegistry::with_defaults(),
        );
        assert_eq!(r.outcome.report.events, 1);
        assert_eq!(r.outcome.report.resolves, 1);
        assert_eq!(r.outcome.report.competitive_ratio(), Some(1.0));
        assert_eq!(r.online_sim.energy, r.offline_sim.energy);
    }

    #[test]
    fn experiment_grid_runs_and_aggregates() {
        let mut exp = Experiment::new("unit", vec![builders::fat_tree(4)]);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        for flows in [8usize, 12] {
            for run in 0..2u64 {
                exp.push(InstanceSpec {
                    group: "x^2".to_string(),
                    x: flows as f64,
                    topology: 0,
                    power,
                    input: InstanceInput::Uniform { flows },
                    seed: 100 * flows as u64 + run,
                    extra: vec![("run".to_string(), run as f64)],
                });
            }
        }
        let outcome = exp.run(1);
        let report = &outcome.report;
        report.validate().expect("artifact validates");
        assert_eq!(report.instances.len(), 4);
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.points[0].runs, 2);
        assert_eq!(report.topology, "fat-tree(k=4)");
        let template = report.workload.as_ref().expect("uniform template recorded");
        assert_eq!(template.num_flows, 0, "per-instance override is zeroed");
        assert_eq!(template.horizon_end, 100.0);
        assert!(report.points.iter().all(|p| p.rs >= 1.0 - 1e-9));
        assert!(report
            .instances
            .iter()
            .all(|r| r.rs_sim.expect("simulated").all_good()));
        assert!(outcome.elapsed_seconds >= 0.0);
    }

    #[test]
    fn experiment_report_is_thread_count_invariant() {
        let mut exp = Experiment::new("unit", vec![builders::fat_tree(4)]);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        for run in 0..3u64 {
            exp.push(InstanceSpec {
                group: "x^2".to_string(),
                x: 10.0,
                topology: 0,
                power,
                input: InstanceInput::Uniform { flows: 10 },
                seed: run,
                extra: vec![],
            });
        }
        let serial = exp.run(1).report.to_json();
        let parallel = exp.run(3).report.to_json();
        assert_eq!(serial, parallel, "JSON must not depend on --threads");
    }

    #[test]
    fn experiment_with_algorithm_selection_records_extras() {
        let mut exp = Experiment::new("unit", vec![builders::fat_tree(4)]);
        exp.algorithms = vec![
            "dcfsr".to_string(),
            "sp-mcf".to_string(),
            "greedy".to_string(),
        ];
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        exp.push(InstanceSpec {
            group: "x^2".to_string(),
            x: 10.0,
            topology: 0,
            power,
            input: InstanceInput::Uniform { flows: 10 },
            seed: 4,
            extra: vec![("run".to_string(), 0.0)],
        });
        let outcome = exp.run(1);
        let record = &outcome.report.instances[0];
        assert_eq!(record.extra("run"), Some(0.0));
        let greedy = record.extra("greedy_energy").expect("greedy recorded");
        assert!(greedy >= record.lower_bound - 1e-6);
        outcome.report.validate().expect("artifact validates");
    }

    #[test]
    #[should_panic(expected = "no algorithm named")]
    fn unknown_algorithm_name_fails_fast() {
        let mut exp = Experiment::new("unit", vec![builders::fat_tree(4)]);
        exp.algorithms = vec!["dcfsr".to_string(), "frobnicate".to_string()];
        exp.run(1);
    }

    #[test]
    fn fig2_power_functions_match_the_paper() {
        let p = fig2_power_functions();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].alpha(), 2.0);
        assert_eq!(p[1].alpha(), 4.0);
        assert_eq!(p[0].sigma(), 0.0);
    }
}
