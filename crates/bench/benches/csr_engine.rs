//! Benchmarks of the CSR graph core and the arena-reuse shortest-path
//! engine: raw Dijkstra cost, one Frank–Wolfe iteration, and the full
//! DCFSR pipeline end-to-end on growing fat-trees.
//!
//! `dcfsr_end_to_end` is the number the ISSUE's speedup criterion tracks:
//! relaxation + Random-Schedule + SP+MCF + simulator verification, exactly
//! what one `fig2` instance solves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_bench::harness_fmcf_config;
use dcn_core::{Algorithm, Dcfsr, RandomScheduleConfig, RoutedMcf, SolverContext};
use dcn_flow::workload::UniformWorkload;
use dcn_power::PowerFunction;
use dcn_sim::Simulator;
use dcn_solver::fmcf::{Commodity, FmcfProblem, FmcfScratch, FmcfSolverConfig, PowerFlowCost};
#[allow(deprecated)] // the classic one-shot Dijkstra is the benchmark's baseline
use dcn_topology::dijkstra;
use dcn_topology::{builders, GraphCsr, ShortestPathEngine};
use std::hint::black_box;

fn power() -> PowerFunction {
    PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY)
}

/// Raw shortest-path cost: the classic allocate-per-call Dijkstra versus
/// the arena-reuse engine, and the engine's batched multi-target search.
fn bench_dijkstra(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra");
    group.sample_size(50);
    for k in [8usize, 16] {
        let topo = builders::fat_tree(k);
        let graph = GraphCsr::from_network(&topo.network);
        let hosts = topo.hosts().to_vec();
        let (src, dst) = (hosts[0], *hosts.last().unwrap());
        let weight = |l: dcn_topology::LinkId| 1.0 + (l.index() % 5) as f64 * 0.3;

        group.bench_function(&format!("classic_per_call/fat_tree{k}"), |b| {
            b.iter(|| {
                #[allow(deprecated)] // the classic one-shot path is the benchmark's baseline
                dijkstra(black_box(&topo.network), src, dst, weight).expect("connected")
            })
        });
        group.bench_function(&format!("engine_reused/fat_tree{k}"), |b| {
            let mut engine = ShortestPathEngine::new();
            b.iter(|| {
                engine
                    .shortest_path(black_box(&graph), src, dst, weight)
                    .expect("connected")
            })
        });
        group.bench_function(&format!("engine_into_no_alloc/fat_tree{k}"), |b| {
            let mut engine = ShortestPathEngine::new();
            let mut links = Vec::new();
            b.iter(|| {
                assert!(engine.dijkstra_into(black_box(&graph), src, dst, weight, &mut links))
            })
        });
        let targets: Vec<_> = hosts.iter().copied().skip(1).step_by(7).collect();
        group.bench_function(
            &format!("engine_batched_{}targets/fat_tree{k}", targets.len()),
            |b| {
                let mut engine = ShortestPathEngine::new();
                b.iter(|| {
                    engine.single_source_all_targets(black_box(&graph), src, &targets, weight)
                })
            },
        );
    }
    group.finish();
}

/// One Frank–Wolfe iteration (all-or-nothing + line search + blend) on a
/// warm scratch: the inner loop of the per-interval relaxation.
fn bench_fmcf_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fmcf_iteration");
    group.sample_size(20);
    for (k, n_commodities) in [(4usize, 16usize), (8, 40)] {
        let topo = builders::fat_tree(k);
        let graph = GraphCsr::from_network(&topo.network);
        let hosts = topo.hosts();
        let commodities: Vec<Commodity> = (0..n_commodities)
            .map(|i| Commodity {
                id: i,
                src: hosts[(7 * i) % hosts.len()],
                dst: hosts[(11 * i + 3) % hosts.len()],
                demand: 1.0 + (i % 4) as f64,
            })
            .filter(|c| c.src != c.dst)
            .collect();
        let problem = FmcfProblem::with_graph(&graph, commodities);
        let cost = PowerFlowCost::new(power());
        let config = FmcfSolverConfig {
            max_iterations: 1,
            tolerance: 0.0,
            capacity: Some(builders::DEFAULT_CAPACITY),
            ..Default::default()
        };
        group.bench_function(
            &format!("fat_tree{k}_{}commodities", problem.commodities().len()),
            |b| {
                let mut scratch = FmcfScratch::new();
                b.iter(|| black_box(&problem).solve_with(&cost, &config, &mut scratch))
            },
        );
    }
    group.finish();
}

/// One full pipeline instance: one context, Random-Schedule (relaxation
/// included), SP+MCF, and simulator verification of both (the body of
/// `run_flow_set`).
fn pipeline(topo: &builders::BuiltTopology, flows: &dcn_flow::FlowSet, seed: u64) {
    let power = power();
    let mut ctx = SolverContext::from_network(&topo.network).expect("fat-tree validates");
    let mut rs_algo = Dcfsr::new(RandomScheduleConfig {
        fmcf: harness_fmcf_config(),
        seed,
        ..Default::default()
    });
    let rs = rs_algo
        .solve(&mut ctx, flows, &power)
        .expect("random schedule succeeds");
    let sp = RoutedMcf::shortest_path()
        .solve(&mut ctx, flows, &power)
        .expect("sp-mcf succeeds");
    let simulator = Simulator::new(power);
    black_box(simulator.run_ctx(&ctx, flows, rs.schedule.as_ref().expect("schedules")));
    black_box(simulator.run_ctx(&ctx, flows, sp.schedule.as_ref().expect("schedules")));
}

fn bench_dcfsr_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcfsr_end_to_end");
    group.sample_size(3);
    for (k, flows_n) in [(4usize, 40usize), (8, 80), (16, 40)] {
        let topo = builders::fat_tree(k);
        let flows = UniformWorkload::paper_defaults(flows_n, 7)
            .generate(topo.hosts())
            .expect("workload generates");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("fat_tree{k}_{flows_n}flows")),
            &flows,
            |b, flows| b.iter(|| pipeline(&topo, flows, 7)),
        );
    }
    group.finish();
}

/// The interval-parallel offline path: the relaxation alone and the full
/// DCFSR pipeline, each at pool widths 1/2/4 (`--solver-threads`). The
/// results are bit-identical across widths (pinned by
/// `tests/parallel_equivalence.rs`), so any spread between the series is
/// pure wall-clock — the ISSUE's speedup criterion reads the ratio of the
/// 1-thread to the 4-thread series on fat-tree(16).
fn bench_offline_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_parallel");
    group.sample_size(3);
    let power = power();
    for (k, flows_n) in [(8usize, 80usize), (16, 40)] {
        let topo = builders::fat_tree(k);
        let flows = UniformWorkload::paper_defaults(flows_n, 7)
            .generate(topo.hosts())
            .expect("workload generates");
        for threads in [1usize, 2, 4] {
            group.bench_function(
                &format!("relaxation/fat_tree{k}_{flows_n}flows/{threads}threads"),
                |b| {
                    let mut ctx = SolverContext::from_network(&topo.network)
                        .expect("fat-tree validates")
                        .with_parallelism(dcn_core::ParallelConfig::with_threads(threads));
                    b.iter(|| {
                        black_box(
                            ctx.relax(&flows, &power, &harness_fmcf_config())
                                .expect("relaxation succeeds"),
                        )
                    })
                },
            );
            group.bench_function(
                &format!("dcfsr_end_to_end/fat_tree{k}_{flows_n}flows/{threads}threads"),
                |b| {
                    b.iter(|| {
                        let mut ctx = SolverContext::from_network(&topo.network)
                            .expect("fat-tree validates")
                            .with_parallelism(dcn_core::ParallelConfig::with_threads(threads));
                        let mut rs_algo = Dcfsr::new(RandomScheduleConfig {
                            fmcf: harness_fmcf_config(),
                            seed: 7,
                            ..Default::default()
                        });
                        black_box(
                            rs_algo
                                .solve(&mut ctx, &flows, &power)
                                .expect("random schedule succeeds"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dijkstra,
    bench_fmcf_iteration,
    bench_dcfsr_end_to_end,
    bench_offline_parallel
);
criterion_main!(benches);
