//! Criterion micro-benchmarks of the building blocks: the DCFS scheduler,
//! the Random-Schedule pipeline, the Frank–Wolfe relaxation and the
//! topology path algorithms.
//!
//! These measure *algorithm cost*, not the paper's energy results (those
//! come from the `fig2` and `ablation_*` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_bench::harness_fmcf_config;
use dcn_core::{Algorithm, Dcfsr, RandomScheduleConfig, RoutedMcf, Routing, SolverContext};
use dcn_flow::workload::UniformWorkload;
use dcn_power::PowerFunction;
use dcn_topology::{builders, k_shortest_paths_on, ShortestPathEngine};
use std::hint::black_box;

fn power() -> PowerFunction {
    PowerFunction::speed_scaling_only(1.0, 2.0, builders::DEFAULT_CAPACITY)
}

fn bench_most_critical_first(c: &mut Criterion) {
    let topo = builders::fat_tree(4);
    let mut group = c.benchmark_group("most_critical_first");
    for &n in &[20usize, 40, 80] {
        let flows = UniformWorkload::paper_defaults(n, 7)
            .generate(topo.hosts())
            .expect("workload generates");
        group.bench_with_input(BenchmarkId::from_parameter(n), &flows, |b, flows| {
            let mut ctx = SolverContext::from_network(&topo.network).expect("fat-tree validates");
            let mut algo = RoutedMcf::shortest_path();
            b.iter(|| {
                algo.solve(&mut ctx, black_box(flows), &power())
                    .expect("sp-mcf succeeds")
            })
        });
    }
    group.finish();
}

fn bench_random_schedule(c: &mut Criterion) {
    let topo = builders::fat_tree(4);
    let mut group = c.benchmark_group("random_schedule");
    group.sample_size(10);
    for &n in &[20usize, 40] {
        let flows = UniformWorkload::paper_defaults(n, 7)
            .generate(topo.hosts())
            .expect("workload generates");
        group.bench_with_input(BenchmarkId::from_parameter(n), &flows, |b, flows| {
            let mut ctx = SolverContext::from_network(&topo.network).expect("fat-tree validates");
            let mut algo = Dcfsr::new(RandomScheduleConfig {
                fmcf: harness_fmcf_config(),
                ..Default::default()
            });
            b.iter(|| {
                algo.solve(&mut ctx, black_box(flows), &power())
                    .expect("random schedule succeeds")
            })
        });
    }
    group.finish();
}

fn bench_relaxation(c: &mut Criterion) {
    let topo = builders::fat_tree(4);
    let flows = UniformWorkload::paper_defaults(30, 5)
        .generate(topo.hosts())
        .expect("workload generates");
    let mut group = c.benchmark_group("interval_relaxation");
    group.sample_size(10);
    group.bench_function("fat_tree4_30flows", |b| {
        let mut ctx = SolverContext::from_network(&topo.network).expect("fat-tree validates");
        b.iter(|| {
            ctx.relax(black_box(&flows), &power(), &harness_fmcf_config())
                .expect("relaxation succeeds")
        })
    });
    group.finish();
}

fn bench_paths(c: &mut Criterion) {
    let topo = builders::fat_tree(8);
    let hosts = topo.hosts();
    let mut group = c.benchmark_group("topology_paths");
    group.bench_function("shortest_path_fat_tree8", |b| {
        b.iter(|| {
            topo.network
                .shortest_path(black_box(hosts[0]), black_box(hosts[127]))
                .expect("connected")
        })
    });
    group.bench_function("k_shortest_paths_k8_fat_tree8", |b| {
        let graph = topo.csr();
        let mut engine = ShortestPathEngine::new();
        b.iter(|| {
            k_shortest_paths_on(
                &graph,
                &mut engine,
                black_box(hosts[0]),
                black_box(hosts[127]),
                8,
                |_| 1.0,
            )
        })
    });
    let flows = UniformWorkload::paper_defaults(50, 3)
        .generate(hosts)
        .expect("workload generates");
    group.bench_function("ecmp_routing_50flows", |b| {
        let graph = topo.csr();
        b.iter(|| {
            Routing::Ecmp { seed: 1 }
                .compute_on(black_box(&graph), black_box(&flows))
                .expect("routable")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_most_critical_first,
    bench_random_schedule,
    bench_relaxation,
    bench_paths
);
criterion_main!(benches);
