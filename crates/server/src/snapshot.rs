//! Snapshot/restore of the daemon's in-flight state as a JSON file.
//!
//! A snapshot captures everything a restarted daemon needs to keep
//! making *bit-identical* decisions: per-bucket logical clocks, event
//! counters (they seed `resolve` re-solves), the full flow ledgers with
//! delivered volumes, the currently committed plans, and the stitched
//! history of what those plans already delivered. The file also pins the
//! configuration the state was produced under (topology, policy,
//! admission, seed); [`crate::Server`] refuses to restore a snapshot
//! whose configuration does not match its own, because the state would
//! silently mean something else.
//!
//! The same dump doubles as the daemon's audit artifact: the serve bench
//! reads the final snapshot back and rebuilds the stitched [`Schedule`]
//! (committed history plus each live flow's remaining plan) to account
//! energy, misses and capacity excess — see [`SnapshotFile::schedule`].

use std::fmt;
use std::path::Path as FsPath;

use dcn_core::{FlowSchedule, Schedule};
use dcn_power::RateProfile;
use dcn_topology::{Network, NodeId, Path};
use serde::{Deserialize, Serialize};

use crate::protocol::PlanSegment;

/// Typed errors of [`SnapshotFile::schedule`] — everything that can make
/// a dump unreconstructable on the restore host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A recorded flow id does not fit the platform's `usize`. Flow ids
    /// are `u64` on the wire; on 32-bit targets an `as usize` cast would
    /// silently truncate and alias two distinct flows, so the overflow is
    /// an error instead.
    FlowIdOverflow {
        /// The id that does not fit.
        id: u64,
    },
    /// A recorded routing path does not exist on the restore network.
    InvalidPath {
        /// The flow whose path is broken.
        flow: u64,
        /// What the path validation rejected.
        reason: String,
    },
    /// The snapshot contains no served flows, so there is no schedule to
    /// rebuild.
    Empty,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FlowIdOverflow { id } => {
                write!(
                    f,
                    "snapshot flow id {id} does not fit this platform's usize"
                )
            }
            Self::InvalidPath { flow, reason } => {
                write!(f, "snapshot path of flow {flow} is invalid: {reason}")
            }
            Self::Empty => write!(f, "snapshot holds no served flows"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Version stamp of the snapshot layout.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One admitted flow as dumped by a shard: the original request plus its
/// delivery state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Server-assigned flow id.
    pub id: u64,
    /// Source host node id.
    pub src: usize,
    /// Destination host node id.
    pub dst: usize,
    /// Release time (as served; clamped to the shard clock at admission).
    pub release: f64,
    /// Hard deadline.
    pub deadline: f64,
    /// Total volume of the flow.
    pub volume: f64,
    /// Volume delivered as of the bucket's clock.
    pub delivered: f64,
    /// Whether the flow has left the live set.
    pub retired: bool,
    /// Whether it retired with undelivered volume.
    pub missed: bool,
}

/// A rate plan as dumped by a shard: path (node ids) plus constant-rate
/// segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRecord {
    /// The flow the plan belongs to.
    pub flow: u64,
    /// Node ids of the routing path, source first.
    pub path: Vec<usize>,
    /// Constant-rate segments, in time order.
    pub segments: Vec<PlanSegment>,
}

/// The complete dump of one logical shard (pod bucket).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketState {
    /// The bucket id (pod index, or the cross bucket).
    pub bucket: usize,
    /// Logical clock; `null` when the bucket never saw a submission.
    pub clock: Option<f64>,
    /// Submissions processed (seeds `resolve` re-solves).
    pub events: u64,
    /// Ids of rejected flows (for `QueryFlow` answers).
    pub rejected: Vec<u64>,
    /// Every admitted flow, live and retired, in id order.
    pub flows: Vec<FlowRecord>,
    /// The plan currently committed for each live flow.
    pub plans: Vec<PlanRecord>,
    /// The stitched already-delivered history per flow.
    pub committed: Vec<PlanRecord>,
}

/// The snapshot file: configuration pin plus every bucket's state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotFile {
    /// Layout version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Topology spec string (e.g. `fat-tree:4`).
    pub topology: String,
    /// Serve policy name.
    pub policy: String,
    /// Admission rule name.
    pub admission: String,
    /// Base seed of the daemon.
    pub seed: u64,
    /// Total flow ids assigned so far (the next id continues from here).
    pub flows_assigned: u64,
    /// Bucket owning each assigned flow id, dense by id.
    pub assignments: Vec<usize>,
    /// Per-bucket dumps, in bucket order.
    pub buckets: Vec<BucketState>,
}

impl SnapshotFile {
    /// Total number of flows (live and retired) captured in the dump.
    pub fn flow_count(&self) -> usize {
        self.buckets.iter().map(|b| b.flows.len()).sum()
    }

    /// Number of flows that retired with undelivered volume.
    pub fn missed_count(&self) -> usize {
        self.buckets
            .iter()
            .flat_map(|b| b.flows.iter())
            .filter(|f| f.missed)
            .count()
    }

    /// Serializes and writes the snapshot.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &FsPath) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable files, invalid JSON, or an
    /// unsupported layout version.
    pub fn load(path: &FsPath) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read snapshot {}: {e}", path.display()))?;
        let snapshot: SnapshotFile = serde_json::from_str(&text)
            .map_err(|e| format!("snapshot {} is not valid JSON: {e}", path.display()))?;
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot {} has layout version {} (this build reads {SNAPSHOT_VERSION})",
                path.display(),
                snapshot.version
            ));
        }
        Ok(snapshot)
    }

    /// Rebuilds the stitched schedule the daemon has committed to: per
    /// flow, the already-delivered history plus the current plan's
    /// remaining tail (from the bucket clock onwards). The horizon spans
    /// the earliest release to the latest of deadline and plan end, so
    /// idle energy is accounted the same way the batch harness does.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose paths do not exist on `network`, whose
    /// flow ids overflow `usize`, or that hold no served flows.
    pub fn schedule(&self, network: &Network) -> Result<Schedule, SnapshotError> {
        let mut flow_schedules = Vec::new();
        let mut start = f64::INFINITY;
        let mut end = f64::NEG_INFINITY;
        for bucket in &self.buckets {
            let clock = bucket.clock.unwrap_or(f64::NEG_INFINITY);
            for record in &bucket.flows {
                start = start.min(record.release);
                end = end.max(record.deadline);
                let committed = bucket.committed.iter().find(|p| p.flow == record.id);
                let plan = bucket.plans.iter().find(|p| p.flow == record.id);
                let mut profile = RateProfile::new();
                if let Some(history) = committed {
                    add_segments(&mut profile, &history.segments, f64::NEG_INFINITY, clock);
                }
                if let Some(plan) = plan {
                    // Only the not-yet-delivered tail: the slice before
                    // the clock is already part of the history.
                    add_segments(&mut profile, &plan.segments, clock, f64::INFINITY);
                }
                let path_record = plan.or(committed);
                let Some(path_record) = path_record else {
                    continue; // Admitted but never served (zero-length plan).
                };
                let flow_id = usize::try_from(record.id)
                    .map_err(|_| SnapshotError::FlowIdOverflow { id: record.id })?;
                let nodes: Vec<NodeId> = path_record.path.iter().map(|&n| NodeId(n)).collect();
                let path =
                    Path::from_nodes(network, &nodes).map_err(|e| SnapshotError::InvalidPath {
                        flow: record.id,
                        reason: e.to_string(),
                    })?;
                if let Some((_, profile_end)) = profile.span() {
                    end = end.max(profile_end);
                }
                flow_schedules.push(FlowSchedule::uniform(flow_id, path, profile));
            }
        }
        if flow_schedules.is_empty() {
            return Err(SnapshotError::Empty);
        }
        Ok(Schedule::new(flow_schedules, (start, end)))
    }
}

/// Adds the segments clipped to `[from, to]` to a profile.
fn add_segments(profile: &mut RateProfile, segments: &[PlanSegment], from: f64, to: f64) {
    for segment in segments {
        let start = segment.start.max(from);
        let end = segment.end.min(to);
        if end > start && segment.rate > 0.0 {
            profile.add_rate(start, end, segment.rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;

    fn snapshot_with(buckets: Vec<BucketState>) -> SnapshotFile {
        SnapshotFile {
            version: SNAPSHOT_VERSION,
            topology: "line:3".to_string(),
            policy: "resolve".to_string(),
            admission: "admit-all".to_string(),
            seed: 1,
            flows_assigned: 1,
            assignments: vec![0],
            buckets,
        }
    }

    #[test]
    fn empty_snapshots_yield_a_typed_error() {
        let built = builders::line(3);
        let err = snapshot_with(Vec::new())
            .schedule(&built.network)
            .unwrap_err();
        assert_eq!(err, SnapshotError::Empty);
        assert!(err.to_string().contains("no served flows"));
    }

    #[test]
    fn broken_paths_yield_a_typed_error_naming_the_flow() {
        let built = builders::line(3);
        let snapshot = snapshot_with(vec![BucketState {
            bucket: 0,
            clock: Some(0.0),
            events: 1,
            rejected: Vec::new(),
            flows: vec![FlowRecord {
                id: 7,
                src: 0,
                dst: 2,
                release: 0.0,
                deadline: 2.0,
                volume: 1.0,
                delivered: 0.0,
                retired: false,
                missed: false,
            }],
            plans: vec![PlanRecord {
                flow: 7,
                // Node 99 does not exist on a 3-node line.
                path: vec![0, 99, 2],
                segments: vec![PlanSegment {
                    start: 0.0,
                    end: 1.0,
                    rate: 1.0,
                }],
            }],
            committed: Vec::new(),
        }]);
        match snapshot.schedule(&built.network).unwrap_err() {
            SnapshotError::InvalidPath { flow, .. } => assert_eq!(flow, 7),
            other => panic!("expected InvalidPath, got {other:?}"),
        }
    }

    #[test]
    fn overflow_errors_render_the_offending_id() {
        // `usize::try_from(u64)` cannot fail on 64-bit hosts, so the
        // variant is exercised directly: what matters is that the error
        // names the id instead of silently truncating it like the old
        // `as usize` cast did on 32-bit targets.
        let err = SnapshotError::FlowIdOverflow { id: u64::MAX };
        assert!(err.to_string().contains(&u64::MAX.to_string()));
    }
}
