//! The wire protocol of the daemon: length-prefixed JSON frames carrying
//! versioned request/response envelopes.
//!
//! # Framing
//!
//! Each frame is the ASCII decimal byte length of a JSON payload, a
//! newline, the payload itself, and a closing newline:
//!
//! ```text
//! 62\n{"v":1,"id":0,"body":{"QueryFlow":{"flow":3}}}\n
//! ```
//!
//! The text-only format keeps canned request files hand-writable and
//! diffable while still making payload boundaries explicit (a payload may
//! contain anything, including newlines). [`read_frame`] enforces
//! [`MAX_FRAME_BYTES`] *before* allocating, so an adversarial length
//! prefix cannot balloon memory, and distinguishes a clean end-of-stream
//! (`Ok(None)`) from a truncated frame ([`FrameError::Truncated`]).
//!
//! # Envelopes
//!
//! Requests and responses both carry the protocol version `v` and a
//! client-chosen correlation id `id`, echoed verbatim in the reply.
//! Malformed payloads never panic the server: [`decode_request`] returns
//! a typed [`ErrorReply`] (with a stable machine-readable `code`) for
//! anything it cannot accept — invalid JSON, a non-object envelope, an
//! unsupported version, or an unknown request body.

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize, Value};

/// The protocol version this build speaks. Requests carrying any other
/// version are answered with an `unsupported-version` error reply.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on the JSON payload size of a single frame. Length
/// prefixes above this are rejected before any allocation happens.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// A flow-admission request: move `volume` units from `src` to `dst`
/// entirely within `[release, deadline]`. Node ids index the daemon's
/// topology; both endpoints must be hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitFlow {
    /// Source host node id.
    pub src: usize,
    /// Destination host node id.
    pub dst: usize,
    /// Release time (logical clock; clamped up to the shard clock).
    pub release: f64,
    /// Hard deadline.
    pub deadline: f64,
    /// Volume of data to move.
    pub volume: f64,
}

/// The request bodies of the protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Admit a new flow; answered with [`ResponseBody::Admit`].
    SubmitFlow(SubmitFlow),
    /// Query the state of a previously submitted flow (by the server-
    /// assigned id from the admission reply).
    QueryFlow {
        /// The server-assigned flow id.
        flow: u64,
    },
    /// Apply a topology change: take a directed link down or bring it
    /// back up. Broadcast to every shard worker (a FIFO barrier behind
    /// all previously dispatched work) before the
    /// [`ResponseBody::LinkAck`] reply, so later submissions are planned
    /// on the updated fabric — never on a stale route.
    LinkEvent {
        /// Directed link id on the daemon's topology.
        link: usize,
        /// `true` = the link failed, `false` = it recovered.
        down: bool,
    },
    /// Persist the in-flight state of every shard to the snapshot file.
    Snapshot,
    /// Drain and stop the daemon; answered with [`ResponseBody::Bye`].
    Shutdown,
}

/// A request envelope: version, correlation id, body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Protocol version; must equal [`PROTOCOL_VERSION`].
    pub v: u32,
    /// Client-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// The request body.
    pub body: RequestBody,
}

impl Request {
    /// Convenience constructor stamping the current protocol version.
    pub fn new(id: u64, body: RequestBody) -> Self {
        Self {
            v: PROTOCOL_VERSION,
            id,
            body,
        }
    }
}

/// One constant-rate segment of a committed rate plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSegment {
    /// Segment start time.
    pub start: f64,
    /// Segment end time.
    pub end: f64,
    /// Transmission rate over the segment.
    pub rate: f64,
}

/// The rate plan committed for an admitted flow: the routing path (as
/// node ids, source first) and the planned rate over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirePlan {
    /// The node ids of the routing path, source first.
    pub path: Vec<usize>,
    /// The planned constant-rate segments, in time order.
    pub segments: Vec<PlanSegment>,
}

/// Reply to [`RequestBody::SubmitFlow`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmitReply {
    /// The server-assigned flow id (use it in [`RequestBody::QueryFlow`]).
    pub flow: u64,
    /// Whether the flow was admitted.
    pub admitted: bool,
    /// Why the flow was rejected; `null` when admitted.
    pub reason: Option<String>,
    /// The committed rate plan; `null` when rejected.
    pub plan: Option<WirePlan>,
}

/// Reply to [`RequestBody::QueryFlow`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReply {
    /// The queried flow id.
    pub flow: u64,
    /// `"in-flight"`, `"delivered"`, `"missed"`, `"rejected"` or
    /// `"unknown"`.
    pub state: String,
    /// Volume delivered as of the shard's logical clock.
    pub delivered: f64,
    /// Volume still outstanding.
    pub remaining: f64,
}

/// A typed error reply; `code` is stable and machine-readable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Stable machine-readable error code (e.g. `bad-json`,
    /// `unsupported-version`, `bad-flow`, `frame-too-large`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

/// The response bodies of the protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Admission decision and committed rate plan.
    Admit(AdmitReply),
    /// Flow status.
    Status(StatusReply),
    /// Acknowledges [`RequestBody::LinkEvent`] after every shard worker
    /// has applied it.
    LinkAck {
        /// The directed link the event addressed.
        link: usize,
        /// The state the link is now in.
        down: bool,
        /// Whether the event changed anything (`false` when the link was
        /// already in the requested state).
        changed: bool,
    },
    /// Snapshot written.
    SnapshotDone {
        /// Where the snapshot landed.
        path: String,
        /// Total flows (live and retired) captured in the snapshot.
        flows: usize,
    },
    /// The target shard worker's queue is over the configured depth;
    /// retry after the suggested backoff.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// Acknowledges [`RequestBody::Shutdown`]; the stream closes after.
    Bye,
    /// Typed error reply.
    Error(ErrorReply),
}

/// A response envelope mirroring [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Protocol version of the daemon.
    pub v: u32,
    /// Correlation id of the request this answers (0 when the request
    /// was too malformed to carry one).
    pub id: u64,
    /// The response body.
    pub body: ResponseBody,
}

impl Response {
    /// Convenience constructor stamping the current protocol version.
    pub fn new(id: u64, body: ResponseBody) -> Self {
        Self {
            v: PROTOCOL_VERSION,
            id,
            body,
        }
    }

    /// A typed error reply with the given stable code.
    pub fn error(id: u64, code: &str, message: impl Into<String>) -> Self {
        Self::new(
            id,
            ResponseBody::Error(ErrorReply {
                code: code.to_string(),
                message: message.into(),
            }),
        )
    }
}

/// Why a frame could not be read off the stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The length prefix is not a decimal number, or the frame delimiter
    /// is missing — the stream is desynchronized and must be closed.
    Malformed(String),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized(usize),
    /// The stream ended in the middle of a frame.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame read failed: {e}"),
            FrameError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            FrameError::Oversized(len) => {
                write!(f, "frame length {len} exceeds {MAX_FRAME_BYTES} bytes")
            }
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads one frame's JSON payload. Returns `Ok(None)` on a clean
/// end-of-stream (EOF between frames).
///
/// # Errors
///
/// See [`FrameError`]; none of the failure modes panic or allocate
/// according to untrusted lengths.
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = Vec::new();
    let n = reader.read_until(b'\n', &mut prefix)?;
    if n == 0 {
        return Ok(None);
    }
    if prefix.last() != Some(&b'\n') {
        return Err(FrameError::Truncated);
    }
    prefix.pop();
    let text = std::str::from_utf8(&prefix)
        .map_err(|_| FrameError::Malformed("length prefix is not UTF-8".to_string()))?;
    let len: usize = text
        .trim()
        .parse()
        .map_err(|_| FrameError::Malformed(format!("length prefix {text:?} is not a number")))?;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    let mut delimiter = [0u8; 1];
    match reader.read_exact(&mut delimiter) {
        Ok(()) if delimiter[0] == b'\n' => Ok(Some(payload)),
        Ok(()) => Err(FrameError::Malformed(
            "payload is not followed by a newline".to_string(),
        )),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Encodes one value as a frame (length prefix + JSON payload).
pub fn encode_frame<T: Serialize>(value: &T) -> Vec<u8> {
    let payload =
        serde_json::to_string(value).expect("protocol types serialize to JSON infallibly");
    let mut frame = Vec::with_capacity(payload.len() + 16);
    frame.extend_from_slice(payload.len().to_string().as_bytes());
    frame.push(b'\n');
    frame.extend_from_slice(payload.as_bytes());
    frame.push(b'\n');
    frame
}

/// Writes one value as a frame to `writer`.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_frame<T: Serialize>(writer: &mut impl Write, value: &T) -> std::io::Result<()> {
    writer.write_all(&encode_frame(value))
}

/// Decodes a frame payload into a [`Request`], staging the parse so that
/// every malformed input maps to a typed error reply instead of a panic:
/// first JSON, then the envelope (`v`, `id`), then the body.
///
/// # Errors
///
/// The error side carries the ready-to-send error [`Response`].
pub fn decode_request(payload: &[u8]) -> Result<Request, Response> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| Response::error(0, "bad-json", format!("payload is not UTF-8: {e}")))?;
    let value: Value = serde_json::from_str(text)
        .map_err(|e| Response::error(0, "bad-json", format!("invalid JSON: {e}")))?;
    let Value::Map(ref fields) = value else {
        return Err(Response::error(
            0,
            "bad-envelope",
            "request envelope must be a JSON object",
        ));
    };
    let field_u64 = |name: &str| -> Option<u64> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                Value::U64(n) => Some(*n),
                Value::I64(n) if *n >= 0 => Some(*n as u64),
                _ => None,
            })
    };
    // Surface the correlation id even when the rest of the envelope is
    // unusable, so the client can match the error to its request.
    let id = field_u64("id").unwrap_or(0);
    let Some(version) = field_u64("v") else {
        return Err(Response::error(
            id,
            "bad-envelope",
            "request envelope is missing the numeric version field `v`",
        ));
    };
    if version != u64::from(PROTOCOL_VERSION) {
        return Err(Response::error(
            id,
            "unsupported-version",
            format!("request version {version} is not supported (this daemon speaks {PROTOCOL_VERSION})"),
        ));
    }
    Request::from_value(&value)
        .map_err(|e| Response::error(id, "bad-request", format!("unrecognized request: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(request: &Request) -> Request {
        let frame = encode_frame(request);
        let mut reader = Cursor::new(frame);
        let payload = read_frame(&mut reader)
            .expect("frame reads")
            .expect("frame present");
        decode_request(&payload).expect("request decodes")
    }

    #[test]
    fn frames_round_trip_every_request_kind() {
        for body in [
            RequestBody::SubmitFlow(SubmitFlow {
                src: 0,
                dst: 5,
                release: 1.0,
                deadline: 9.5,
                volume: 10.0,
            }),
            RequestBody::QueryFlow { flow: 3 },
            RequestBody::LinkEvent {
                link: 12,
                down: true,
            },
            RequestBody::LinkEvent {
                link: 12,
                down: false,
            },
            RequestBody::Snapshot,
            RequestBody::Shutdown,
        ] {
            let request = Request::new(7, body);
            assert_eq!(round_trip(&request), request);
        }
    }

    #[test]
    fn responses_round_trip_through_json() {
        let response = Response::new(
            9,
            ResponseBody::Admit(AdmitReply {
                flow: 4,
                admitted: true,
                reason: None,
                plan: Some(WirePlan {
                    path: vec![0, 16, 5],
                    segments: vec![PlanSegment {
                        start: 1.0,
                        end: 2.0,
                        rate: 3.5,
                    }],
                }),
            }),
        );
        let text = serde_json::to_string(&response).expect("response serializes");
        let parsed: Response = serde_json::from_str(&text).expect("response parses");
        assert_eq!(parsed, response);
    }

    #[test]
    fn clean_eof_is_none_and_mid_frame_eof_is_truncated() {
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut empty).expect("clean EOF").is_none());

        for partial in ["12", "12\n{\"v\":1", "5\nabcde"] {
            let mut reader = Cursor::new(partial.as_bytes().to_vec());
            assert!(
                matches!(read_frame(&mut reader), Err(FrameError::Truncated)),
                "{partial:?} should be truncated"
            );
        }
    }

    #[test]
    fn bad_length_prefixes_are_typed_errors() {
        let mut garbage = Cursor::new(b"not-a-number\n{}\n".to_vec());
        assert!(matches!(
            read_frame(&mut garbage),
            Err(FrameError::Malformed(_))
        ));

        let mut oversized = Cursor::new(b"999999999999\n".to_vec());
        assert!(matches!(
            read_frame(&mut oversized),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn missing_payload_delimiter_is_malformed() {
        let mut reader = Cursor::new(b"2\n{}X".to_vec());
        assert!(matches!(
            read_frame(&mut reader),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn decode_stages_map_to_stable_error_codes() {
        let code_of = |payload: &str| match decode_request(payload.as_bytes()) {
            Err(Response {
                body: ResponseBody::Error(e),
                ..
            }) => e.code,
            other => panic!("expected error reply, got {other:?}"),
        };
        assert_eq!(code_of("{not json"), "bad-json");
        assert_eq!(code_of("[1,2,3]"), "bad-envelope");
        assert_eq!(code_of("{\"id\":4}"), "bad-envelope");
        assert_eq!(
            code_of("{\"v\":99,\"id\":4,\"body\":\"Snapshot\"}"),
            "unsupported-version"
        );
        assert_eq!(
            code_of("{\"v\":1,\"id\":4,\"body\":{\"Launch\":{}}}"),
            "bad-request"
        );
    }

    #[test]
    fn decode_echoes_the_correlation_id_when_present() {
        let reply = decode_request(b"{\"v\":99,\"id\":41,\"body\":\"Snapshot\"}").unwrap_err();
        assert_eq!(reply.id, 41);
    }
}
