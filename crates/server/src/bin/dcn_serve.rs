//! `dcn-serve` — the scheduler-as-a-service daemon.
//!
//! Serves the framed JSON protocol over stdin/stdout (`--stdio`) or a
//! TCP listener (`--listen ADDR`), and doubles as a canned-workload
//! generator (`--gen-requests N`) for smoke tests: the generated stream
//! is a deterministic function of `--topology` and `--seed`, so replies
//! can be diffed across runs and worker widths.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use dcn_flow::workload::UniformWorkload;
use dcn_server::{
    write_frame, Request, RequestBody, ServeOutcome, Server, ServerConfig, SubmitFlow, TopologySpec,
};
use dcn_server::{ServeAdmission, ServePolicy};

const USAGE: &str = "\
dcn-serve: scheduler-as-a-service daemon

USAGE:
    dcn-serve --stdio [OPTIONS]
    dcn-serve --listen ADDR [OPTIONS]
    dcn-serve --gen-requests N [--queries] [OPTIONS]

MODES:
    --stdio              serve one framed request stream on stdin/stdout
    --listen ADDR        accept TCP connections on ADDR (e.g. 127.0.0.1:7070),
                         one at a time, until a client sends Shutdown
    --gen-requests N     print a canned stream of N submissions (plus a
                         trailing Shutdown) to stdout and exit

OPTIONS:
    --topology SPEC      fabric to schedule on: fat-tree:K or
                         leaf-spine:L,S,H     [default: fat-tree:4]
    --shard-workers N    worker thread count  [default: 1]
    --policy NAME        edf | greedy | resolve [default: edf]
    --admission NAME     admit-all | reject-infeasible [default: admit-all]
    --algorithm NAME     registry algorithm behind --policy resolve
                         [default: dcfsr]
    --queue-depth N      per-worker job queue bound; a full queue answers
                         Busy                 [default: 1024]
    --retry-after-ms N   retry hint carried by Busy replies [default: 10]
    --seed N             base seed            [default: 1]
    --snapshot-path P    JSON file written on Snapshot requests and
                         restored on startup when present
    --snapshot-every N   also snapshot automatically every N submissions
    --queries            (generator) interleave a QueryFlow after every
                         fifth submission
    --help               print this text
";

struct Cli {
    stdio: bool,
    listen: Option<String>,
    gen_requests: Option<usize>,
    queries: bool,
    config: ServerConfig,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        stdio: false,
        listen: None,
        gen_requests: None,
        queries: false,
        config: ServerConfig::new(TopologySpec::FatTree { k: 4 }),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--stdio" => cli.stdio = true,
            "--listen" => cli.listen = Some(value("--listen")?),
            "--gen-requests" => {
                cli.gen_requests = Some(parse_num(&value("--gen-requests")?, "--gen-requests")?)
            }
            "--queries" => cli.queries = true,
            "--topology" => cli.config.topology = TopologySpec::parse(&value("--topology")?)?,
            "--shard-workers" => {
                cli.config.shard_workers = parse_num(&value("--shard-workers")?, "--shard-workers")?
            }
            "--policy" => cli.config.policy = ServePolicy::parse(&value("--policy")?)?,
            "--admission" => cli.config.admission = ServeAdmission::parse(&value("--admission")?)?,
            "--algorithm" => cli.config.algorithm = value("--algorithm")?,
            "--queue-depth" => {
                cli.config.queue_depth = parse_num(&value("--queue-depth")?, "--queue-depth")?
            }
            "--retry-after-ms" => {
                cli.config.retry_after_ms =
                    parse_num(&value("--retry-after-ms")?, "--retry-after-ms")? as u64
            }
            "--seed" => cli.config.seed = parse_num(&value("--seed")?, "--seed")? as u64,
            "--snapshot-path" => {
                cli.config.snapshot_path = Some(PathBuf::from(value("--snapshot-path")?))
            }
            "--snapshot-every" => {
                cli.config.snapshot_every =
                    Some(parse_num(&value("--snapshot-every")?, "--snapshot-every")? as u64)
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    let modes = usize::from(cli.stdio)
        + usize::from(cli.listen.is_some())
        + usize::from(cli.gen_requests.is_some());
    if modes != 1 {
        return Err("pick exactly one of --stdio, --listen or --gen-requests".to_string());
    }
    Ok(cli)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    let n: usize = text
        .parse()
        .map_err(|_| format!("{flag} expects a non-negative integer, got {text:?}"))?;
    if n == 0 && flag != "--seed" {
        return Err(format!("{flag} must be positive"));
    }
    Ok(n)
}

/// Prints a deterministic canned request stream: `n` submissions drawn
/// from the paper's uniform workload on the topology's hosts, sorted by
/// release time, optionally interleaved with queries, and a trailing
/// `Shutdown`.
fn generate_requests(cli: &Cli, n: usize) -> Result<(), String> {
    let built = cli.config.topology.build();
    let workload = UniformWorkload::paper_defaults(n, cli.config.seed);
    let flows = workload
        .generate(&built.hosts)
        .map_err(|e| format!("workload generation failed: {e}"))?;
    let mut flows: Vec<_> = flows.iter().cloned().collect();
    flows.sort_by(|a, b| {
        a.release
            .partial_cmp(&b.release)
            .expect("workload times are finite")
            .then(a.id.cmp(&b.id))
    });
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let mut req_id = 0u64;
    let mut emit = |body: RequestBody, out: &mut BufWriter<_>| -> io::Result<()> {
        let request = Request::new(req_id, body);
        req_id += 1;
        write_frame(out, &request)
    };
    for (submitted, flow) in flows.iter().enumerate() {
        emit(
            RequestBody::SubmitFlow(SubmitFlow {
                src: flow.src.0,
                dst: flow.dst.0,
                release: flow.release,
                deadline: flow.deadline,
                volume: flow.volume,
            }),
            &mut out,
        )
        .map_err(|e| e.to_string())?;
        // Server-side flow ids are dense in dispatch order, so the id of
        // the submission just sent is predictable.
        if cli.queries && (submitted + 1) % 5 == 0 {
            emit(
                RequestBody::QueryFlow {
                    flow: submitted as u64,
                },
                &mut out,
            )
            .map_err(|e| e.to_string())?;
        }
    }
    emit(RequestBody::Shutdown, &mut out).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())
}

fn serve_stdio(server: &mut Server) -> io::Result<ServeOutcome> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = BufReader::new(stdin.lock());
    let mut writer = BufWriter::new(stdout.lock());
    server.serve_connection(&mut reader, &mut writer)
}

fn serve_tcp(server: &mut Server, addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("dcn-serve: listening on {addr}");
    for stream in listener.incoming() {
        let stream = stream?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        match server.serve_connection(&mut reader, &mut writer) {
            Ok(ServeOutcome::Shutdown) => return Ok(()),
            Ok(ServeOutcome::Eof) => continue,
            // A dead client must not take down the daemon.
            Err(e) => eprintln!("dcn-serve: connection failed: {e}"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("dcn-serve: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(n) = cli.gen_requests {
        return match generate_requests(&cli, n) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("dcn-serve: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let mut server = match Server::start(cli.config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dcn-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if cli.stdio {
        serve_stdio(&mut server).map(|_| ())
    } else {
        serve_tcp(&mut server, cli.listen.as_deref().expect("mode checked"))
    };
    server.shutdown();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dcn-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
