//! The daemon: a router in front of message-passing shard workers.
//!
//! ```text
//!                    +--------------------------------------+
//!   framed requests  |  Server (router)                     |
//!  ----------------> |  pod_of(src) -> bucket -> worker     |
//!                    |  seq-stamped jobs, bounded queues    |
//!                    +----+------------+------------+-------+
//!                         | mpsc       | mpsc       | mpsc
//!                    +----v----+  +----v----+  +----v----+
//!                    | worker 0|  | worker 1|  | worker W |   one thread each,
//!                    | buckets |  | buckets |  | buckets  |   warm ShardEngine
//!                    | 0,W,..  |  | 1,W+1,..|  | ...      |   per owned bucket
//!                    +----+----+  +----+----+  +----+-----+
//!                         |            |            |
//!                         +-----> reply mux <-------+
//!                                (seq-ordered)
//!                                      |
//!                     framed replies   v
//!                    <-----------------+
//! ```
//!
//! Determinism contract: logical shards are *pod buckets* fixed by the
//! topology (`pod_of(src)`, plus one cross bucket for pod-less sources);
//! `--shard-workers` only maps buckets onto threads (`bucket % workers`).
//! The router stamps every request with a global sequence number,
//! dispatches in arrival order, and the reply mux writes responses back
//! in sequence order — so the reply stream is byte-identical at any
//! worker width.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::thread::JoinHandle;

use dcn_flow::Flow;
use dcn_power::PowerFunction;
use dcn_topology::{builders, BuiltTopology, GraphCsr, LinkId, NodeId};

use crate::protocol::{
    write_frame, AdmitReply, Request, RequestBody, Response, ResponseBody, StatusReply,
};
use crate::snapshot::{BucketState, SnapshotFile, SNAPSHOT_VERSION};
use crate::worker::{EngineSettings, ServeAdmission, ServePolicy, ShardEngine};

/// A parsed `--topology` specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// `fat-tree:K` — a k-ary fat-tree (k pods, `k^3/4` hosts).
    FatTree {
        /// The arity; even and at least 2.
        k: usize,
    },
    /// `leaf-spine:L,S,H` — L leaves, S spines, H hosts per leaf.
    LeafSpine {
        /// Leaf switch count.
        leaves: usize,
        /// Spine switch count.
        spines: usize,
        /// Hosts attached to each leaf.
        hosts_per_leaf: usize,
    },
}

impl TopologySpec {
    /// Parses a `--topology` value such as `fat-tree:8`.
    ///
    /// # Errors
    ///
    /// Returns a message describing the expected forms.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (family, params) = spec.split_once(':').unwrap_or((spec, ""));
        match family {
            "fat-tree" => {
                let k: usize = params
                    .parse()
                    .map_err(|_| format!("fat-tree expects `fat-tree:K`, got {spec:?}"))?;
                if k < 2 || !k.is_multiple_of(2) {
                    return Err(format!("fat-tree requires an even k >= 2, got {k}"));
                }
                Ok(TopologySpec::FatTree { k })
            }
            "leaf-spine" => {
                let parts: Vec<usize> = params
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("leaf-spine expects `leaf-spine:L,S,H`, got {spec:?}"))?;
                let [leaves, spines, hosts_per_leaf] = parts[..] else {
                    return Err(format!(
                        "leaf-spine expects `leaf-spine:L,S,H`, got {spec:?}"
                    ));
                };
                if leaves == 0 || spines == 0 || hosts_per_leaf == 0 {
                    return Err("leaf-spine parameters must all be positive".to_string());
                }
                Ok(TopologySpec::LeafSpine {
                    leaves,
                    spines,
                    hosts_per_leaf,
                })
            }
            other => Err(format!(
                "unknown topology family {other:?} (expected fat-tree or leaf-spine)"
            )),
        }
    }

    /// Builds the topology.
    pub fn build(&self) -> BuiltTopology {
        match *self {
            TopologySpec::FatTree { k } => builders::fat_tree(k),
            TopologySpec::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
            } => builders::leaf_spine(leaves, spines, hosts_per_leaf),
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologySpec::FatTree { k } => write!(f, "fat-tree:{k}"),
            TopologySpec::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
            } => write!(f, "leaf-spine:{leaves},{spines},{hosts_per_leaf}"),
        }
    }
}

/// Full configuration of a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The fabric to schedule on.
    pub topology: TopologySpec,
    /// Rate-planning policy of every shard.
    pub policy: ServePolicy,
    /// Admission rule of every shard.
    pub admission: ServeAdmission,
    /// Registry algorithm behind the `resolve` policy.
    pub algorithm: String,
    /// The power function energy and capacities are accounted under.
    pub power: PowerFunction,
    /// Worker thread count (buckets are striped `bucket % workers`).
    pub shard_workers: usize,
    /// Bound of each worker's job queue; a full queue answers `Busy`.
    pub queue_depth: usize,
    /// The `retry_after_ms` hint carried by `Busy` replies.
    pub retry_after_ms: u64,
    /// Base seed (per-solve seeds derive from it deterministically).
    pub seed: u64,
    /// Snapshot file; written on `Snapshot` requests and read back on
    /// startup when present.
    pub snapshot_path: Option<PathBuf>,
    /// Automatically snapshot after every N admitted submissions.
    pub snapshot_every: Option<u64>,
}

impl ServerConfig {
    /// The workload-facing defaults: fat-tree k=4, `edf` policy,
    /// admit-all, one worker, queue depth 1024, seed 1.
    pub fn new(topology: TopologySpec) -> Self {
        Self {
            topology,
            policy: ServePolicy::Edf,
            admission: ServeAdmission::AdmitAll,
            algorithm: "dcfsr".to_string(),
            power: PowerFunction::speed_scaling_only(1.0, 2.0, 10.0),
            shard_workers: 1,
            queue_depth: 1024,
            retry_after_ms: 10,
            seed: 1,
            snapshot_path: None,
            snapshot_every: None,
        }
    }
}

/// Startup/runtime failures of the daemon itself (protocol-level errors
/// are answered on the wire instead).
#[derive(Debug)]
pub enum ServerError {
    /// Invalid configuration, incompatible snapshot, or worker startup
    /// failure.
    Config(String),
    /// Filesystem failure around the snapshot file.
    Io(io::Error),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Config(msg) => write!(f, "{msg}"),
            ServerError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// A unit of work on a worker queue.
enum Job {
    /// Admit-or-reject one flow on its bucket's engine.
    Submit {
        seq: u64,
        req_id: u64,
        bucket: usize,
        flow: Flow,
        reply: Sender<(u64, Response)>,
    },
    /// Answer a status query from the bucket owning the flow id.
    Query {
        seq: u64,
        req_id: u64,
        bucket: usize,
        flow: u64,
        reply: Sender<(u64, Response)>,
    },
    /// Dump the state of every bucket the worker owns. Rides the same
    /// FIFO queue as submissions, so it naturally serializes after all
    /// previously dispatched work — the snapshot barrier.
    Collect { reply: Sender<Vec<BucketState>> },
    /// Apply a link failure/recovery to every engine the worker owns.
    /// Rides the FIFO queue like [`Job::Collect`], so it lands *after*
    /// all previously dispatched submissions and *before* all later ones
    /// — at any worker width, every submission sees the same fabric.
    Topology {
        link: LinkId,
        down: bool,
        reply: Sender<()>,
    },
    /// Drain and exit.
    Stop,
}

/// What [`Server::serve_connection`] ran into at the end of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The peer closed the stream (or broke framing and was dropped).
    Eof,
    /// The peer sent `Shutdown`; the caller should stop accepting.
    Shutdown,
}

/// A running daemon: router state plus its worker threads.
pub struct Server {
    config: ServerConfig,
    graph: GraphCsr,
    hosts: Vec<bool>,
    bucket_count: usize,
    queues: Vec<SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
    reply_tx: Sender<(u64, Response)>,
    reply_rx: Receiver<(u64, Response)>,
    /// Next global sequence number (== requests dispatched so far).
    seq: u64,
    /// Next flow id (== flows ever enqueued, across restarts).
    flows_assigned: u64,
    /// Bucket owning each assigned flow id.
    assignments: Vec<usize>,
    admitted_since_snapshot: u64,
}

impl Server {
    /// Builds the topology, restores the snapshot when one exists, and
    /// spawns the worker threads.
    ///
    /// # Errors
    ///
    /// Rejects invalid configurations (zero workers/queue depth, unknown
    /// algorithm), unreadable or incompatible snapshots, and worker
    /// startup failures.
    pub fn start(config: ServerConfig) -> Result<Self, ServerError> {
        if config.shard_workers == 0 {
            return Err(ServerError::Config(
                "--shard-workers must be positive".into(),
            ));
        }
        if config.queue_depth == 0 {
            return Err(ServerError::Config("--queue-depth must be positive".into()));
        }
        let built = config.topology.build();
        let graph = GraphCsr::from_network(&built.network);
        let mut hosts = vec![false; built.network.node_count()];
        for &h in &built.hosts {
            hosts[h.index()] = true;
        }
        let bucket_count = graph.pod_count() + 1;

        let snapshot = match &config.snapshot_path {
            Some(path) if path.exists() => {
                let file = SnapshotFile::load(path).map_err(ServerError::Config)?;
                check_snapshot_compat(&config, &file)?;
                Some(file)
            }
            _ => None,
        };
        let (flows_assigned, assignments, mut states) = match snapshot {
            Some(file) => {
                let mut states: BTreeMap<usize, BucketState> = BTreeMap::new();
                for bucket in file.buckets {
                    states.insert(bucket.bucket, bucket);
                }
                (file.flows_assigned, file.assignments, states)
            }
            None => (0, Vec::new(), BTreeMap::new()),
        };

        let settings = EngineSettings {
            power: config.power,
            policy: config.policy,
            admission: config.admission,
            algorithm: config.algorithm.clone(),
            seed: config.seed,
        };
        let workers = config.shard_workers.min(bucket_count);
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), String>>();
        for worker in 0..workers {
            let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth);
            let buckets: Vec<usize> = (0..bucket_count)
                .filter(|b| b % workers == worker)
                .collect();
            let initial: BTreeMap<usize, BucketState> = buckets
                .iter()
                .filter_map(|b| states.remove(b).map(|s| (*b, s)))
                .collect();
            let spec = config.topology;
            let settings = settings.clone();
            let ready = ready_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("shard-worker-{worker}"))
                .spawn(move || {
                    // Each worker owns its topology so engines can borrow
                    // it for the thread's whole lifetime.
                    let built = spec.build();
                    let mut engines: BTreeMap<usize, ShardEngine<'_>> = BTreeMap::new();
                    for &bucket in &buckets {
                        let engine = match initial.get(&bucket) {
                            Some(state) => {
                                ShardEngine::restore(&built.network, settings.clone(), state)
                            }
                            None => ShardEngine::new(&built.network, settings.clone(), bucket),
                        };
                        match engine {
                            Ok(engine) => {
                                engines.insert(bucket, engine);
                            }
                            Err(e) => {
                                let _ = ready.send(Err(format!(
                                    "worker {worker} failed to start bucket {bucket}: {e}"
                                )));
                                return;
                            }
                        }
                    }
                    let _ = ready.send(Ok(()));
                    run_worker(&job_rx, &mut engines);
                })
                .map_err(|e| ServerError::Config(format!("cannot spawn worker: {e}")))?;
            queues.push(job_tx);
            handles.push(handle);
        }
        drop(ready_tx);
        for _ in 0..workers {
            match ready_rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(msg)) => return Err(ServerError::Config(msg)),
                Err(_) => {
                    return Err(ServerError::Config(
                        "a shard worker died during startup".to_string(),
                    ))
                }
            }
        }

        Ok(Self {
            config,
            graph,
            hosts,
            bucket_count,
            queues,
            handles,
            reply_tx,
            reply_rx,
            seq: 0,
            flows_assigned,
            assignments,
            admitted_since_snapshot: 0,
        })
    }

    /// The configuration the daemon is running under.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of logical shards (pod buckets) of the topology.
    pub fn bucket_count(&self) -> usize {
        self.bucket_count
    }

    /// The bucket a source node routes to: its pod, or the cross bucket.
    fn bucket_of(&self, src: usize) -> usize {
        self.graph
            .pod_of(NodeId(src))
            .unwrap_or(self.bucket_count - 1)
    }

    /// Routes one decoded request. Returns the stamped sequence number
    /// and, for requests the router itself answers (errors, `Busy`,
    /// snapshots, `Shutdown`), the immediate response; `None` means a
    /// worker will deliver the reply through the mux channel later.
    pub fn dispatch(&mut self, request: Request) -> (u64, Option<Response>) {
        let seq = self.seq;
        self.seq += 1;
        let id = request.id;
        match request.body {
            RequestBody::SubmitFlow(submit) => {
                if submit.src >= self.hosts.len() || !self.hosts[submit.src] {
                    return (
                        seq,
                        Some(Response::error(
                            id,
                            "bad-flow",
                            format!("source {} is not a host", submit.src),
                        )),
                    );
                }
                if submit.dst >= self.hosts.len() || !self.hosts[submit.dst] {
                    return (
                        seq,
                        Some(Response::error(
                            id,
                            "bad-flow",
                            format!("destination {} is not a host", submit.dst),
                        )),
                    );
                }
                // Under link failures an endpoint pair can be cut off
                // entirely; routing such a flow to a shard would at best
                // be rejected with an opaque planning error and at worst
                // admitted on a stale route. Answer with a typed error
                // up front instead.
                if self.graph.down_link_count() > 0
                    && self
                        .graph
                        .shortest_path(NodeId(submit.src), NodeId(submit.dst))
                        .is_none()
                {
                    return (
                        seq,
                        Some(Response::error(
                            id,
                            "unreachable",
                            format!(
                                "no route from {} to {}: link failures disconnected the endpoints",
                                submit.src, submit.dst
                            ),
                        )),
                    );
                }
                let flow_id = self.flows_assigned as usize;
                let flow = match Flow::new(
                    flow_id,
                    NodeId(submit.src),
                    NodeId(submit.dst),
                    submit.release,
                    submit.deadline,
                    submit.volume,
                ) {
                    Ok(flow) => flow,
                    Err(e) => {
                        return (seq, Some(Response::error(id, "bad-flow", e.to_string())));
                    }
                };
                let bucket = self.bucket_of(submit.src);
                let job = Job::Submit {
                    seq,
                    req_id: id,
                    bucket,
                    flow,
                    reply: self.reply_tx.clone(),
                };
                match self.queues[bucket % self.queues.len()].try_send(job) {
                    Ok(()) => {
                        self.flows_assigned += 1;
                        self.assignments.push(bucket);
                        self.admitted_since_snapshot += 1;
                        if let Some(every) = self.config.snapshot_every {
                            if self.admitted_since_snapshot >= every {
                                self.admitted_since_snapshot = 0;
                                // Periodic persistence is best-effort; a
                                // failed write must not take down serving.
                                let _ = self.take_snapshot();
                            }
                        }
                        (seq, None)
                    }
                    Err(TrySendError::Full(_)) => (seq, Some(self.busy(id))),
                    Err(TrySendError::Disconnected(_)) => (
                        seq,
                        Some(Response::error(id, "internal", "shard worker is gone")),
                    ),
                }
            }
            RequestBody::QueryFlow { flow } => {
                let Some(&bucket) = self.assignments.get(flow as usize) else {
                    return (
                        seq,
                        Some(Response::new(
                            id,
                            ResponseBody::Status(StatusReply {
                                flow,
                                state: "unknown".to_string(),
                                delivered: 0.0,
                                remaining: 0.0,
                            }),
                        )),
                    );
                };
                let job = Job::Query {
                    seq,
                    req_id: id,
                    bucket,
                    flow,
                    reply: self.reply_tx.clone(),
                };
                match self.queues[bucket % self.queues.len()].try_send(job) {
                    Ok(()) => (seq, None),
                    Err(TrySendError::Full(_)) => (seq, Some(self.busy(id))),
                    Err(TrySendError::Disconnected(_)) => (
                        seq,
                        Some(Response::error(id, "internal", "shard worker is gone")),
                    ),
                }
            }
            RequestBody::LinkEvent { link, down } => {
                if link >= self.graph.link_count() {
                    return (
                        seq,
                        Some(Response::error(
                            id,
                            "bad-link",
                            format!(
                                "link {link} does not exist (topology has {} directed links)",
                                self.graph.link_count()
                            ),
                        )),
                    );
                }
                let link_id = LinkId(link);
                // The router's own graph answers reachability checks for
                // later submissions; the broadcast updates every shard
                // engine behind the FIFO barrier before the ack goes out.
                let changed = if down {
                    self.graph.fail_link(link_id)
                } else {
                    self.graph.restore_link(link_id)
                };
                let mut acks = Vec::with_capacity(self.queues.len());
                for queue in &self.queues {
                    let (tx, rx) = mpsc::channel();
                    if queue
                        .send(Job::Topology {
                            link: link_id,
                            down,
                            reply: tx,
                        })
                        .is_err()
                    {
                        return (
                            seq,
                            Some(Response::error(id, "internal", "shard worker is gone")),
                        );
                    }
                    acks.push(rx);
                }
                for ack in acks {
                    if ack.recv().is_err() {
                        return (
                            seq,
                            Some(Response::error(id, "internal", "shard worker is gone")),
                        );
                    }
                }
                (
                    seq,
                    Some(Response::new(
                        id,
                        ResponseBody::LinkAck {
                            link,
                            down,
                            changed,
                        },
                    )),
                )
            }
            RequestBody::Snapshot => match self.take_snapshot() {
                Ok((path, flows)) => (
                    seq,
                    Some(Response::new(
                        id,
                        ResponseBody::SnapshotDone { path, flows },
                    )),
                ),
                Err(e) => (
                    seq,
                    Some(Response::error(id, "snapshot-failed", e.to_string())),
                ),
            },
            RequestBody::Shutdown => (seq, Some(Response::new(id, ResponseBody::Bye))),
        }
    }

    fn busy(&self, id: u64) -> Response {
        Response::new(
            id,
            ResponseBody::Busy {
                retry_after_ms: self.config.retry_after_ms,
            },
        )
    }

    /// Collects every bucket's state (a FIFO barrier behind all
    /// previously dispatched work) and writes the snapshot file.
    ///
    /// # Errors
    ///
    /// Fails without a `--snapshot-path` and on filesystem errors.
    pub fn take_snapshot(&mut self) -> Result<(String, usize), ServerError> {
        let Some(path) = self.config.snapshot_path.clone() else {
            return Err(ServerError::Config(
                "no --snapshot-path configured".to_string(),
            ));
        };
        let file = self.collect_snapshot()?;
        file.save(&path)?;
        Ok((path.display().to_string(), file.flow_count()))
    }

    /// Assembles the in-memory snapshot of all buckets.
    ///
    /// # Errors
    ///
    /// Fails when a worker died.
    pub fn collect_snapshot(&mut self) -> Result<SnapshotFile, ServerError> {
        let mut buckets = Vec::with_capacity(self.bucket_count);
        for queue in &self.queues {
            let (tx, rx) = mpsc::channel();
            queue
                .send(Job::Collect { reply: tx })
                .map_err(|_| ServerError::Config("shard worker is gone".to_string()))?;
            let states = rx
                .recv()
                .map_err(|_| ServerError::Config("shard worker is gone".to_string()))?;
            buckets.extend(states);
        }
        buckets.sort_by_key(|b| b.bucket);
        Ok(SnapshotFile {
            version: SNAPSHOT_VERSION,
            topology: self.config.topology.to_string(),
            policy: self.config.policy.name().to_string(),
            admission: self.config.admission.name().to_string(),
            seed: self.config.seed,
            flows_assigned: self.flows_assigned,
            assignments: self.assignments.clone(),
            buckets,
        })
    }

    /// Closed-loop helper: dispatches one request and blocks until its
    /// reply is ready. Intended for benches and tests; interleaving it
    /// with [`Server::serve_connection`] on the same server would steal
    /// that loop's replies.
    pub fn request(&mut self, request: Request) -> Response {
        let (seq, immediate) = self.dispatch(request);
        if let Some(response) = immediate {
            return response;
        }
        loop {
            match self.reply_rx.recv() {
                Ok((got, response)) if got == seq => return response,
                Ok(_) => continue, // A stale reply from an abandoned loop.
                Err(_) => {
                    return Response::error(0, "internal", "shard worker is gone");
                }
            }
        }
    }

    /// Serves one framed request stream: reads frames, routes them, and
    /// writes replies back in sequence order. Malformed or oversized
    /// frames get a typed error reply (when the stream is still
    /// writable) and a clean disconnect; the daemon itself never panics
    /// on bad input.
    ///
    /// # Errors
    ///
    /// Propagates write-side I/O errors; read-side errors end the
    /// stream with [`ServeOutcome::Eof`] instead.
    pub fn serve_connection(
        &mut self,
        reader: &mut impl BufRead,
        writer: &mut impl Write,
    ) -> io::Result<ServeOutcome> {
        use crate::protocol::{decode_request, read_frame, FrameError};

        let mut pending: BTreeMap<u64, Response> = BTreeMap::new();
        let mut next_write = self.seq;
        let mut outcome = ServeOutcome::Eof;
        let mut error_reply: Option<Response> = None;
        loop {
            match read_frame(reader) {
                Ok(Some(payload)) => {
                    let (seq, immediate) = match decode_request(&payload) {
                        Ok(request) => {
                            let shutdown = matches!(request.body, RequestBody::Shutdown);
                            let routed = self.dispatch(request);
                            if shutdown {
                                outcome = ServeOutcome::Shutdown;
                            }
                            routed
                        }
                        Err(response) => {
                            let seq = self.seq;
                            self.seq += 1;
                            (seq, Some(response))
                        }
                    };
                    if let Some(response) = immediate {
                        pending.insert(seq, response);
                    }
                    self.drain_replies(&mut pending, &mut next_write, writer, false)?;
                    if outcome == ServeOutcome::Shutdown {
                        break;
                    }
                }
                Ok(None) => break,
                Err(FrameError::Oversized(len)) => {
                    error_reply = Some(Response::error(
                        0,
                        "frame-too-large",
                        format!("frame of {len} bytes exceeds the limit"),
                    ));
                    break;
                }
                Err(FrameError::Malformed(msg)) => {
                    error_reply = Some(Response::error(0, "bad-frame", msg));
                    break;
                }
                // The peer vanished mid-frame; nothing left to answer.
                Err(FrameError::Truncated) | Err(FrameError::Io(_)) => break,
            }
        }
        self.drain_replies(&mut pending, &mut next_write, writer, true)?;
        if let Some(response) = error_reply {
            write_frame(writer, &response)?;
        }
        writer.flush()?;
        Ok(outcome)
    }

    /// Moves worker replies into the order buffer and writes out every
    /// response that is next in sequence. With `block`, waits until all
    /// outstanding sequence numbers have been written.
    fn drain_replies(
        &mut self,
        pending: &mut BTreeMap<u64, Response>,
        next_write: &mut u64,
        writer: &mut impl Write,
        block: bool,
    ) -> io::Result<()> {
        loop {
            while let Ok((seq, response)) = self.reply_rx.try_recv() {
                pending.insert(seq, response);
            }
            while let Some(response) = pending.remove(next_write) {
                write_frame(writer, &response)?;
                *next_write += 1;
            }
            if !block || *next_write >= self.seq {
                return Ok(());
            }
            match self.reply_rx.recv() {
                Ok((seq, response)) => {
                    pending.insert(seq, response);
                }
                Err(_) => {
                    // Workers are gone; answer what we can and stop.
                    while *next_write < self.seq {
                        let response = pending.remove(next_write).unwrap_or_else(|| {
                            Response::error(0, "internal", "shard worker is gone")
                        });
                        write_frame(writer, &response)?;
                        *next_write += 1;
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Stops and joins every worker thread.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        for queue in &self.queues {
            let _ = queue.send(Job::Stop);
        }
        self.queues.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Verifies a snapshot was produced under this configuration.
fn check_snapshot_compat(config: &ServerConfig, file: &SnapshotFile) -> Result<(), ServerError> {
    let mine = (
        config.topology.to_string(),
        config.policy.name().to_string(),
        config.admission.name().to_string(),
        config.seed,
    );
    let theirs = (
        file.topology.clone(),
        file.policy.clone(),
        file.admission.clone(),
        file.seed,
    );
    if mine != theirs {
        return Err(ServerError::Config(format!(
            "snapshot was taken under topology={} policy={} admission={} seed={}, \
             but the daemon is configured with topology={} policy={} admission={} seed={}",
            theirs.0, theirs.1, theirs.2, theirs.3, mine.0, mine.1, mine.2, mine.3
        )));
    }
    Ok(())
}

/// The worker loop: pull jobs, answer on the reply channel.
fn run_worker(jobs: &Receiver<Job>, engines: &mut BTreeMap<usize, ShardEngine<'_>>) {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Submit {
                seq,
                req_id,
                bucket,
                flow,
                reply,
            } => {
                let flow_id = flow.id as u64;
                let response = match engines.get_mut(&bucket) {
                    Some(engine) => {
                        let outcome = engine.submit(flow);
                        Response::new(
                            req_id,
                            ResponseBody::Admit(AdmitReply {
                                flow: flow_id,
                                admitted: outcome.admitted,
                                reason: outcome.reason,
                                plan: outcome.plan,
                            }),
                        )
                    }
                    None => Response::error(req_id, "internal", "bucket routed to wrong worker"),
                };
                let _ = reply.send((seq, response));
            }
            Job::Query {
                seq,
                req_id,
                bucket,
                flow,
                reply,
            } => {
                let response = match engines.get(&bucket) {
                    Some(engine) => {
                        let (state, delivered, remaining) = engine.query(flow as usize);
                        Response::new(
                            req_id,
                            ResponseBody::Status(StatusReply {
                                flow,
                                state: state.to_string(),
                                delivered,
                                remaining,
                            }),
                        )
                    }
                    None => Response::error(req_id, "internal", "bucket routed to wrong worker"),
                };
                let _ = reply.send((seq, response));
            }
            Job::Collect { reply } => {
                let states = engines.values().map(ShardEngine::state).collect();
                let _ = reply.send(states);
            }
            Job::Topology { link, down, reply } => {
                for engine in engines.values_mut() {
                    engine.apply_link_event(link, down);
                }
                let _ = reply.send(());
            }
            Job::Stop => break,
        }
    }
}
