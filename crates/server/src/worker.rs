//! The per-shard scheduling engine: one warm [`SolverContext`] plus an
//! [`InFlightLedger`] of admitted flows, advanced one submission at a
//! time.
//!
//! A [`ShardEngine`] owns everything one logical shard (pod bucket)
//! needs to answer requests: the residual state of its admitted flows,
//! the rate plan currently committed for each, and the stitched history
//! of what those plans already delivered. Time is the *logical* clock of
//! the request stream — each submission advances the shard to the flow's
//! release time, credits every live flow with the volume its plan
//! delivered in the meantime, retires completed or expired flows, and
//! only then decides admission. Nothing reads the wall clock, so a
//! shard's decisions are a pure function of the subsequence of requests
//! routed to it — the bedrock of the daemon's determinism contract (same
//! request stream, same replies, at any `--shard-workers` width).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use dcn_core::online::{fractionally_feasible, InFlightLedger, PathCache};
use dcn_core::{Algorithm, AlgorithmRegistry, SolveError, SolverContext};
use dcn_flow::{Flow, FlowId};
use dcn_power::{PowerFunction, RateProfile};
use dcn_solver::fmcf::FmcfSolverConfig;
use dcn_topology::{LinkId, Network, Path, TopologyEvent};

use crate::protocol::{PlanSegment, WirePlan};
use crate::snapshot::{BucketState, FlowRecord, PlanRecord};

/// How a shard plans rates for admitted flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// Earliest-deadline-first pacing: each flow gets its required rate
    /// (`remaining / time-to-deadline`) on its fewest-hop path. Solver-free
    /// and O(live flows) per submission — the high-throughput default.
    Edf,
    /// Full-blast na&iuml;ve baseline: each flow transmits at its path's
    /// bottleneck capacity until done. What a deadline-oblivious fabric
    /// would do; the serve bench uses it as the energy reference.
    Greedy,
    /// Re-solves the whole residual instance with a registry algorithm at
    /// every admission (the online engine's `resolve` policy, adapted to
    /// serving). Highest quality, solver-priced.
    Resolve,
}

impl ServePolicy {
    /// The stable name used by `--policy`, snapshots and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            ServePolicy::Edf => "edf",
            ServePolicy::Greedy => "greedy",
            ServePolicy::Resolve => "resolve",
        }
    }

    /// Parses a `--policy` value.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "edf" => Ok(ServePolicy::Edf),
            "greedy" => Ok(ServePolicy::Greedy),
            "resolve" => Ok(ServePolicy::Resolve),
            other => Err(format!(
                "unknown serve policy {other:?} (expected edf, greedy or resolve)"
            )),
        }
    }
}

/// How a shard decides admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeAdmission {
    /// Admit every routable flow.
    AdmitAll,
    /// Probe the LP relaxation of the candidate residual instance and
    /// reject flows whose addition is fractionally infeasible (the online
    /// engine's `RejectInfeasible` rule).
    RejectInfeasible {
        /// Relative capacity slack tolerated in the fractional loads.
        slack: f64,
    },
}

impl ServeAdmission {
    /// The stable name used by `--admission`, snapshots and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            ServeAdmission::AdmitAll => "admit-all",
            ServeAdmission::RejectInfeasible { .. } => "reject-infeasible",
        }
    }

    /// Parses an `--admission` value.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "admit-all" => Ok(ServeAdmission::AdmitAll),
            "reject-infeasible" => Ok(ServeAdmission::RejectInfeasible { slack: 1e-3 }),
            other => Err(format!(
                "unknown admission rule {other:?} (expected admit-all or reject-infeasible)"
            )),
        }
    }
}

/// The per-engine settings shared by every shard of a daemon.
#[derive(Debug, Clone)]
pub struct EngineSettings {
    /// The power function energy and capacities are accounted under.
    pub power: PowerFunction,
    /// Rate-planning policy.
    pub policy: ServePolicy,
    /// Admission rule.
    pub admission: ServeAdmission,
    /// Registry name of the algorithm behind [`ServePolicy::Resolve`].
    pub algorithm: String,
    /// Base seed; per-solve seeds derive from it, the bucket id and the
    /// bucket-local event index (never from thread identity).
    pub seed: u64,
}

/// The committed plan of one live flow: its path and the rate profile
/// from the shard clock onwards.
#[derive(Debug, Clone)]
struct Plan {
    path: Path,
    profile: RateProfile,
}

/// The admission decision of one submission, ready to put on the wire.
#[derive(Debug, Clone)]
pub struct AdmitOutcome {
    /// Whether the flow was admitted.
    pub admitted: bool,
    /// Why not, when rejected.
    pub reason: Option<String>,
    /// The committed plan, when admitted.
    pub plan: Option<WirePlan>,
}

impl AdmitOutcome {
    fn rejected(reason: impl Into<String>) -> Self {
        Self {
            admitted: false,
            reason: Some(reason.into()),
            plan: None,
        }
    }
}

/// The Frank–Wolfe configuration shards use for admission probes and
/// `resolve` re-solves: the benchmark harness's serving-grade settings
/// (fewer iterations and a looser tolerance than the offline default).
pub fn serve_fmcf_config() -> FmcfSolverConfig {
    FmcfSolverConfig {
        max_iterations: 25,
        tolerance: 1e-3,
        line_search_steps: 24,
        ..Default::default()
    }
}

/// One logical shard: warm solver context + residual state. See the
/// module docs for the time model.
pub struct ShardEngine<'net> {
    bucket: usize,
    ctx: SolverContext<'net>,
    settings: EngineSettings,
    fmcf: FmcfSolverConfig,
    algorithm: Option<Box<dyn Algorithm>>,
    ledger: InFlightLedger,
    plans: BTreeMap<FlowId, Plan>,
    committed: BTreeMap<FlowId, Plan>,
    rejected: BTreeSet<FlowId>,
    paths: PathCache,
    clock: f64,
    events: u64,
}

impl<'net> ShardEngine<'net> {
    /// Creates an empty shard engine over a validated network.
    ///
    /// # Errors
    ///
    /// Propagates topology validation errors and an unknown
    /// [`EngineSettings::algorithm`] name.
    pub fn new(
        network: &'net Network,
        settings: EngineSettings,
        bucket: usize,
    ) -> Result<Self, SolveError> {
        let ctx = SolverContext::from_network(network)?;
        let algorithm = match settings.policy {
            ServePolicy::Resolve => {
                Some(AlgorithmRegistry::with_defaults().create(&settings.algorithm)?)
            }
            ServePolicy::Edf | ServePolicy::Greedy => None,
        };
        Ok(Self {
            bucket,
            ctx,
            settings,
            fmcf: serve_fmcf_config(),
            algorithm,
            ledger: InFlightLedger::new(),
            plans: BTreeMap::new(),
            committed: BTreeMap::new(),
            rejected: BTreeSet::new(),
            paths: PathCache::new(),
            clock: f64::NEG_INFINITY,
            events: 0,
        })
    }

    /// The shard's logical clock (the last submission time seen).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the shard to `now`: credits every live flow with the
    /// volume its plan delivered over `[clock, now)`, stitches that slice
    /// into the committed history, and retires done or expired flows.
    fn advance(&mut self, now: f64) {
        if now <= self.clock {
            return;
        }
        let from = self.clock;
        for (&id, plan) in &self.plans {
            let delivered = plan.profile.volume_between(from, now);
            if delivered > 0.0 {
                self.ledger.deliver(id, delivered);
                let slice = plan.profile.restricted(from, now);
                match self.committed.get_mut(&id) {
                    Some(history) => {
                        history.profile.merge(&slice);
                        history.path = plan.path.clone();
                    }
                    None => {
                        self.committed.insert(
                            id,
                            Plan {
                                path: plan.path.clone(),
                                profile: slice,
                            },
                        );
                    }
                }
            }
        }
        self.clock = now;
        for id in self.ledger.retire(now) {
            self.plans.remove(&id);
        }
    }

    /// Handles one flow submission: advance, admission check, plan, and
    /// commit. Never panics; every failure mode becomes a rejection with
    /// a reason.
    pub fn submit(&mut self, flow: Flow) -> AdmitOutcome {
        self.events += 1;
        let now = flow.release.max(if self.clock.is_finite() {
            self.clock
        } else {
            flow.release
        });
        self.advance(now);
        if flow.deadline <= now {
            self.rejected.insert(flow.id);
            return AdmitOutcome::rejected(format!(
                "deadline {} is not after the shard clock {now}",
                flow.deadline
            ));
        }
        let mut flow = flow;
        // The shard clock only moves forward; a release in the past is
        // served from now on.
        flow.release = now;

        if let ServeAdmission::RejectInfeasible { slack } = self.settings.admission {
            match self.ledger.residual_set(now, Some(&flow)) {
                Ok((set, _)) => {
                    match fractionally_feasible(
                        &mut self.ctx,
                        &set,
                        &self.settings.power,
                        &self.fmcf,
                        slack,
                    ) {
                        Ok(true) => {}
                        Ok(false) => {
                            self.rejected.insert(flow.id);
                            return AdmitOutcome::rejected(
                                "candidate residual instance is fractionally infeasible",
                            );
                        }
                        Err(e) => {
                            self.rejected.insert(flow.id);
                            return AdmitOutcome::rejected(format!(
                                "feasibility probe failed: {e}"
                            ));
                        }
                    }
                }
                Err(e) => {
                    self.rejected.insert(flow.id);
                    return AdmitOutcome::rejected(format!("residual instance is degenerate: {e}"));
                }
            }
        }

        let id = flow.id;
        self.ledger.admit(flow.clone());
        let planned = match self.settings.policy {
            ServePolicy::Edf => self.plan_paced(&flow, false),
            ServePolicy::Greedy => self.plan_paced(&flow, true),
            ServePolicy::Resolve => self.plan_resolved(),
        };
        match planned {
            Ok(()) => {
                let plan = &self.plans[&id];
                AdmitOutcome {
                    admitted: true,
                    reason: None,
                    plan: Some(wire_plan(plan)),
                }
            }
            Err(e) => {
                self.ledger.remove(id);
                self.plans.remove(&id);
                self.rejected.insert(id);
                AdmitOutcome::rejected(format!("planning failed: {e}"))
            }
        }
    }

    /// Plans the new flow alone at a constant rate on its fewest-hop
    /// path: the required rate (EDF pacing) or the path bottleneck
    /// (greedy full blast). Existing plans are untouched — under constant
    /// pacing, a flow that tracks its plan keeps its required rate.
    fn plan_paced(&mut self, flow: &Flow, full_blast: bool) -> Result<(), SolveError> {
        let path = self
            .paths
            .shortest(&self.ctx, flow.id, flow.src, flow.dst)?;
        let span = flow.deadline - flow.release;
        let rate = if full_blast {
            let bottleneck = path
                .links()
                .iter()
                .map(|&l| self.ctx.graph().capacity(l))
                .fold(self.settings.power.capacity(), f64::min);
            bottleneck.max(flow.volume / span)
        } else {
            flow.volume / span
        };
        let duration = (flow.volume / rate).min(span);
        let profile = RateProfile::constant(flow.release, flow.release + duration, rate);
        self.plans.insert(flow.id, Plan { path, profile });
        Ok(())
    }

    /// Re-solves the whole residual instance and replaces every live
    /// flow's plan with the fresh schedule.
    fn plan_resolved(&mut self) -> Result<(), SolveError> {
        let (set, originals) = self.ledger.residual_set(self.clock, None)?;
        let algorithm = self
            .algorithm
            .as_mut()
            .expect("resolve policy constructs its algorithm");
        algorithm.set_seed(
            self.settings
                .seed
                .wrapping_add(self.events)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(self.bucket as u64 + 1),
        );
        let solution = algorithm.solve(&mut self.ctx, &set, &self.settings.power)?;
        let schedule = solution.schedule.ok_or_else(|| SolveError::InvalidInput {
            reason: "the resolve algorithm produced no schedule".to_string(),
        })?;
        let mut fresh: BTreeMap<FlowId, Plan> = BTreeMap::new();
        for (residual_id, &original) in originals.iter().enumerate() {
            let fs =
                schedule
                    .flow_schedule(residual_id)
                    .ok_or_else(|| SolveError::InvalidInput {
                        reason: format!("re-solve left residual flow {residual_id} unscheduled"),
                    })?;
            fresh.insert(
                original,
                Plan {
                    path: fs.path.clone(),
                    profile: fs.profile.clone(),
                },
            );
        }
        self.plans = fresh;
        Ok(())
    }

    /// The status of a flow id: `("in-flight" | "delivered" | "missed" |
    /// "rejected" | "unknown", delivered, remaining)`, as of the shard
    /// clock.
    pub fn query(&self, id: FlowId) -> (&'static str, f64, f64) {
        if self.rejected.contains(&id) {
            return ("rejected", 0.0, 0.0);
        }
        match self.ledger.get(id) {
            Some(entry) if !entry.retired => ("in-flight", entry.delivered, entry.remaining()),
            Some(entry) if entry.missed => ("missed", entry.delivered, entry.remaining()),
            Some(entry) => ("delivered", entry.delivered, entry.remaining()),
            None => ("unknown", 0.0, 0.0),
        }
    }

    /// Number of submissions this shard has processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Applies a link failure or recovery to the shard's solver context.
    /// Subsequent plans and re-solves see the updated fabric (the graph
    /// epoch bump invalidates the path cache and warm-start fingerprints
    /// automatically). Returns whether the link state actually changed.
    pub fn apply_link_event(&mut self, link: LinkId, down: bool) -> bool {
        let time = if self.clock.is_finite() {
            self.clock
        } else {
            0.0
        };
        let event = if down {
            TopologyEvent::LinkDown { time, link }
        } else {
            TopologyEvent::LinkUp { time, link }
        };
        self.ctx.apply_topology_event(event)
    }

    /// Dumps the shard's full state for a snapshot.
    pub fn state(&self) -> BucketState {
        let plan_records = |plans: &BTreeMap<FlowId, Plan>| -> Vec<PlanRecord> {
            plans
                .iter()
                .map(|(&flow, plan)| PlanRecord {
                    flow: flow as u64,
                    path: plan.path.nodes().iter().map(|n| n.0).collect(),
                    segments: plan
                        .profile
                        .segments()
                        .into_iter()
                        .map(|(start, end, rate)| PlanSegment { start, end, rate })
                        .collect(),
                })
                .collect()
        };
        BucketState {
            bucket: self.bucket,
            clock: if self.clock.is_finite() {
                Some(self.clock)
            } else {
                None
            },
            events: self.events,
            rejected: self.rejected.iter().map(|&id| id as u64).collect(),
            flows: self
                .ledger
                .entries()
                .map(|entry| FlowRecord {
                    id: entry.flow.id as u64,
                    src: entry.flow.src.0,
                    dst: entry.flow.dst.0,
                    release: entry.flow.release,
                    deadline: entry.flow.deadline,
                    volume: entry.flow.volume,
                    delivered: entry.delivered,
                    retired: entry.retired,
                    missed: entry.missed,
                })
                .collect(),
            plans: plan_records(&self.plans),
            committed: plan_records(&self.committed),
        }
    }

    /// Rebuilds a shard engine from a snapshot dump.
    ///
    /// # Errors
    ///
    /// Propagates construction errors and rejects records that do not
    /// describe valid flows or paths on this network.
    pub fn restore(
        network: &'net Network,
        settings: EngineSettings,
        state: &BucketState,
    ) -> Result<Self, SolveError> {
        let mut engine = Self::new(network, settings, state.bucket)?;
        engine.clock = state.clock.unwrap_or(f64::NEG_INFINITY);
        engine.events = state.events;
        engine.rejected = state.rejected.iter().map(|&id| id as FlowId).collect();
        let entries = state
            .flows
            .iter()
            .map(|record| record.to_entry())
            .collect::<Result<Vec<_>, SolveError>>()?;
        engine.ledger = InFlightLedger::restore(entries);
        engine.plans = restore_plans(network, &state.plans)?;
        engine.committed = restore_plans(network, &state.committed)?;
        Ok(engine)
    }
}

/// Rebuilds the plan map of a snapshot dump against a network.
fn restore_plans(
    network: &Network,
    records: &[PlanRecord],
) -> Result<BTreeMap<FlowId, Plan>, SolveError> {
    let mut plans = BTreeMap::new();
    for record in records {
        plans.insert(record.flow as FlowId, record.to_plan(network)?);
    }
    Ok(plans)
}

impl PlanRecord {
    fn to_plan(&self, network: &Network) -> Result<Plan, SolveError> {
        let nodes: Vec<_> = self.path.iter().map(|&n| dcn_topology::NodeId(n)).collect();
        let path = Path::from_nodes(network, &nodes).map_err(|e| SolveError::InvalidInput {
            reason: format!("snapshot path of flow {} is invalid: {e}", self.flow),
        })?;
        let mut profile = RateProfile::new();
        for segment in &self.segments {
            profile.add_rate(segment.start, segment.end, segment.rate);
        }
        Ok(Plan { path, profile })
    }
}

impl FlowRecord {
    fn to_entry(&self) -> Result<dcn_core::LedgerEntry, SolveError> {
        let flow = Flow::new(
            self.id as FlowId,
            dcn_topology::NodeId(self.src),
            dcn_topology::NodeId(self.dst),
            self.release,
            self.deadline,
            self.volume,
        )?;
        Ok(dcn_core::LedgerEntry {
            flow,
            delivered: self.delivered,
            retired: self.retired,
            missed: self.missed,
        })
    }
}

/// Renders a plan for the wire.
fn wire_plan(plan: &Plan) -> WirePlan {
    WirePlan {
        path: plan.path.nodes().iter().map(|n| n.0).collect(),
        segments: plan
            .profile
            .segments()
            .into_iter()
            .map(|(start, end, rate)| PlanSegment { start, end, rate })
            .collect(),
    }
}
