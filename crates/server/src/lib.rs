//! Scheduler-as-a-service: a long-lived daemon serving admission and
//! rate-plan decisions over a framed JSON protocol.
//!
//! The batch crates solve a complete instance at once; this crate keeps
//! the scheduler *resident*. A [`Server`] owns message-passing shard
//! workers — one thread per worker, each holding warm
//! [`worker::ShardEngine`]s (solver context + in-flight ledger) for the
//! pod buckets it was striped — and a router that hashes every
//! submission to its source pod's bucket. Replies flow back through a
//! sequence-ordered mux, so the reply stream for a given request stream
//! is byte-identical at any `--shard-workers` width; see
//! [`server`] for the full determinism contract.
//!
//! The pieces:
//!
//! - [`protocol`] — length-prefixed JSON frames and the versioned
//!   request/response envelope ([`Request`]/[`Response`]); malformed
//!   input becomes a typed error reply, never a panic.
//! - [`worker`] — the per-shard engine: logical clock, delivery
//!   crediting, admission ([`ServeAdmission`]) and rate planning
//!   ([`ServePolicy`]).
//! - [`server`] — the router, bounded worker queues with `Busy`
//!   backpressure, and the connection loop ([`Server::serve_connection`]).
//! - [`snapshot`] — JSON persistence of the complete in-flight state;
//!   a restarted daemon resumes its admitted flows bit-identically.
//!
//! The `dcn-serve` binary wires a [`Server`] to stdin/stdout
//! (`--stdio`) or a TCP listener (`--listen`).

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod worker;

pub use protocol::{
    decode_request, encode_frame, read_frame, write_frame, AdmitReply, ErrorReply, FrameError,
    PlanSegment, Request, RequestBody, Response, ResponseBody, StatusReply, SubmitFlow, WirePlan,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use server::{ServeOutcome, Server, ServerConfig, ServerError, TopologySpec};
pub use snapshot::{
    BucketState, FlowRecord, PlanRecord, SnapshotError, SnapshotFile, SNAPSHOT_VERSION,
};
pub use worker::{serve_fmcf_config, AdmitOutcome, EngineSettings, ServeAdmission, ServePolicy};
