//! Protocol robustness: the daemon must answer malformed input with a
//! typed error reply or a clean disconnect — never a panic, never a
//! hang. Covers hand-picked edge frames (truncated frames, oversized
//! length prefixes, invalid JSON, unknown request versions) and a
//! proptest sweep over random byte streams, both at the frame layer
//! ([`read_frame`]/[`decode_request`]) and through a full in-process
//! [`Server::serve_connection`].

use std::io::Cursor;

use dcn_server::{
    decode_request, read_frame, Request, RequestBody, Response, ResponseBody, Server, ServerConfig,
    SubmitFlow, TopologySpec, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use proptest::prelude::*;

fn test_server() -> Server {
    Server::start(ServerConfig::new(TopologySpec::FatTree { k: 4 })).expect("server starts")
}

/// Serves `input` as one connection and returns the reply bytes.
fn serve_bytes(input: &[u8]) -> Vec<u8> {
    let mut server = test_server();
    let mut reader = Cursor::new(input.to_vec());
    let mut replies = Vec::new();
    server
        .serve_connection(&mut reader, &mut replies)
        .expect("in-memory write cannot fail");
    replies
}

/// Parses every reply frame of a served stream.
fn parse_replies(bytes: &[u8]) -> Vec<Response> {
    let mut reader = Cursor::new(bytes.to_vec());
    let mut replies = Vec::new();
    while let Some(payload) = read_frame(&mut reader).expect("server output frames are well-formed")
    {
        let text = std::str::from_utf8(&payload).expect("server output is UTF-8");
        replies.push(serde_json::from_str(text).expect("server output is a Response"));
    }
    replies
}

fn error_code(response: &Response) -> Option<&str> {
    match &response.body {
        ResponseBody::Error(e) => Some(e.code.as_str()),
        _ => None,
    }
}

#[test]
fn truncated_frames_disconnect_without_a_reply() {
    // Prefix only, prefix + partial payload, payload missing its
    // trailing newline: the peer died mid-frame, nothing to answer.
    for stream in ["7", "7\n{\"v\"", "7\n{\"v\":1}"] {
        let replies = serve_bytes(stream.as_bytes());
        assert!(
            replies.is_empty(),
            "truncated stream {stream:?} produced replies: {replies:?}"
        );
    }
}

#[test]
fn oversized_length_prefix_gets_a_typed_error() {
    let stream = format!("{}\nx", MAX_FRAME_BYTES + 1);
    let replies = parse_replies(&serve_bytes(stream.as_bytes()));
    assert_eq!(replies.len(), 1);
    assert_eq!(error_code(&replies[0]), Some("frame-too-large"));
}

#[test]
fn non_numeric_prefix_gets_a_typed_error() {
    for stream in ["notanumber\n{}\n", "-5\n{}\n", "\u{fF}12\n{}\n"] {
        let replies = parse_replies(&serve_bytes(stream.as_bytes()));
        assert_eq!(replies.len(), 1, "stream {stream:?}");
        assert_eq!(
            error_code(&replies[0]),
            Some("bad-frame"),
            "stream {stream:?}"
        );
    }
}

#[test]
fn invalid_json_payload_gets_bad_json() {
    let payload = "{not json!";
    let stream = format!("{}\n{}\n", payload.len(), payload);
    let replies = parse_replies(&serve_bytes(stream.as_bytes()));
    assert_eq!(replies.len(), 1);
    assert_eq!(error_code(&replies[0]), Some("bad-json"));
}

#[test]
fn non_object_and_unknown_body_get_bad_envelope_or_bad_request() {
    let cases = [
        ("[1,2,3]", "bad-envelope"),
        ("{\"v\":1,\"id\":4}", "bad-request"),
        (
            "{\"v\":1,\"id\":4,\"body\":{\"NoSuchRequest\":{}}}",
            "bad-request",
        ),
    ];
    for (payload, expected) in cases {
        let stream = format!("{}\n{}\n", payload.len(), payload);
        let replies = parse_replies(&serve_bytes(stream.as_bytes()));
        assert_eq!(replies.len(), 1, "payload {payload:?}");
        assert_eq!(
            error_code(&replies[0]),
            Some(expected),
            "payload {payload:?}"
        );
    }
}

#[test]
fn unknown_version_echoes_the_request_id() {
    let payload = format!(
        "{{\"v\":{},\"id\":99,\"body\":\"Shutdown\"}}",
        PROTOCOL_VERSION + 1
    );
    let stream = format!("{}\n{}\n", payload.len(), payload);
    let replies = parse_replies(&serve_bytes(stream.as_bytes()));
    assert_eq!(replies.len(), 1);
    assert_eq!(replies[0].id, 99);
    assert_eq!(error_code(&replies[0]), Some("unsupported-version"));
}

#[test]
fn bad_frame_after_good_requests_answers_them_first() {
    let mut stream = dcn_server::encode_frame(&Request::new(
        0,
        RequestBody::SubmitFlow(SubmitFlow {
            src: 8,
            dst: 9,
            release: 1.0,
            deadline: 5.0,
            volume: 2.0,
        }),
    ));
    stream.extend_from_slice(b"garbage\n{}\n");
    let replies = parse_replies(&serve_bytes(&stream));
    assert_eq!(replies.len(), 2, "admission reply then frame error");
    assert!(matches!(replies[0].body, ResponseBody::Admit(_)));
    assert_eq!(error_code(&replies[1]), Some("bad-frame"));
}

#[test]
fn nonsense_submissions_are_rejected_not_panicked() {
    // Non-host endpoints, reversed deadlines, non-finite and negative
    // volumes: each gets a typed reply.
    let bodies = [
        SubmitFlow {
            src: 0,
            dst: 9,
            release: 1.0,
            deadline: 5.0,
            volume: 2.0,
        },
        SubmitFlow {
            src: 8,
            dst: 8_000,
            release: 1.0,
            deadline: 5.0,
            volume: 2.0,
        },
        SubmitFlow {
            src: 8,
            dst: 9,
            release: 5.0,
            deadline: 1.0,
            volume: 2.0,
        },
        SubmitFlow {
            src: 8,
            dst: 9,
            release: 1.0,
            deadline: 5.0,
            volume: -2.0,
        },
        SubmitFlow {
            src: 8,
            dst: 9,
            release: f64::NAN,
            deadline: 5.0,
            volume: 2.0,
        },
        SubmitFlow {
            src: 8,
            dst: 9,
            release: 1.0,
            deadline: f64::INFINITY,
            volume: 2.0,
        },
    ];
    let mut server = test_server();
    for (id, body) in bodies.into_iter().enumerate() {
        let response = server.request(Request::new(id as u64, RequestBody::SubmitFlow(body)));
        assert_eq!(response.id, id as u64);
        assert!(
            matches!(&response.body, ResponseBody::Error(e) if e.code == "bad-flow"),
            "submission {id} got {response:?}"
        );
    }
}

/// The outgoing access link of host `node` on a fat-tree(k=4).
fn access_link_of(node: usize) -> usize {
    let built = TopologySpec::FatTree { k: 4 }.build();
    let link = built
        .network
        .links()
        .find(|l| l.src.0 == node)
        .expect("hosts have an access link")
        .id;
    link.index()
}

fn submit(src: usize, dst: usize) -> RequestBody {
    RequestBody::SubmitFlow(SubmitFlow {
        src,
        dst,
        release: 1.0,
        deadline: 50.0,
        volume: 0.5,
    })
}

#[test]
fn failed_links_turn_submissions_into_typed_errors_until_recovery() {
    let mut server = test_server();
    let link = access_link_of(8);

    // Pristine fabric: the flow admits.
    let reply = server.request(Request::new(0, submit(8, 9)));
    assert!(
        matches!(&reply.body, ResponseBody::Admit(a) if a.admitted),
        "pristine fabric must admit: {reply:?}"
    );

    // Fail host 8's only outgoing link: 8 cannot reach anything.
    let reply = server.request(Request::new(1, RequestBody::LinkEvent { link, down: true }));
    assert!(
        matches!(
            &reply.body,
            ResponseBody::LinkAck {
                down: true,
                changed: true,
                ..
            }
        ),
        "failing an up link must ack changed: {reply:?}"
    );
    let reply = server.request(Request::new(2, submit(8, 9)));
    assert!(
        matches!(&reply.body, ResponseBody::Error(e) if e.code == "unreachable"),
        "submissions across the cut must get a typed error: {reply:?}"
    );
    // Other host pairs are untouched.
    let reply = server.request(Request::new(3, submit(9, 10)));
    assert!(
        matches!(&reply.body, ResponseBody::Admit(a) if a.admitted),
        "unrelated pairs must still admit: {reply:?}"
    );
    // Failing an already-down link acks with changed = false.
    let reply = server.request(Request::new(4, RequestBody::LinkEvent { link, down: true }));
    assert!(
        matches!(&reply.body, ResponseBody::LinkAck { changed: false, .. }),
        "re-failing must be idempotent: {reply:?}"
    );

    // Recovery restores admission.
    let reply = server.request(Request::new(
        5,
        RequestBody::LinkEvent { link, down: false },
    ));
    assert!(
        matches!(
            &reply.body,
            ResponseBody::LinkAck {
                down: false,
                changed: true,
                ..
            }
        ),
        "restoring a down link must ack changed: {reply:?}"
    );
    let reply = server.request(Request::new(6, submit(8, 9)));
    assert!(
        matches!(&reply.body, ResponseBody::Admit(a) if a.admitted),
        "recovery must restore admission: {reply:?}"
    );
    server.shutdown();
}

#[test]
fn out_of_range_link_events_get_bad_link() {
    let mut server = test_server();
    let reply = server.request(Request::new(
        0,
        RequestBody::LinkEvent {
            link: usize::MAX,
            down: true,
        },
    ));
    assert!(
        matches!(&reply.body, ResponseBody::Error(e) if e.code == "bad-link"),
        "got {reply:?}"
    );
    server.shutdown();
}

#[test]
fn frame_layer_never_panics_on_edge_prefixes() {
    for stream in [
        "\n",
        "0\n\n",
        "0\n",
        "00000000000000000000000007\n{}\n",
        "18446744073709551616\nx",
        "1\n{\n",
        "2\n{}x",
    ] {
        let mut reader = Cursor::new(stream.as_bytes().to_vec());
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            let _ = decode_request(&payload);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random byte soup through the frame layer: every frame either
    /// decodes or produces a typed error; no panics, ever.
    #[test]
    fn random_bytes_never_panic_the_frame_layer(
        bytes in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let mut reader = Cursor::new(bytes.clone());
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            let _ = decode_request(&payload);
        }
    }

    /// Random byte soup through a full in-process daemon: the reply
    /// stream itself is always well-framed valid JSON.
    #[test]
    fn random_bytes_never_panic_the_daemon(
        bytes in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let replies = serve_bytes(&bytes);
        let _ = parse_replies(&replies);
    }

    /// Random interleavings of link failures/recoveries (including
    /// out-of-range link ids) and submissions: every request gets exactly
    /// one reply, submissions answer `Admit` or a typed error — never a
    /// panic, never a hang behind the topology broadcast barrier.
    #[test]
    fn failure_event_interleavings_never_panic_the_daemon(
        ops in prop::collection::vec(
            // (selector, link-or-src, down-or-dst): selector picks a link
            // event or a submission. Link ids straddle the real link
            // count of fat-tree(k=4) (valid and bad-link ids alike);
            // submissions span the hosts (8..=15) plus non-host ids.
            (0usize..2, 0usize..200, 0usize..2, 6usize..16, 6usize..16).prop_map(
                |(is_link, link, down, src, dst)| {
                    if is_link == 1 {
                        RequestBody::LinkEvent {
                            link,
                            down: down == 1,
                        }
                    } else {
                        submit(src, dst)
                    }
                },
            ),
            1..24,
        ),
    ) {
        let mut stream = Vec::new();
        for (id, body) in ops.iter().enumerate() {
            stream.extend_from_slice(&dcn_server::encode_frame(
                &Request::new(id as u64, body.clone()),
            ));
        }
        let replies = parse_replies(&serve_bytes(&stream));
        prop_assert_eq!(replies.len(), ops.len());
        for (op, reply) in ops.iter().zip(&replies) {
            match op {
                RequestBody::LinkEvent { .. } => prop_assert!(
                    matches!(
                        &reply.body,
                        ResponseBody::LinkAck { .. } | ResponseBody::Error(_)
                    ),
                    "link event got {:?}", reply
                ),
                RequestBody::SubmitFlow(_) => prop_assert!(
                    matches!(
                        &reply.body,
                        ResponseBody::Admit(_) | ResponseBody::Error(_)
                    ),
                    "submission got {:?}", reply
                ),
                _ => unreachable!("only link events and submissions are generated"),
            }
        }
    }

    /// Streams that *start* with valid frames but carry random JSON
    /// payloads: every payload gets exactly one reply (typed error or a
    /// real answer) until the stream ends.
    #[test]
    fn framed_random_payloads_get_one_reply_each(
        payloads in prop::collection::vec(
            prop::collection::vec(0u8..=255, 0..64),
            1..8,
        ),
    ) {
        let mut stream = Vec::new();
        for payload in &payloads {
            stream.extend_from_slice(payload.len().to_string().as_bytes());
            stream.push(b'\n');
            stream.extend_from_slice(payload);
            stream.push(b'\n');
        }
        let replies = parse_replies(&serve_bytes(&stream));
        prop_assert_eq!(replies.len(), payloads.len());
    }
}
