//! Behavioral pins of the daemon: reply streams are byte-identical at
//! every `--shard-workers` width, a snapshot/restore cycle continues
//! bit-identically to an uninterrupted run, full queues answer `Busy`
//! with the configured retry hint, and incompatible snapshots are
//! refused at startup.

use std::io::Cursor;
use std::path::PathBuf;

use dcn_flow::workload::UniformWorkload;
use dcn_server::{
    encode_frame, read_frame, Request, RequestBody, Response, ResponseBody, ServePolicy, Server,
    ServerConfig, SnapshotFile, SubmitFlow, TopologySpec,
};
use dcn_topology::GraphCsr;

fn config() -> ServerConfig {
    ServerConfig::new(TopologySpec::FatTree { k: 4 })
}

/// A deterministic request stream: `n` submissions from the paper's
/// uniform workload in release order, a query after every fifth.
fn canned_requests(n: usize, seed: u64) -> Vec<Request> {
    let built = TopologySpec::FatTree { k: 4 }.build();
    let flows = UniformWorkload::paper_defaults(n, seed)
        .generate(&built.hosts)
        .expect("workload generates");
    let mut flows: Vec<_> = flows.iter().cloned().collect();
    flows.sort_by(|a, b| {
        a.release
            .partial_cmp(&b.release)
            .expect("finite times")
            .then(a.id.cmp(&b.id))
    });
    let mut requests = Vec::new();
    for (submitted, flow) in flows.iter().enumerate() {
        requests.push(Request::new(
            requests.len() as u64,
            RequestBody::SubmitFlow(SubmitFlow {
                src: flow.src.0,
                dst: flow.dst.0,
                release: flow.release,
                deadline: flow.deadline,
                volume: flow.volume,
            }),
        ));
        if (submitted + 1) % 5 == 0 {
            requests.push(Request::new(
                requests.len() as u64,
                RequestBody::QueryFlow {
                    flow: submitted as u64,
                },
            ));
        }
    }
    requests
}

fn to_stream(requests: &[Request]) -> Vec<u8> {
    let mut stream = Vec::new();
    for request in requests {
        stream.extend_from_slice(&encode_frame(request));
    }
    stream
}

/// Runs one connection over `stream` against a fresh server of `config`.
fn serve(config: ServerConfig, stream: &[u8]) -> Vec<u8> {
    let mut server = Server::start(config).expect("server starts");
    let mut reader = Cursor::new(stream.to_vec());
    let mut replies = Vec::new();
    server
        .serve_connection(&mut reader, &mut replies)
        .expect("in-memory write cannot fail");
    server.shutdown();
    replies
}

fn parse_replies(bytes: &[u8]) -> Vec<Response> {
    let mut reader = Cursor::new(bytes.to_vec());
    let mut replies = Vec::new();
    while let Some(payload) = read_frame(&mut reader).expect("well-formed reply frames") {
        let text = std::str::from_utf8(&payload).expect("UTF-8 replies");
        replies.push(serde_json::from_str(text).expect("valid Response"));
    }
    replies
}

fn temp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("dcn-serve-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn replies_are_byte_identical_at_every_worker_width() {
    let stream = to_stream(&canned_requests(40, 11));
    let baseline = serve(config(), &stream);
    assert!(!baseline.is_empty());
    for workers in [2, 3, 5, 8] {
        let mut wide = config();
        wide.shard_workers = workers;
        assert_eq!(
            serve(wide, &stream),
            baseline,
            "reply stream diverged at {workers} workers"
        );
    }
}

#[test]
fn policies_differ_but_each_is_width_invariant() {
    let stream = to_stream(&canned_requests(25, 3));
    for policy in [ServePolicy::Edf, ServePolicy::Greedy, ServePolicy::Resolve] {
        let mut narrow = config();
        narrow.policy = policy;
        let mut wide = narrow.clone();
        wide.shard_workers = 4;
        assert_eq!(
            serve(narrow, &stream),
            serve(wide, &stream),
            "{} diverged across widths",
            policy.name()
        );
    }
}

#[test]
fn snapshot_restore_continues_bit_identically() {
    let requests = canned_requests(40, 17);
    let split = requests.len() / 2;
    let snapshot_path = temp_path("roundtrip");

    // The uninterrupted reference run.
    let mut reference = Server::start(config()).expect("server starts");
    let full: Vec<Vec<u8>> = requests
        .iter()
        .map(|r| encode_frame(&reference.request(r.clone())))
        .collect();
    reference.shutdown();

    // First half, snapshot, kill.
    let mut cfg = config();
    cfg.snapshot_path = Some(snapshot_path.clone());
    let mut first = Server::start(cfg.clone()).expect("server starts");
    let head: Vec<Vec<u8>> = requests[..split]
        .iter()
        .map(|r| encode_frame(&first.request(r.clone())))
        .collect();
    let done = first.request(Request::new(9_000, RequestBody::Snapshot));
    assert!(
        matches!(done.body, ResponseBody::SnapshotDone { .. }),
        "snapshot failed: {done:?}"
    );
    first.shutdown();

    // Restart from the snapshot and serve the second half.
    let mut second = Server::start(cfg).expect("server restores");
    let tail: Vec<Vec<u8>> = requests[split..]
        .iter()
        .map(|r| encode_frame(&second.request(r.clone())))
        .collect();
    second.shutdown();

    assert_eq!(
        head,
        full[..split].to_vec(),
        "pre-snapshot replies diverged"
    );
    assert_eq!(
        tail,
        full[split..].to_vec(),
        "post-restore replies diverged"
    );
    let _ = std::fs::remove_file(&snapshot_path);
}

#[test]
fn snapshot_file_rebuilds_an_auditable_schedule() {
    let snapshot_path = temp_path("audit");
    let mut cfg = config();
    cfg.snapshot_path = Some(snapshot_path.clone());
    let mut server = Server::start(cfg).expect("server starts");
    for request in canned_requests(30, 5) {
        server.request(request);
    }
    server.request(Request::new(9_000, RequestBody::Snapshot));
    server.shutdown();

    let file = SnapshotFile::load(&snapshot_path).expect("snapshot loads");
    assert_eq!(file.flow_count(), 30);
    let built = TopologySpec::FatTree { k: 4 }.build();
    let schedule = file.schedule(&built.network).expect("schedule rebuilds");
    let power = config().power;
    let energy = schedule.energy(&power);
    assert!(energy.idle.is_finite() && energy.dynamic > 0.0);
    let _ = std::fs::remove_file(&snapshot_path);
}

#[test]
fn incompatible_snapshot_is_refused_at_startup() {
    let snapshot_path = temp_path("compat");
    let mut cfg = config();
    cfg.snapshot_path = Some(snapshot_path.clone());
    let mut server = Server::start(cfg.clone()).expect("server starts");
    for request in canned_requests(10, 2) {
        server.request(request);
    }
    server.request(Request::new(9_000, RequestBody::Snapshot));
    server.shutdown();

    let mut other = cfg;
    other.policy = ServePolicy::Greedy;
    let err = match Server::start(other) {
        Ok(_) => panic!("policy mismatch must be refused"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("policy=edf"),
        "unhelpful refusal: {err}"
    );
    let _ = std::fs::remove_file(&snapshot_path);
}

#[test]
fn full_queues_answer_busy_with_the_configured_hint() {
    // One worker, queue depth 1, solver-priced policy: a burst of
    // submissions outruns the worker, so the overflow gets `Busy`.
    let mut cfg = config();
    cfg.policy = ServePolicy::Resolve;
    cfg.queue_depth = 1;
    cfg.retry_after_ms = 7;
    let stream = to_stream(&canned_requests(30, 23));
    let replies = parse_replies(&serve(cfg, &stream));
    let mut admits = 0usize;
    let mut busy = 0usize;
    for reply in &replies {
        match &reply.body {
            ResponseBody::Admit(_) | ResponseBody::Status(_) => admits += 1,
            ResponseBody::Busy { retry_after_ms } => {
                assert_eq!(*retry_after_ms, 7);
                busy += 1;
            }
            other => panic!("unexpected reply under backpressure: {other:?}"),
        }
    }
    assert_eq!(admits + busy, replies.len());
    assert!(
        busy > 0,
        "queue depth 1 under a 30-submission burst never overflowed"
    );
}

#[test]
fn queries_report_lifecycle_states() {
    let built = TopologySpec::FatTree { k: 4 }.build();
    let host = |i: usize| built.hosts[i].0;
    let mut server = Server::start(config()).expect("server starts");

    let admit = server.request(Request::new(
        0,
        RequestBody::SubmitFlow(SubmitFlow {
            src: host(0),
            dst: host(5),
            release: 1.0,
            deadline: 10.0,
            volume: 4.0,
        }),
    ));
    assert!(matches!(
        &admit.body,
        ResponseBody::Admit(a) if a.admitted && a.plan.is_some()
    ));

    let live = server.request(Request::new(1, RequestBody::QueryFlow { flow: 0 }));
    assert!(
        matches!(&live.body, ResponseBody::Status(s) if s.state == "in-flight"),
        "fresh flow should be in flight: {live:?}"
    );

    let unknown = server.request(Request::new(2, RequestBody::QueryFlow { flow: 99 }));
    assert!(matches!(&unknown.body, ResponseBody::Status(s) if s.state == "unknown"));

    // A submission whose deadline is behind the shard clock is rejected,
    // and stays queryable as rejected on the same shard.
    let src = host(0);
    let graph = GraphCsr::from_network(&built.network);
    let same_pod_src = built
        .hosts
        .iter()
        .map(|h| h.0)
        .find(|&h| {
            h != src
                && graph.pod_of(dcn_topology::NodeId(h)) == graph.pod_of(dcn_topology::NodeId(src))
        })
        .expect("fat-tree pods hold several hosts");
    let late = server.request(Request::new(
        3,
        RequestBody::SubmitFlow(SubmitFlow {
            src: same_pod_src,
            dst: host(9),
            release: 0.5,
            deadline: 0.9,
            volume: 1.0,
        }),
    ));
    assert!(
        matches!(&late.body, ResponseBody::Admit(a) if !a.admitted),
        "expired deadline must be rejected: {late:?}"
    );
    let rejected = server.request(Request::new(4, RequestBody::QueryFlow { flow: 1 }));
    assert!(
        matches!(&rejected.body, ResponseBody::Status(s) if s.state == "rejected"),
        "rejected flow should be queryable: {rejected:?}"
    );
    server.shutdown();
}

#[test]
fn shutdown_request_gets_bye_and_ends_the_connection() {
    let mut requests = canned_requests(5, 41);
    requests.push(Request::new(500, RequestBody::Shutdown));
    // Anything after Shutdown must not be served.
    requests.push(Request::new(501, RequestBody::QueryFlow { flow: 0 }));
    let replies = parse_replies(&serve(config(), &to_stream(&requests)));
    assert_eq!(replies.len(), requests.len() - 1);
    let last = replies.last().expect("bye reply");
    assert_eq!(last.id, 500);
    assert!(matches!(last.body, ResponseBody::Bye));
}
