//! The deadline-constrained flow model.

use dcn_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a flow within a [`crate::FlowSet`].
///
/// Flow ids are dense (`0..n`) inside a validated flow set, so downstream
/// algorithms index per-flow state with plain vectors.
pub type FlowId = usize;

/// Errors raised when constructing an invalid [`Flow`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The deadline does not leave any time after the release.
    EmptySpan {
        /// Release time.
        release: f64,
        /// Deadline.
        deadline: f64,
    },
    /// The data volume is not strictly positive.
    NonPositiveVolume(f64),
    /// Source and destination are the same node.
    SelfLoop(NodeId),
    /// A time or volume is NaN or infinite.
    NotFinite,
    /// A flow set contains duplicate flow ids.
    DuplicateId(FlowId),
    /// Flow ids in a flow set are not dense (`0..n`).
    NonDenseIds,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::EmptySpan { release, deadline } => write!(
                f,
                "deadline {deadline} does not leave any time after release {release}"
            ),
            FlowError::NonPositiveVolume(v) => write!(f, "flow volume must be positive, got {v}"),
            FlowError::SelfLoop(n) => write!(f, "flow source and destination are both {n}"),
            FlowError::NotFinite => write!(f, "flow parameters must be finite numbers"),
            FlowError::DuplicateId(id) => write!(f, "duplicate flow id {id}"),
            FlowError::NonDenseIds => write!(f, "flow ids must be dense (0..n)"),
        }
    }
}

impl std::error::Error for FlowError {}

/// A deadline-constrained flow: `volume` units of data to move from `src`
/// to `dst` entirely within `[release, deadline]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Identifier of the flow (dense within a flow set).
    pub id: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Release time `r_i`: no data may be sent earlier.
    pub release: f64,
    /// Hard deadline `d_i`: all data must have arrived by this time.
    pub deadline: f64,
    /// Amount of data `w_i` to transfer.
    pub volume: f64,
}

impl Flow {
    /// Creates a flow, validating its parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the span is empty (`deadline <= release`), the
    /// volume is not positive, source equals destination, or any value is
    /// not finite.
    pub fn new(
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        release: f64,
        deadline: f64,
        volume: f64,
    ) -> Result<Self, FlowError> {
        if !release.is_finite() || !deadline.is_finite() || !volume.is_finite() {
            return Err(FlowError::NotFinite);
        }
        if deadline <= release {
            return Err(FlowError::EmptySpan { release, deadline });
        }
        if volume <= 0.0 {
            return Err(FlowError::NonPositiveVolume(volume));
        }
        if src == dst {
            return Err(FlowError::SelfLoop(src));
        }
        Ok(Self {
            id,
            src,
            dst,
            release,
            deadline,
            volume,
        })
    }

    /// The span `S_i = [r_i, d_i]` of the flow.
    pub fn span(&self) -> (f64, f64) {
        (self.release, self.deadline)
    }

    /// Length of the span, `d_i - r_i`.
    pub fn span_length(&self) -> f64 {
        self.deadline - self.release
    }

    /// The density `D_i = w_i / (d_i - r_i)`: the minimum average rate at
    /// which the flow must be served to finish exactly at its deadline.
    pub fn density(&self) -> f64 {
        self.volume / self.span_length()
    }

    /// Returns `true` if the flow is active at time `t` (i.e. `t` lies in
    /// its span).
    pub fn is_active_at(&self, t: f64) -> bool {
        t >= self.release && t <= self.deadline
    }

    /// Returns `true` if the flow's span contains the whole interval
    /// `[start, end]`.
    pub fn spans_interval(&self, start: f64, end: f64) -> bool {
        self.release <= start + 1e-12 && self.deadline >= end - 1e-12
    }

    /// Time left until the deadline at clock `now` (negative once the
    /// deadline has passed).
    pub fn time_to_deadline(&self, now: f64) -> f64 {
        self.deadline - now
    }

    /// The minimum constant rate that delivers `remaining` volume by the
    /// deadline when transmission runs from `now` on — the priority key of
    /// preemptive earliest-deadline-first scheduling.
    ///
    /// Only meaningful while `now` is strictly before the deadline; at or
    /// past the deadline the required rate diverges (the caller is expected
    /// to have retired the flow as missed).
    pub fn required_rate(&self, now: f64, remaining: f64) -> f64 {
        remaining / (self.deadline - now)
    }

    /// The slack at clock `now`: the spare time left after transmitting
    /// `remaining` volume at constant `rate`. Zero means the flow must
    /// start immediately and never fall below `rate`; negative means the
    /// deadline cannot be met at that rate.
    pub fn slack(&self, now: f64, remaining: f64, rate: f64) -> f64 {
        (self.deadline - now) - remaining / rate
    }

    /// The latest time transmission of `remaining` volume at constant
    /// `rate` may start and still finish exactly at the deadline — the
    /// deferral point of rapid-close-to-deadline scheduling.
    pub fn latest_start(&self, remaining: f64, rate: f64) -> f64 {
        self.deadline - remaining / rate
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow {} : {} -> {} , w = {}, span [{}, {}]",
            self.id, self.src, self.dst, self.volume, self.release, self.deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_flow() {
        let fl = Flow::new(0, NodeId(1), NodeId(2), 1.0, 3.0, 8.0).unwrap();
        assert_eq!(fl.span(), (1.0, 3.0));
        assert_eq!(fl.span_length(), 2.0);
        assert_eq!(fl.density(), 4.0);
        assert!(fl.is_active_at(1.0));
        assert!(fl.is_active_at(3.0));
        assert!(!fl.is_active_at(3.5));
        assert!(!fl.is_active_at(0.5));
    }

    #[test]
    fn spans_interval_checks_containment() {
        let fl = Flow::new(0, NodeId(1), NodeId(2), 1.0, 5.0, 8.0).unwrap();
        assert!(fl.spans_interval(1.0, 5.0));
        assert!(fl.spans_interval(2.0, 3.0));
        assert!(!fl.spans_interval(0.0, 3.0));
        assert!(!fl.spans_interval(4.0, 6.0));
    }

    #[test]
    fn invalid_flows_are_rejected() {
        assert!(matches!(
            Flow::new(0, NodeId(1), NodeId(2), 3.0, 3.0, 1.0),
            Err(FlowError::EmptySpan { .. })
        ));
        assert!(matches!(
            Flow::new(0, NodeId(1), NodeId(2), 1.0, 3.0, 0.0),
            Err(FlowError::NonPositiveVolume(_))
        ));
        assert!(matches!(
            Flow::new(0, NodeId(1), NodeId(1), 1.0, 3.0, 1.0),
            Err(FlowError::SelfLoop(_))
        ));
        assert!(matches!(
            Flow::new(0, NodeId(1), NodeId(2), f64::NAN, 3.0, 1.0),
            Err(FlowError::NotFinite)
        ));
    }

    #[test]
    fn online_accessors_agree_with_each_other() {
        let fl = Flow::new(0, NodeId(1), NodeId(2), 2.0, 10.0, 8.0).unwrap();
        assert_eq!(fl.time_to_deadline(4.0), 6.0);
        assert_eq!(fl.time_to_deadline(12.0), -2.0);
        // Full volume over the full span is exactly the density.
        assert_eq!(fl.required_rate(fl.release, fl.volume), fl.density());
        // Half the volume in half the remaining time: rate unchanged.
        assert_eq!(fl.required_rate(6.0, 4.0), 1.0);
        // Transmitting at the required rate leaves zero slack.
        let rate = fl.required_rate(4.0, 6.0);
        assert!(fl.slack(4.0, 6.0, rate).abs() < 1e-12);
        // Twice the required rate frees half the remaining time.
        assert_eq!(fl.slack(4.0, 6.0, 2.0 * rate), 3.0);
        assert!(fl.slack(9.0, 8.0, 1.0) < 0.0, "unmeetable deadline");
        // Starting at latest_start finishes exactly at the deadline.
        let start = fl.latest_start(8.0, 4.0);
        assert_eq!(start + 8.0 / 4.0, fl.deadline);
    }

    #[test]
    fn paper_example1_flows() {
        // Example 1: j1 = (A, C, r=2, d=4, w=6), j2 = (A, B, r=1, d=3, w=8).
        let j1 = Flow::new(0, NodeId(0), NodeId(2), 2.0, 4.0, 6.0).unwrap();
        let j2 = Flow::new(1, NodeId(0), NodeId(1), 1.0, 3.0, 8.0).unwrap();
        assert_eq!(j1.density(), 3.0);
        assert_eq!(j2.density(), 4.0);
    }

    #[test]
    fn display_is_informative() {
        let fl = Flow::new(3, NodeId(1), NodeId(2), 1.0, 3.0, 8.0).unwrap();
        let s = fl.to_string();
        assert!(s.contains("flow 3"));
        assert!(s.contains("n1"));
        assert!(s.contains("n2"));
    }
}
