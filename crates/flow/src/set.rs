//! Flow sets: collections of flows plus the interval machinery used by the
//! DCFSR relaxation.

use crate::{Flow, FlowError, FlowId};
use dcn_topology::Network;
use serde::{Deserialize, Serialize};

/// A half-open time interval `I_k = [start, end)` between two consecutive
/// breakpoints of a flow set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Interval index `k` (0-based).
    pub index: usize,
    /// Start time `t_{k-1}`.
    pub start: f64,
    /// End time `t_k`.
    pub end: f64,
}

impl Interval {
    /// Length `|I_k|` of the interval.
    pub fn length(&self) -> f64 {
        self.end - self.start
    }

    /// Midpoint of the interval (used to query "which flows are active
    /// throughout this interval").
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.start + self.end)
    }
}

/// A validated collection of deadline-constrained flows with dense ids.
///
/// Provides the quantities the DCFSR algorithm needs: the breakpoint set
/// `T = {t_0, ..., t_K}` of all distinct release times and deadlines, the
/// intervals `I_k = [t_{k-1}, t_k]`, the per-interval active-flow sets and
/// the granularity parameter `lambda = (t_K - t_0) / min_k |I_k|`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSet {
    flows: Vec<Flow>,
}

impl FlowSet {
    /// Builds a flow set, checking that flow ids are dense (`0..n`) and
    /// unique.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::DuplicateId`] or [`FlowError::NonDenseIds`] when
    /// the id invariant is violated, and propagates per-flow validation
    /// errors when a flow is itself invalid.
    pub fn from_flows(flows: Vec<Flow>) -> Result<Self, FlowError> {
        let n = flows.len();
        let mut seen = vec![false; n];
        for f in &flows {
            // Re-validate each flow defensively (Flow::new already checks).
            Flow::new(f.id, f.src, f.dst, f.release, f.deadline, f.volume)?;
            if f.id >= n {
                return Err(FlowError::NonDenseIds);
            }
            if seen[f.id] {
                return Err(FlowError::DuplicateId(f.id));
            }
            seen[f.id] = true;
        }
        Ok(Self { flows })
    }

    /// Builds a flow set from `(src, dst, release, deadline, volume)` tuples,
    /// assigning dense ids in order.
    pub fn from_tuples(
        tuples: impl IntoIterator<Item = (dcn_topology::NodeId, dcn_topology::NodeId, f64, f64, f64)>,
    ) -> Result<Self, FlowError> {
        let flows = tuples
            .into_iter()
            .enumerate()
            .map(|(i, (src, dst, r, d, w))| Flow::new(i, src, dst, r, d, w))
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_flows(flows)
    }

    /// Number of flows `n`.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Returns `true` if the set contains no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The flow with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id]
    }

    /// Iterates over the flows in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Flow> {
        self.flows.iter()
    }

    /// All flows as a slice, in id order.
    pub fn as_slice(&self) -> &[Flow] {
        &self.flows
    }

    /// The horizon `[T0, T1]`: earliest release time and latest deadline.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn horizon(&self) -> (f64, f64) {
        assert!(!self.is_empty(), "horizon of an empty flow set");
        let t0 = self
            .flows
            .iter()
            .map(|f| f.release)
            .fold(f64::INFINITY, f64::min);
        let t1 = self
            .flows
            .iter()
            .map(|f| f.deadline)
            .fold(f64::NEG_INFINITY, f64::max);
        (t0, t1)
    }

    /// The sorted, de-duplicated breakpoint set `T = {t_0, ..., t_K}` of all
    /// release times and deadlines.
    pub fn breakpoints(&self) -> Vec<f64> {
        let mut ts: Vec<f64> = self
            .flows
            .iter()
            .flat_map(|f| [f.release, f.deadline])
            .collect();
        ts.sort_by(|a, b| a.partial_cmp(b).expect("flow times are finite"));
        ts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        ts
    }

    /// The intervals `I_k = [t_{k-1}, t_k]` between consecutive breakpoints.
    pub fn intervals(&self) -> Vec<Interval> {
        self.breakpoints()
            .windows(2)
            .enumerate()
            .map(|(index, w)| Interval {
                index,
                start: w[0],
                end: w[1],
            })
            .collect()
    }

    /// The granularity parameter `lambda = (t_K - t_0) / min_k |I_k|`
    /// appearing in the approximation ratio of Random-Schedule.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn lambda(&self) -> f64 {
        let (t0, t1) = self.horizon();
        let min_len = self
            .intervals()
            .iter()
            .map(Interval::length)
            .fold(f64::INFINITY, f64::min);
        (t1 - t0) / min_len
    }

    /// Ids of the flows whose span contains the whole interval (the flows
    /// that are "active in `I_k`" for the per-interval F-MCF subproblem).
    pub fn active_in_interval(&self, interval: &Interval) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|f| f.spans_interval(interval.start, interval.end))
            .map(|f| f.id)
            .collect()
    }

    /// Ids of the flows active at time instant `t`.
    pub fn active_at(&self, t: f64) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|f| f.is_active_at(t))
            .map(|f| f.id)
            .collect()
    }

    /// The largest flow density `D = max_i D_i` (used in the approximation
    /// ratio), or zero for an empty set.
    pub fn max_density(&self) -> f64 {
        self.flows.iter().map(Flow::density).fold(0.0, f64::max)
    }

    /// Total data volume over all flows.
    pub fn total_volume(&self) -> f64 {
        self.flows.iter().map(|f| f.volume).sum()
    }

    /// Checks that every flow's endpoints exist in `network` and are
    /// distinct nodes, returning the offending flow ids.
    pub fn invalid_endpoints(&self, network: &Network) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|f| {
                f.src.index() >= network.node_count() || f.dst.index() >= network.node_count()
            })
            .map(|f| f.id)
            .collect()
    }
}

impl<'a> IntoIterator for &'a FlowSet {
    type Item = &'a Flow;
    type IntoIter = std::slice::Iter<'a, Flow>;

    fn into_iter(self) -> Self::IntoIter {
        self.flows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::{builders, NodeId};

    fn example1() -> FlowSet {
        FlowSet::from_tuples([
            (NodeId(0), NodeId(2), 2.0, 4.0, 6.0),
            (NodeId(0), NodeId(1), 1.0, 3.0, 8.0),
        ])
        .unwrap()
    }

    #[test]
    fn breakpoints_and_intervals() {
        let fs = example1();
        assert_eq!(fs.breakpoints(), vec![1.0, 2.0, 3.0, 4.0]);
        let ivs = fs.intervals();
        assert_eq!(ivs.len(), 3);
        assert_eq!(ivs[0].start, 1.0);
        assert_eq!(ivs[2].end, 4.0);
        assert_eq!(ivs[1].length(), 1.0);
        assert_eq!(fs.horizon(), (1.0, 4.0));
        assert_eq!(fs.lambda(), 3.0);
    }

    #[test]
    fn active_flow_queries() {
        let fs = example1();
        let ivs = fs.intervals();
        // [1,2): only flow 1; [2,3): both; [3,4): only flow 0.
        assert_eq!(fs.active_in_interval(&ivs[0]), vec![1]);
        assert_eq!(fs.active_in_interval(&ivs[1]), vec![0, 1]);
        assert_eq!(fs.active_in_interval(&ivs[2]), vec![0]);
        assert_eq!(fs.active_at(2.5), vec![0, 1]);
        assert_eq!(fs.active_at(0.5), Vec::<FlowId>::new());
    }

    #[test]
    fn densities_and_volumes() {
        let fs = example1();
        assert_eq!(fs.max_density(), 4.0);
        assert_eq!(fs.total_volume(), 14.0);
    }

    #[test]
    fn id_validation() {
        let dup = vec![
            Flow::new(0, NodeId(0), NodeId(1), 0.0, 1.0, 1.0).unwrap(),
            Flow::new(0, NodeId(1), NodeId(2), 0.0, 1.0, 1.0).unwrap(),
        ];
        assert!(matches!(
            FlowSet::from_flows(dup),
            Err(FlowError::DuplicateId(0))
        ));

        let sparse = vec![Flow::new(5, NodeId(0), NodeId(1), 0.0, 1.0, 1.0).unwrap()];
        assert!(matches!(
            FlowSet::from_flows(sparse),
            Err(FlowError::NonDenseIds)
        ));
    }

    #[test]
    fn duplicate_breakpoints_are_merged() {
        let fs = FlowSet::from_tuples([
            (NodeId(0), NodeId(1), 0.0, 10.0, 1.0),
            (NodeId(1), NodeId(2), 0.0, 10.0, 2.0),
            (NodeId(2), NodeId(3), 5.0, 10.0, 3.0),
        ])
        .unwrap();
        assert_eq!(fs.breakpoints(), vec![0.0, 5.0, 10.0]);
        assert_eq!(fs.intervals().len(), 2);
        assert_eq!(fs.lambda(), 2.0);
    }

    #[test]
    fn endpoint_validation_against_network() {
        let t = builders::line(3);
        let ok = FlowSet::from_tuples([(t.hosts()[0], t.hosts()[2], 0.0, 1.0, 1.0)]).unwrap();
        assert!(ok.invalid_endpoints(&t.network).is_empty());

        let bad = FlowSet::from_tuples([(NodeId(99), t.hosts()[2], 0.0, 1.0, 1.0)]).unwrap();
        assert_eq!(bad.invalid_endpoints(&t.network), vec![0]);
    }

    #[test]
    fn empty_set_behaviour() {
        let fs = FlowSet::from_flows(vec![]).unwrap();
        assert!(fs.is_empty());
        assert_eq!(fs.max_density(), 0.0);
        assert!(fs.breakpoints().is_empty());
        assert!(fs.intervals().is_empty());
    }

    #[test]
    fn iteration_is_in_id_order() {
        let fs = example1();
        let ids: Vec<_> = fs.iter().map(|f| f.id).collect();
        assert_eq!(ids, vec![0, 1]);
        let ids2: Vec<_> = (&fs).into_iter().map(|f| f.id).collect();
        assert_eq!(ids2, ids);
    }
}
