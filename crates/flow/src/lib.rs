//! Deadline-constrained flows and workload generators.
//!
//! The paper models an application as a set of *deadline-constrained flows*:
//! flow `j_i` must move `w_i` units of data from host `p_i` to host `q_i`,
//! entirely inside its span `[r_i, d_i]` (release time to hard deadline).
//! This crate provides:
//!
//! * [`Flow`] and [`FlowSet`] — the flow model, span/density helpers and the
//!   breakpoint/interval machinery (`T = {t_0, ..., t_K}`, intervals `I_k`,
//!   and the granularity parameter `lambda`) used by the Random-Schedule
//!   algorithm.
//! * [`workload`] — seeded, reproducible workload generators: the uniform
//!   random workload from the paper's Fig. 2 evaluation, application-shaped
//!   workloads (partition–aggregate "search" and MapReduce shuffle), the
//!   adversarial parallel-link gadgets from the hardness proofs, and the
//!   [`workload::ArrivalProcess`] overlay that turns any of them into an
//!   online instance (Poisson arrivals at a configurable load factor).
//! * [`failure`] — seeded link failure/recovery processes: the
//!   [`failure::FailureProcess`] alternating-renewal model that generates
//!   the typed topology-event stream the online engine merges into its
//!   event queue.
//! * [`trace`] — JSON (de)serialization of flow sets so experiments can be
//!   replayed.
//!
//! # Example
//!
//! ```
//! use dcn_flow::{Flow, FlowSet};
//! use dcn_topology::NodeId;
//!
//! let flows = FlowSet::from_flows(vec![
//!     Flow::new(0, NodeId(0), NodeId(2), 2.0, 4.0, 6.0).unwrap(),
//!     Flow::new(1, NodeId(0), NodeId(1), 1.0, 3.0, 8.0).unwrap(),
//! ])
//! .unwrap();
//!
//! assert_eq!(flows.horizon(), (1.0, 4.0));
//! assert_eq!(flows.breakpoints(), vec![1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(flows.intervals().len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod failure;
mod flow;
mod set;
pub mod trace;
pub mod workload;

pub use flow::{Flow, FlowError, FlowId};
pub use set::{FlowSet, Interval};
