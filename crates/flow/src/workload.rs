//! Seeded, reproducible workload generators.
//!
//! The paper evaluates on a synthetic workload (Section V-C): release times
//! and deadlines drawn uniformly from the horizon `[1, 100]` and volumes
//! drawn from a normal distribution `N(10, 3)`. [`UniformWorkload`]
//! reproduces that setup. In addition this module provides two
//! application-shaped generators that match the motivation in the paper's
//! introduction (partition–aggregate "search" traffic and MapReduce shuffle
//! traffic) and the adversarial instances used by the hardness proofs.

use crate::{Flow, FlowError, FlowSet};
use dcn_topology::NodeId;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// The synthetic workload from the paper's Fig. 2 evaluation.
///
/// Flows pick distinct random source and destination hosts; release and
/// deadline are drawn uniformly from the horizon (re-drawn until the span is
/// at least [`Self::min_span`]); the volume is drawn from `N(volume_mean,
/// volume_std)` truncated to be positive.
///
/// # Example
///
/// ```
/// use dcn_flow::workload::UniformWorkload;
/// use dcn_topology::builders;
///
/// let topo = builders::fat_tree(4);
/// let flows = UniformWorkload::paper_defaults(40, 7)
///     .generate(topo.hosts())
///     .unwrap();
/// assert_eq!(flows.len(), 40);
/// let (t0, t1) = flows.horizon();
/// assert!(t0 >= 1.0 && t1 <= 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformWorkload {
    /// Number of flows to generate.
    pub num_flows: usize,
    /// Start of the horizon from which release/deadline are drawn.
    pub horizon_start: f64,
    /// End of the horizon from which release/deadline are drawn.
    pub horizon_end: f64,
    /// Mean of the normal volume distribution (paper: 10).
    pub volume_mean: f64,
    /// Standard deviation of the volume distribution (paper: 3).
    pub volume_std: f64,
    /// Minimum span length enforced between release and deadline.
    pub min_span: f64,
    /// RNG seed; the same seed always yields the same workload.
    pub seed: u64,
}

impl UniformWorkload {
    /// The paper's parameters: horizon `[1, 100]`, volumes `N(10, 3)`.
    ///
    /// `min_span` is set to `5.0` so that no flow requires a rate anywhere
    /// near the generated volumes themselves; the paper does not state its
    /// minimum span, only that instances were feasible.
    pub fn paper_defaults(num_flows: usize, seed: u64) -> Self {
        Self {
            num_flows,
            horizon_start: 1.0,
            horizon_end: 100.0,
            volume_mean: 10.0,
            volume_std: 3.0,
            min_span: 5.0,
            seed,
        }
    }

    /// Generates the flow set over the given host list.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two hosts are provided (no valid
    /// source/destination pair exists).
    pub fn generate(&self, hosts: &[NodeId]) -> Result<FlowSet, FlowError> {
        if hosts.len() < 2 {
            return Err(FlowError::SelfLoop(*hosts.first().unwrap_or(&NodeId(0))));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let volume_dist = Normal::new(self.volume_mean, self.volume_std)
            .expect("volume distribution parameters are finite");
        let mut flows = Vec::with_capacity(self.num_flows);
        for id in 0..self.num_flows {
            let src = *hosts.choose(&mut rng).expect("hosts non-empty");
            let dst = loop {
                let d = *hosts.choose(&mut rng).expect("hosts non-empty");
                if d != src {
                    break d;
                }
            };
            let (release, deadline) = loop {
                let a = rng.gen_range(self.horizon_start..self.horizon_end);
                let b = rng.gen_range(self.horizon_start..self.horizon_end);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                if hi - lo >= self.min_span {
                    break (lo, hi);
                }
            };
            let volume = loop {
                let v = volume_dist.sample(&mut rng);
                if v > 0.5 {
                    break v;
                }
            };
            flows.push(Flow::new(id, src, dst, release, deadline, volume)?);
        }
        FlowSet::from_flows(flows)
    }
}

/// Partition–aggregate ("search") traffic: an aggregator host fans a request
/// out to worker hosts and every worker's response must arrive back at the
/// aggregator before a common, tight deadline.
///
/// This matches the paper's motivation that user-perceived latency is
/// bounded by the slowest of many small request/response flows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionAggregateWorkload {
    /// Number of request rounds to generate.
    pub requests: usize,
    /// Number of worker responses per request.
    pub workers_per_request: usize,
    /// Volume of each response flow.
    pub response_volume: f64,
    /// Time between a request's start and its hard deadline.
    pub deadline_budget: f64,
    /// Start of the horizon over which request arrival times are drawn.
    pub horizon_start: f64,
    /// End of the horizon over which request arrival times are drawn.
    pub horizon_end: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PartitionAggregateWorkload {
    fn default() -> Self {
        Self {
            requests: 10,
            workers_per_request: 8,
            response_volume: 2.0,
            deadline_budget: 10.0,
            horizon_start: 1.0,
            horizon_end: 100.0,
            seed: 1,
        }
    }
}

impl PartitionAggregateWorkload {
    /// Generates the flow set over the given host list.
    ///
    /// The aggregator and the workers of each request are distinct random
    /// hosts.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two hosts are provided.
    pub fn generate(&self, hosts: &[NodeId]) -> Result<FlowSet, FlowError> {
        if hosts.len() < 2 {
            return Err(FlowError::SelfLoop(*hosts.first().unwrap_or(&NodeId(0))));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut flows = Vec::new();
        let mut id = 0;
        for _ in 0..self.requests {
            let aggregator = *hosts.choose(&mut rng).expect("hosts non-empty");
            let start = rng.gen_range(
                self.horizon_start
                    ..(self.horizon_end - self.deadline_budget).max(self.horizon_start + 1e-9),
            );
            let deadline = start + self.deadline_budget;
            let workers = hosts
                .iter()
                .copied()
                .filter(|&h| h != aggregator)
                .choose_multiple(&mut rng, self.workers_per_request);
            for worker in workers {
                flows.push(Flow::new(
                    id,
                    worker,
                    aggregator,
                    start,
                    deadline,
                    self.response_volume,
                )?);
                id += 1;
            }
        }
        FlowSet::from_flows(flows)
    }
}

/// MapReduce-style shuffle traffic: every mapper host sends an equal-sized
/// chunk to every reducer host, and the whole shuffle must finish before a
/// single stage deadline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffleWorkload {
    /// Number of mapper hosts (taken from the front of the host list).
    pub mappers: usize,
    /// Number of reducer hosts (taken from the back of the host list).
    pub reducers: usize,
    /// Volume of each mapper→reducer transfer.
    pub volume_per_pair: f64,
    /// Shuffle start time.
    pub start: f64,
    /// Shuffle stage deadline.
    pub deadline: f64,
}

impl Default for ShuffleWorkload {
    fn default() -> Self {
        Self {
            mappers: 4,
            reducers: 4,
            volume_per_pair: 5.0,
            start: 0.0,
            deadline: 50.0,
        }
    }
}

impl ShuffleWorkload {
    /// Generates the all-to-all flow set over the given host list.
    ///
    /// Mappers are the first `mappers` hosts and reducers the last
    /// `reducers` hosts; the two groups must not overlap.
    ///
    /// # Errors
    ///
    /// Returns an error if the host list is too small for disjoint mapper
    /// and reducer groups.
    pub fn generate(&self, hosts: &[NodeId]) -> Result<FlowSet, FlowError> {
        if hosts.len() < self.mappers + self.reducers {
            return Err(FlowError::NonDenseIds);
        }
        let mappers = &hosts[..self.mappers];
        let reducers = &hosts[hosts.len() - self.reducers..];
        let mut flows = Vec::new();
        let mut id = 0;
        for &m in mappers {
            for &r in reducers {
                flows.push(Flow::new(
                    id,
                    m,
                    r,
                    self.start,
                    self.deadline,
                    self.volume_per_pair,
                )?);
                id += 1;
            }
        }
        FlowSet::from_flows(flows)
    }
}

/// An empirical heavy-tailed flow-size distribution, shaped after the two
/// classic data-center traffic measurements: the partition–aggregate web
/// search workload (DCTCP) and the VL2 data-mining workload. Both are
/// dominated by small flows with a tail several orders of magnitude above
/// the median — the opposite of the paper's near-Gaussian `N(10, 3)`
/// volumes, and exactly the regime where a link failure strands a few
/// elephants instead of shaving every flow equally.
///
/// Samples are drawn by inversion from a piecewise-linear CDF and
/// normalized to mean `1.0`, so callers scale them to whatever volume
/// scale the instance uses (see [`ArrivalProcess::sizes`], which scales by
/// the base workload's mean volume — load factors stay comparable across
/// distributions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// The web-search workload: mostly short query/response flows, with
    /// ~5% of flows carrying ~10× the median and the largest ~200×.
    WebSearch,
    /// The data-mining workload: even heavier tail — half the flows are
    /// tiny, while the top 1% carry three orders of magnitude more.
    DataMining,
}

impl SizeDistribution {
    /// The `(size, cdf)` breakpoints of the empirical distribution, in
    /// arbitrary size units (only ratios matter — samples are normalized
    /// to mean 1.0).
    fn table(self) -> &'static [(f64, f64)] {
        match self {
            SizeDistribution::WebSearch => &[
                (1.0, 0.0),
                (6.0, 0.15),
                (13.0, 0.30),
                (19.0, 0.45),
                (33.0, 0.60),
                (53.0, 0.70),
                (133.0, 0.80),
                (667.0, 0.90),
                (1333.0, 0.95),
                (6667.0, 0.99),
                (20000.0, 1.0),
            ],
            SizeDistribution::DataMining => &[
                (1.0, 0.0),
                (2.0, 0.50),
                (3.0, 0.60),
                (7.0, 0.70),
                (27.0, 0.80),
                (267.0, 0.90),
                (2107.0, 0.95),
                (6667.0, 0.99),
                (66667.0, 1.0),
            ],
        }
    }

    /// The mean of the piecewise-linear CDF (linear interpolation within
    /// each segment, so each segment contributes its probability mass
    /// times the segment midpoint).
    fn raw_mean(self) -> f64 {
        self.table()
            .windows(2)
            .map(|w| (w[1].1 - w[0].1) * 0.5 * (w[0].0 + w[1].0))
            .sum()
    }

    /// The quantile at `u ∈ [0, 1)`, normalized so the distribution's
    /// mean is exactly `1.0`.
    pub fn quantile(self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let table = self.table();
        let mut raw = table[table.len() - 1].0;
        for w in table.windows(2) {
            let ((x0, p0), (x1, p1)) = (w[0], w[1]);
            if u <= p1 {
                raw = x0 + (x1 - x0) * ((u - p0) / (p1 - p0));
                break;
            }
        }
        raw / self.raw_mean()
    }

    /// The stable name used in experiment artifacts (`websearch` /
    /// `datamining`).
    pub fn name(self) -> &'static str {
        match self {
            SizeDistribution::WebSearch => "websearch",
            SizeDistribution::DataMining => "datamining",
        }
    }

    /// Parses an artifact name (the inverse of [`SizeDistribution::name`];
    /// `None` for anything else).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "websearch" => Some(SizeDistribution::WebSearch),
            "datamining" => Some(SizeDistribution::DataMining),
            _ => None,
        }
    }
}

/// A Poisson arrival process layered over any existing workload: the flows
/// of a base [`FlowSet`] keep their endpoints, volumes and span *lengths*,
/// but their release times are replaced by the cumulative arrival instants
/// of a Poisson process whose rate is set by a **load factor**.
///
/// The load factor is the expected number of flows simultaneously in
/// flight (the M/G/∞ occupancy): with mean span length `s̄` over the base
/// flows, arrivals are spaced by exponential gaps of mean `s̄ / load`, so
/// `load` flows overlap on average. `load < 1` spreads the base workload
/// out into a near-serial trickle; `load > 1` compresses it into heavy
/// concurrency. This is the knob the `online` experiment binary sweeps.
///
/// The process is seeded and fully deterministic; flows are re-released in
/// their id order.
///
/// # Example
///
/// ```
/// use dcn_flow::workload::{ArrivalProcess, UniformWorkload};
/// use dcn_topology::builders;
///
/// let topo = builders::fat_tree(4);
/// let base = UniformWorkload::paper_defaults(30, 7).generate(topo.hosts()).unwrap();
/// let online = ArrivalProcess::with_load(2.0, 7).apply(&base).unwrap();
/// assert_eq!(online.len(), base.len());
/// // Endpoints, volumes and span lengths are preserved.
/// for (a, b) in base.iter().zip(online.iter()) {
///     assert_eq!(a.volume, b.volume);
///     assert!((a.span_length() - b.span_length()).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalProcess {
    /// Expected number of flows concurrently in flight (must be positive
    /// and finite).
    pub load: f64,
    /// Arrival time of the process origin (the first gap starts here).
    pub start: f64,
    /// RNG seed; the same seed always yields the same arrival times.
    pub seed: u64,
    /// When set, flow volumes are re-drawn from this heavy-tailed
    /// distribution (scaled to the base workload's mean volume) instead of
    /// carried over from the base flows.
    pub sizes: Option<SizeDistribution>,
}

impl ArrivalProcess {
    /// An arrival process starting at `t = 0` with the given load factor.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not positive and finite.
    pub fn with_load(load: f64, seed: u64) -> Self {
        assert!(
            load.is_finite() && load > 0.0,
            "load factor must be positive and finite, got {load}"
        );
        Self {
            load,
            start: 0.0,
            seed,
            sizes: None,
        }
    }

    /// Re-draws flow volumes from a heavy-tailed [`SizeDistribution`]
    /// instead of keeping the base workload's (scaled so the expected
    /// volume matches the base's mean — load factors stay comparable).
    pub fn sizes(mut self, sizes: SizeDistribution) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// Rewrites the release times of `base` with Poisson arrivals (keeping
    /// each flow's endpoints, volume and span length) and returns the new
    /// flow set. With [`ArrivalProcess::sizes`] set, volumes are re-drawn
    /// from the heavy-tailed distribution instead, scaled to the base
    /// workload's mean volume.
    ///
    /// # Errors
    ///
    /// Propagates flow-validation errors (unreachable for a valid base
    /// set, since spans and volumes are carried over unchanged).
    ///
    /// # Panics
    ///
    /// Panics if [`ArrivalProcess::load`] is not positive and finite.
    pub fn apply(&self, base: &FlowSet) -> Result<FlowSet, FlowError> {
        assert!(
            self.load.is_finite() && self.load > 0.0,
            "load factor must be positive and finite, got {}",
            self.load
        );
        if base.is_empty() {
            return FlowSet::from_flows(Vec::new());
        }
        let mean_span: f64 = base.iter().map(Flow::span_length).sum::<f64>() / base.len() as f64;
        let mean_volume: f64 = base.iter().map(|f| f.volume).sum::<f64>() / base.len() as f64;
        let mean_gap = mean_span / self.load;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut clock = self.start;
        let mut flows = Vec::with_capacity(base.len());
        for f in base.iter() {
            // Exponential inter-arrival gap by inversion sampling.
            let u: f64 = rng.gen_range(0.0..1.0);
            clock += -(1.0 - u).ln() * mean_gap;
            let volume = match self.sizes {
                Some(dist) => {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    dist.quantile(u) * mean_volume
                }
                None => f.volume,
            };
            flows.push(Flow::new(
                f.id,
                f.src,
                f.dst,
                clock,
                clock + f.span_length(),
                volume,
            )?);
        }
        FlowSet::from_flows(flows)
    }
}

/// Adversarial instances from the paper's hardness proofs (Theorems 2–3).
pub mod hardness {
    use super::*;

    /// Flows of the 3-partition reduction (Theorem 2): one flow per integer
    /// `a_i`, all between the same two hosts, all released at time `0` with
    /// deadline `1`.
    ///
    /// # Errors
    ///
    /// Propagates flow-validation errors (e.g. a non-positive value).
    pub fn three_partition_flows(
        src: NodeId,
        dst: NodeId,
        values: &[f64],
    ) -> Result<FlowSet, FlowError> {
        FlowSet::from_tuples(values.iter().map(|&a| (src, dst, 0.0, 1.0, a)))
    }

    /// Flows of the partition reduction (Theorem 3): identical in shape to
    /// [`three_partition_flows`]; kept separate for clarity at call sites.
    ///
    /// # Errors
    ///
    /// Propagates flow-validation errors.
    pub fn partition_flows(src: NodeId, dst: NodeId, values: &[f64]) -> Result<FlowSet, FlowError> {
        three_partition_flows(src, dst, values)
    }

    /// A canonical satisfiable 3-partition value set: `m` triples that each
    /// sum to `target`.
    pub fn satisfiable_three_partition(m: usize, target: f64) -> Vec<f64> {
        let mut values = Vec::with_capacity(3 * m);
        for i in 0..m {
            // Three values in (target/4, target/2) summing to target.
            let delta = 0.04 * target * ((i % 3) as f64 + 1.0);
            values.push(target / 3.0 - delta);
            values.push(target / 3.0);
            values.push(target / 3.0 + delta);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;

    #[test]
    fn uniform_workload_matches_paper_parameters() {
        let topo = builders::fat_tree(4);
        let w = UniformWorkload::paper_defaults(100, 42);
        let flows = w.generate(topo.hosts()).unwrap();
        assert_eq!(flows.len(), 100);
        let (t0, t1) = flows.horizon();
        assert!(t0 >= 1.0);
        assert!(t1 <= 100.0);
        for f in flows.iter() {
            assert!(f.volume > 0.0);
            assert!(f.span_length() >= 5.0);
            assert!(f.src != f.dst);
        }
        // Volumes should cluster around the mean of 10.
        let mean: f64 = flows.iter().map(|f| f.volume).sum::<f64>() / flows.len() as f64;
        assert!(
            (mean - 10.0).abs() < 1.5,
            "sample mean {mean} too far from 10"
        );
    }

    #[test]
    fn uniform_workload_is_deterministic_per_seed() {
        let topo = builders::fat_tree(4);
        let a = UniformWorkload::paper_defaults(30, 7)
            .generate(topo.hosts())
            .unwrap();
        let b = UniformWorkload::paper_defaults(30, 7)
            .generate(topo.hosts())
            .unwrap();
        let c = UniformWorkload::paper_defaults(30, 8)
            .generate(topo.hosts())
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_descriptors_roundtrip_json() {
        let w = UniformWorkload::paper_defaults(40, 7);
        let back: UniformWorkload = serde_json::from_str(&serde_json::to_string(&w).unwrap())
            .expect("descriptor JSON round-trips");
        assert_eq!(back, w);

        let pa = PartitionAggregateWorkload::default();
        let back: PartitionAggregateWorkload =
            serde_json::from_str(&serde_json::to_string(&pa).unwrap()).unwrap();
        assert_eq!(back, pa);

        let sh = ShuffleWorkload::default();
        let back: ShuffleWorkload =
            serde_json::from_str(&serde_json::to_string(&sh).unwrap()).unwrap();
        assert_eq!(back, sh);
    }

    #[test]
    fn uniform_workload_needs_two_hosts() {
        let w = UniformWorkload::paper_defaults(5, 1);
        assert!(w.generate(&[NodeId(0)]).is_err());
    }

    #[test]
    fn partition_aggregate_shares_deadline_per_request() {
        let topo = builders::leaf_spine(4, 2, 4);
        let w = PartitionAggregateWorkload {
            requests: 3,
            workers_per_request: 5,
            ..Default::default()
        };
        let flows = w.generate(topo.hosts()).unwrap();
        assert_eq!(flows.len(), 15);
        // Flows come in groups of 5 sharing release, deadline and destination.
        for group in flows.as_slice().chunks(5) {
            let d = group[0].deadline;
            let r = group[0].release;
            let agg = group[0].dst;
            for f in group {
                assert_eq!(f.deadline, d);
                assert_eq!(f.release, r);
                assert_eq!(f.dst, agg);
                assert!((f.deadline - f.release - w.deadline_budget).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn shuffle_is_all_to_all() {
        let topo = builders::fat_tree(4);
        let w = ShuffleWorkload {
            mappers: 3,
            reducers: 2,
            ..Default::default()
        };
        let flows = w.generate(topo.hosts()).unwrap();
        assert_eq!(flows.len(), 6);
        let mappers: std::collections::HashSet<_> = flows.iter().map(|f| f.src).collect();
        let reducers: std::collections::HashSet<_> = flows.iter().map(|f| f.dst).collect();
        assert_eq!(mappers.len(), 3);
        assert_eq!(reducers.len(), 2);
    }

    #[test]
    fn shuffle_rejects_small_host_lists() {
        let topo = builders::line(3);
        let w = ShuffleWorkload {
            mappers: 2,
            reducers: 2,
            ..Default::default()
        };
        assert!(w.generate(topo.hosts()).is_err());
    }

    #[test]
    fn arrival_process_is_deterministic_and_preserves_shape() {
        let topo = builders::fat_tree(4);
        let base = UniformWorkload::paper_defaults(25, 9)
            .generate(topo.hosts())
            .unwrap();
        let a = ArrivalProcess::with_load(2.0, 3).apply(&base).unwrap();
        let b = ArrivalProcess::with_load(2.0, 3).apply(&base).unwrap();
        let c = ArrivalProcess::with_load(2.0, 4).apply(&base).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Releases are non-decreasing (cumulative arrivals) and strictly
        // after the origin.
        let mut last = 0.0;
        for f in a.iter() {
            assert!(f.release >= last);
            assert!(f.release > 0.0);
            last = f.release;
        }
        for (orig, online) in base.iter().zip(a.iter()) {
            assert_eq!(orig.src, online.src);
            assert_eq!(orig.dst, online.dst);
            assert_eq!(orig.volume, online.volume);
            assert!((orig.span_length() - online.span_length()).abs() < 1e-9);
        }
    }

    #[test]
    fn arrival_process_load_controls_concurrency() {
        let topo = builders::fat_tree(4);
        let base = UniformWorkload::paper_defaults(60, 5)
            .generate(topo.hosts())
            .unwrap();
        // The horizon stretch is inversely proportional to the load: a
        // near-serial trickle takes much longer than a compressed burst.
        let sparse = ArrivalProcess::with_load(0.25, 5).apply(&base).unwrap();
        let dense = ArrivalProcess::with_load(8.0, 5).apply(&base).unwrap();
        let span = |fs: &FlowSet| {
            let (t0, t1) = fs.horizon();
            t1 - t0
        };
        assert!(span(&sparse) > 4.0 * span(&dense));
    }

    #[test]
    fn size_distributions_are_normalized_and_heavy_tailed() {
        for dist in [SizeDistribution::WebSearch, SizeDistribution::DataMining] {
            // Numerical mean over a fine quantile grid is ~1.0.
            let n = 200_000;
            let mean: f64 = (0..n)
                .map(|i| dist.quantile((i as f64 + 0.5) / n as f64))
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - 1.0).abs() < 1e-3,
                "{}: normalized mean {mean}",
                dist.name()
            );
            // Heavy tail: the median sits far below the mean, the p99 far
            // above — the shape a Gaussian cannot produce.
            let median = dist.quantile(0.5);
            let p99 = dist.quantile(0.99);
            assert!(median < 0.25, "{}: median {median}", dist.name());
            assert!(p99 > 5.0, "{}: p99 {p99}", dist.name());
            assert!(dist.quantile(0.0) > 0.0, "volumes stay positive");
            // Quantiles are monotone.
            let mut last = 0.0;
            for i in 0..=100 {
                let q = dist.quantile(i as f64 / 100.0);
                assert!(q >= last);
                last = q;
            }
            assert_eq!(SizeDistribution::from_name(dist.name()), Some(dist));
        }
        assert_eq!(SizeDistribution::from_name("gaussian"), None);
        // Data mining is the heavier of the two tails.
        assert!(
            SizeDistribution::DataMining.quantile(0.999)
                > SizeDistribution::WebSearch.quantile(0.999)
        );
    }

    #[test]
    fn heavy_tailed_sizes_rescale_to_the_base_mean() {
        let topo = builders::fat_tree(4);
        let base = UniformWorkload::paper_defaults(400, 9)
            .generate(topo.hosts())
            .unwrap();
        let base_mean = base.iter().map(|f| f.volume).sum::<f64>() / base.len() as f64;
        for dist in [SizeDistribution::WebSearch, SizeDistribution::DataMining] {
            let tailed = ArrivalProcess::with_load(2.0, 3)
                .sizes(dist)
                .apply(&base)
                .unwrap();
            assert_eq!(
                tailed,
                ArrivalProcess::with_load(2.0, 3)
                    .sizes(dist)
                    .apply(&base)
                    .unwrap(),
                "deterministic per seed"
            );
            let mean = tailed.iter().map(|f| f.volume).sum::<f64>() / tailed.len() as f64;
            assert!(
                (mean / base_mean - 1.0).abs() < 0.8,
                "{}: sample mean {mean} vs base {base_mean}",
                dist.name()
            );
            let max = tailed.iter().map(|f| f.volume).fold(0.0, f64::max);
            assert!(
                max > 4.0 * base_mean,
                "{}: no elephants (max {max})",
                dist.name()
            );
            // Endpoints and spans still come from the base workload.
            for (orig, online) in base.iter().zip(tailed.iter()) {
                assert_eq!(orig.src, online.src);
                assert_eq!(orig.dst, online.dst);
                assert!((orig.span_length() - online.span_length()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn arrival_process_handles_the_empty_set() {
        let empty = FlowSet::from_flows(vec![]).unwrap();
        assert!(ArrivalProcess::with_load(1.0, 0)
            .apply(&empty)
            .unwrap()
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "load factor must be positive")]
    fn arrival_process_rejects_non_positive_load() {
        let _ = ArrivalProcess::with_load(0.0, 1);
    }

    #[test]
    fn three_partition_gadget() {
        let topo = builders::parallel(6, 10.0);
        let values = hardness::satisfiable_three_partition(3, 9.0);
        assert_eq!(values.len(), 9);
        for triple in values.chunks(3) {
            let s: f64 = triple.iter().sum();
            assert!((s - 9.0).abs() < 1e-9);
        }
        let flows = hardness::three_partition_flows(topo.source(), topo.sink(), &values).unwrap();
        assert_eq!(flows.len(), 9);
        assert_eq!(flows.horizon(), (0.0, 1.0));
        assert_eq!(flows.intervals().len(), 1);
    }
}
