//! Seeded link failure/recovery processes.
//!
//! The paper's model assumes a static fabric; real data centers lose and
//! regain links continuously. [`FailureProcess`] generates the typed
//! [`TopologyEvent`] stream the online engine merges into its event queue:
//! every link alternates exponentially distributed up and down phases, each
//! link driven by its own derived RNG stream so the generated events are a
//! pure function of the seed — independent of iteration order, thread
//! counts or how many other links exist.

use dcn_topology::{LinkId, TopologyEvent};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// An alternating-renewal failure model: each directed link starts up,
/// stays up for an `Exp(mean_uptime)` duration, stays down for an
/// `Exp(mean_downtime)` duration, and repeats until the horizon ends.
///
/// The **failure rate** knob of the `failures` experiment binary is
/// `1 / mean_uptime` (failures per link per unit time); sweeping it up
/// makes outages more frequent while `mean_downtime` fixes how long each
/// one lasts.
///
/// # Example
///
/// ```
/// use dcn_flow::failure::FailureProcess;
///
/// let events = FailureProcess::new(50.0, 5.0, 7).generate(16, 100.0);
/// // Deterministic per seed, sorted by time, alternating per link.
/// assert_eq!(events, FailureProcess::new(50.0, 5.0, 7).generate(16, 100.0));
/// for pair in events.windows(2) {
///     assert!(pair[0].time() <= pair[1].time());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureProcess {
    /// Mean duration of a link's up phase (must be positive and finite).
    pub mean_uptime: f64,
    /// Mean duration of an outage (must be positive and finite).
    pub mean_downtime: f64,
    /// Time the process starts (every link is up at `start`).
    pub start: f64,
    /// RNG seed; the same seed always yields the same event stream.
    pub seed: u64,
}

impl FailureProcess {
    /// A process over `[0, until)` horizons with the given phase means.
    ///
    /// # Panics
    ///
    /// Panics if either mean is not positive and finite.
    pub fn new(mean_uptime: f64, mean_downtime: f64, seed: u64) -> Self {
        assert!(
            mean_uptime.is_finite() && mean_uptime > 0.0,
            "mean uptime must be positive and finite, got {mean_uptime}"
        );
        assert!(
            mean_downtime.is_finite() && mean_downtime > 0.0,
            "mean downtime must be positive and finite, got {mean_downtime}"
        );
        Self {
            mean_uptime,
            mean_downtime,
            start: 0.0,
            seed,
        }
    }

    /// Generates the event stream for links `0..link_count` over
    /// `[start, until)`, sorted by time (ties broken by link id, downs
    /// before ups). Transitions at or past `until` are dropped mid-phase,
    /// so a link can end the horizon down — matching the engine's
    /// stranded-flow semantics rather than forcing a final recovery.
    ///
    /// # Panics
    ///
    /// Panics if a phase mean is not positive and finite (see
    /// [`FailureProcess::new`]).
    pub fn generate(&self, link_count: usize, until: f64) -> Vec<TopologyEvent> {
        assert!(
            self.mean_uptime.is_finite() && self.mean_uptime > 0.0,
            "mean uptime must be positive and finite, got {}",
            self.mean_uptime
        );
        assert!(
            self.mean_downtime.is_finite() && self.mean_downtime > 0.0,
            "mean downtime must be positive and finite, got {}",
            self.mean_downtime
        );
        let mut events = Vec::new();
        for index in 0..link_count {
            let link = LinkId(index);
            // One independent RNG stream per link, derived from the seed
            // with an odd multiplier so streams never collide across links.
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(index as u64 + 1),
            );
            let mut clock = self.start;
            let mut up = true;
            loop {
                let mean = if up {
                    self.mean_uptime
                } else {
                    self.mean_downtime
                };
                // Exponential phase length by inversion sampling.
                let u: f64 = rng.gen_range(0.0..1.0);
                clock += -(1.0 - u).ln() * mean;
                if clock >= until {
                    break;
                }
                events.push(if up {
                    TopologyEvent::LinkDown { time: clock, link }
                } else {
                    TopologyEvent::LinkUp { time: clock, link }
                });
                up = !up;
            }
        }
        // Canonical stream order: time, then link id, downs before ups.
        // Times are continuous draws so cross-link ties are vanishingly
        // rare, but the order must still be total for determinism.
        events.sort_by(|a, b| {
            a.time()
                .total_cmp(&b.time())
                .then_with(|| a.link().cmp(&b.link()))
                .then_with(|| b.is_down().cmp(&a.is_down()))
        });
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_alternate_per_link() {
        let p = FailureProcess::new(10.0, 2.0, 11);
        let a = p.generate(8, 200.0);
        let b = p.generate(8, 200.0);
        assert_eq!(a, b);
        assert_ne!(a, FailureProcess::new(10.0, 2.0, 12).generate(8, 200.0));
        assert!(!a.is_empty(), "200 time units at mean uptime 10 fail");
        for index in 0..8 {
            let link = LinkId(index);
            let mut expect_down = true;
            for e in a.iter().filter(|e| e.link() == link) {
                assert_eq!(e.is_down(), expect_down, "phases alternate");
                assert!(e.time() >= 0.0 && e.time() < 200.0);
                expect_down = !expect_down;
            }
        }
        for pair in a.windows(2) {
            assert!(pair[0].time() <= pair[1].time(), "sorted by time");
        }
    }

    #[test]
    fn per_link_streams_survive_link_count_changes() {
        // The events of link 3 are identical whether 4 or 64 links exist:
        // each link has its own derived RNG stream.
        let p = FailureProcess::new(5.0, 1.0, 3);
        let small: Vec<_> = p
            .generate(4, 100.0)
            .into_iter()
            .filter(|e| e.link() == LinkId(3))
            .collect();
        let large: Vec<_> = p
            .generate(64, 100.0)
            .into_iter()
            .filter(|e| e.link() == LinkId(3))
            .collect();
        assert_eq!(small, large);
    }

    #[test]
    fn rare_failures_yield_sparse_streams() {
        // Mean uptime far beyond the horizon: most links never fail.
        let events = FailureProcess::new(1e6, 1.0, 9).generate(32, 100.0);
        assert!(events.len() < 8, "got {} events", events.len());
    }

    #[test]
    #[should_panic(expected = "mean uptime must be positive")]
    fn zero_uptime_is_rejected() {
        let _ = FailureProcess::new(0.0, 1.0, 1);
    }
}
