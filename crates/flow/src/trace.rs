//! JSON (de)serialization of flow traces.
//!
//! Experiments serialize the exact flow sets they ran on so that results in
//! `EXPERIMENTS.md` can be replayed bit-for-bit.

use crate::{FlowError, FlowSet};
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised when reading or writing a flow trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying filesystem error.
    Io(io::Error),
    /// The trace is not valid JSON or does not describe a flow set.
    Format(String),
    /// The decoded flows violate the flow-set invariants.
    Invalid(FlowError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Format(msg) => write!(f, "trace format error: {msg}"),
            TraceError::Invalid(e) => write!(f, "trace contains invalid flows: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Invalid(e) => Some(e),
            TraceError::Format(_) => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(value: io::Error) -> Self {
        TraceError::Io(value)
    }
}

impl From<FlowError> for TraceError {
    fn from(value: FlowError) -> Self {
        TraceError::Invalid(value)
    }
}

/// Serializes a flow set to a pretty-printed JSON string.
pub fn to_json_string(flows: &FlowSet) -> String {
    serde_json::to_string_pretty(flows).expect("flow sets always serialize")
}

/// Parses a flow set from a JSON string, re-validating every flow.
///
/// # Errors
///
/// Returns [`TraceError::Format`] for malformed JSON and
/// [`TraceError::Invalid`] when the decoded flows violate the model's
/// invariants.
pub fn from_json_str(json: &str) -> Result<FlowSet, TraceError> {
    let decoded: FlowSet =
        serde_json::from_str(json).map_err(|e| TraceError::Format(e.to_string()))?;
    // Round-trip through the validating constructor.
    Ok(FlowSet::from_flows(decoded.iter().cloned().collect())?)
}

/// Writes a flow set to a JSON file.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the file cannot be written.
pub fn write_json(flows: &FlowSet, path: impl AsRef<Path>) -> Result<(), TraceError> {
    fs::write(path, to_json_string(flows))?;
    Ok(())
}

/// Reads a flow set from a JSON file.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the file cannot be read, or the same errors
/// as [`from_json_str`] for malformed content.
pub fn read_json(path: impl AsRef<Path>) -> Result<FlowSet, TraceError> {
    let data = fs::read_to_string(path)?;
    from_json_str(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::UniformWorkload;
    use dcn_topology::builders;

    #[test]
    fn json_roundtrip_preserves_flows() {
        let topo = builders::fat_tree(4);
        let flows = UniformWorkload::paper_defaults(25, 3)
            .generate(topo.hosts())
            .unwrap();
        let json = to_json_string(&flows);
        let decoded = from_json_str(&json).unwrap();
        assert_eq!(flows, decoded);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(
            from_json_str("{not json"),
            Err(TraceError::Format(_))
        ));
    }

    #[test]
    fn invalid_flows_are_rejected_on_read() {
        // Deadline before release.
        let json =
            r#"{"flows":[{"id":0,"src":0,"dst":1,"release":5.0,"deadline":1.0,"volume":2.0}]}"#;
        let res = from_json_str(json);
        assert!(
            matches!(
                res,
                Err(TraceError::Format(_)) | Err(TraceError::Invalid(_))
            ),
            "invalid trace must not load"
        );
    }

    #[test]
    fn file_roundtrip() {
        let topo = builders::line(4);
        let flows = UniformWorkload::paper_defaults(5, 11)
            .generate(topo.hosts())
            .unwrap();
        let dir = std::env::temp_dir().join("dcn_flow_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        write_json(&flows, &path).unwrap();
        let decoded = read_json(&path).unwrap();
        assert_eq!(flows, decoded);
        let missing = read_json(dir.join("missing.json"));
        assert!(matches!(missing, Err(TraceError::Io(_))));
    }
}
