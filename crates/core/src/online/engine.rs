//! The event-driven core of the online subsystem.
//!
//! [`OnlineEngine`] executes a flow set under online arrivals by draining a
//! typed event queue: **arrival** events (groups of equal release times,
//! fixed up front), plus the **completion** and **deadline-slack timer**
//! events that rate-assigning policies predict. At every event batch the
//! engine retires served and expired flows, admits new arrivals through the
//! [`AdmissionRule`], asks the [`OnlinePolicy`] what to do, and commits the
//! resulting rates — either a policy-computed
//! [`RatePlan`](super::policy::RatePlan) or the slice of
//! a full residual re-solve — up to the next queued event.
//!
//! Every decision invalidates all previously predicted completions and
//! timers (a lazy generation counter — stale events are skipped on pop, not
//! searched for), so the queue always reflects only the *current* rate
//! plan. With a policy that always resolves ([`super::ResolvePolicy`]) the
//! queue holds arrival events only and the engine replays the pre-split
//! `OnlineScheduler` loop exactly, which is what keeps the `resolve` policy
//! bit-identical to it.
//!
//! Engines are assembled through the [`EngineConfig`] builder
//! ([`OnlineEngine::builder`]), which also carries the three throughput
//! levers of the online loop:
//!
//! * **warm starts** ([`EngineConfig::warm_start`]) — the context's
//!   Frank–Wolfe scratch caches the previous event's flow matrix and seeds
//!   every re-solve from it, re-routing only commodities whose cached rows
//!   touch links dirtied by committed rates since the last solve;
//! * **epoch batching** ([`EngineConfig::epoch`]) — arrival times are
//!   quantised up to a configurable window so arrivals within one window
//!   share a single re-solve;
//! * **pod sharding** ([`EngineConfig::shards`]) — on pod-labelled
//!   topologies the residual instance is partitioned into per-pod buckets
//!   plus one cross-pod bucket, buckets are solved concurrently on scoped
//!   worker threads (each with its own warm context and algorithm
//!   instance), and a bounded fix-up pass jointly re-solves the flows
//!   touching any link the merged bucket schedules overload. The partition
//!   and every per-bucket seed depend only on the event index and the pod
//!   labels — never on the shard count — so artifacts are byte-identical
//!   at any `--shards` width.

use super::policy::{OnlinePolicy, PolicyAction, PolicyRegistry};
use super::{fractionally_feasible, residual_flow};
use crate::algorithm::{Algorithm, AlgorithmRegistry};
use crate::context::SolverContext;
use crate::error::SolveError;
use crate::schedule::{FlowSchedule, Schedule};
use crate::solution::Solution;
use dcn_flow::{Flow, FlowId, FlowSet};
use dcn_power::{PowerFunction, RateProfile};
use dcn_solver::fmcf::FmcfSolverConfig;
use dcn_topology::{LinkId, TopologyEvent};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Relative volume tolerance under which an in-flight flow counts as fully
/// served (matches the verification tolerance of [`Schedule`]).
const VOLUME_TOL: f64 = 1e-9;

/// How the online loop decides whether a newly arrived flow is accepted.
#[derive(Debug, Clone, Default)]
pub enum AdmissionRule {
    /// Every arrival is admitted. Under overload the re-solves may fail or
    /// flows may run out of time; the [`OnlineReport`] records the misses.
    #[default]
    AdmitAll,
    /// An arrival is admitted only if the fractional relaxation of the
    /// candidate residual instance (in-flight residuals + the candidate)
    /// fits under every link capacity — the LP-relaxation feasibility
    /// check of [`fractionally_feasible`].
    RejectInfeasible {
        /// Frank–Wolfe configuration of the feasibility relaxation.
        config: FmcfSolverConfig,
        /// Relative capacity slack tolerated in the fractional loads (the
        /// relaxation enforces capacities through a penalty, so converged
        /// solutions may overshoot by a hair).
        slack: f64,
    },
}

impl AdmissionRule {
    /// The [`AdmissionRule::RejectInfeasible`] rule with the given
    /// Frank–Wolfe configuration and the default `1e-3` capacity slack.
    pub fn reject_infeasible(config: FmcfSolverConfig) -> Self {
        AdmissionRule::RejectInfeasible {
            config,
            slack: 1e-3,
        }
    }

    /// A short stable name for artifacts and tables (`admit-all` /
    /// `reject-infeasible`).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionRule::AdmitAll => "admit-all",
            AdmissionRule::RejectInfeasible { .. } => "reject-infeasible",
        }
    }

    /// Evaluates the rule for one candidate arrival: `AdmitAll` accepts
    /// unconditionally, `RejectInfeasible` probes the fractional
    /// feasibility of the candidate residual instance. This is the default
    /// behaviour of [`OnlinePolicy::admission`].
    ///
    /// # Errors
    ///
    /// Propagates [`fractionally_feasible`] errors.
    pub fn evaluate(
        &self,
        ctx: &mut SolverContext<'_>,
        power: &PowerFunction,
        world: &WorldView<'_>,
        candidate: FlowId,
    ) -> Result<bool, SolveError> {
        match self {
            AdmissionRule::AdmitAll => Ok(true),
            AdmissionRule::RejectInfeasible { config, slack } => {
                let (candidate_set, _) = world.residual(Some(candidate))?;
                fractionally_feasible(ctx, &candidate_set, power, config, *slack)
            }
        }
    }
}

/// The admit/deliver outcome of one flow under the online loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDecision {
    /// The flow.
    pub flow: FlowId,
    /// Whether the admission rule accepted the flow.
    pub admitted: bool,
    /// Volume committed for the flow over the whole run.
    pub delivered: f64,
    /// Whether an *admitted* flow failed to receive its full volume by its
    /// deadline (rejected flows are never counted as misses).
    pub missed: bool,
    /// Whether the miss is attributed to a topology failure: the flow was
    /// stranded (endpoints disconnected) by a
    /// [`TopologyEvent::LinkDown`] while in flight, or a failure severed
    /// the path its committed rates were riding. Always `false` when
    /// `missed` is `false`.
    pub failure_missed: bool,
}

/// What the online loop did: per-flow decisions, event/re-solve counters
/// and the energy of the stitched schedule, with the offline clairvoyant
/// energy alongside when [`OnlineEngine::run_vs_offline`] computed it.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// One decision per flow of the instance, in flow-id order.
    pub decisions: Vec<FlowDecision>,
    /// Number of event batches processed (arrival groups, plus the
    /// completion/timer batches a rate-assigning policy generates).
    pub events: usize,
    /// Number of residual re-solves performed (for the `resolve` policy:
    /// one per event with a non-empty residual instance).
    pub resolves: usize,
    /// Number of re-solves that returned an error (the loop then keeps the
    /// previous commitments and the affected flows may miss).
    pub solve_failures: usize,
    /// Energy of the stitched online schedule (the paper's objective).
    pub online_energy: f64,
    /// Energy of the wrapped algorithm solving the full instance with
    /// clairvoyant knowledge, when computed.
    pub offline_energy: Option<f64>,
    /// Number of [`TopologyEvent`]s that actually changed link state
    /// during the run (duplicate failures/recoveries are no-ops and not
    /// counted).
    pub topology_events: usize,
}

impl OnlineReport {
    /// Number of admitted flows.
    pub fn admitted(&self) -> usize {
        self.decisions.iter().filter(|d| d.admitted).count()
    }

    /// Number of rejected flows.
    pub fn rejected(&self) -> usize {
        self.decisions.iter().filter(|d| !d.admitted).count()
    }

    /// Number of admitted flows that missed their deadline.
    pub fn missed(&self) -> usize {
        self.decisions.iter().filter(|d| d.missed).count()
    }

    /// Number of misses attributed to topology failures (a subset of
    /// [`OnlineReport::missed`]; see [`FlowDecision::failure_missed`]).
    pub fn failure_missed(&self) -> usize {
        self.decisions.iter().filter(|d| d.failure_missed).count()
    }

    /// Per-flow admission mask, indexed by flow id (the shape
    /// `Simulator::run_admitted` consumes).
    pub fn admitted_mask(&self) -> Vec<bool> {
        self.decisions.iter().map(|d| d.admitted).collect()
    }

    /// `online_energy / offline_energy`, when the offline bound was
    /// computed and is positive.
    pub fn competitive_ratio(&self) -> Option<f64> {
        match self.offline_energy {
            Some(offline) if offline > 0.0 => Some(self.online_energy / offline),
            _ => None,
        }
    }
}

/// The result of one online run: the stitched executable schedule, the
/// report, and (after [`OnlineEngine::run_vs_offline`]) the offline
/// clairvoyant solution for comparison.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The committed slices of every event, stitched into one schedule
    /// over the instance horizon.
    pub schedule: Schedule,
    /// What the loop decided and measured.
    pub report: OnlineReport,
    /// The clairvoyant solution of the wrapped algorithm on the full
    /// instance, when computed.
    pub offline: Option<Solution>,
}

/// Per-flow bookkeeping of the event loop.
#[derive(Debug, Clone, Copy, Default)]
struct FlowState {
    admitted: bool,
    /// Admitted, not yet fully served, deadline not yet passed.
    in_flight: bool,
    missed: bool,
    delivered: f64,
    /// Admitted but currently disconnected by link failures: out of
    /// `live` until a recovery reconnects the endpoints (or the deadline
    /// expires first).
    stranded: bool,
    /// A failure stranded this flow or severed a path its committed rates
    /// were riding; a final miss is then attributed to the failure.
    failure_touched: bool,
}

/// A read-only snapshot of the engine's per-flow state, handed to
/// [`OnlinePolicy`] callbacks: which flows are in flight, how much each has
/// received, and the residual-instance constructor the `resolve` path and
/// the admission probe share.
#[derive(Debug, Clone, Copy)]
pub struct WorldView<'a> {
    flows: &'a FlowSet,
    states: &'a [FlowState],
    /// The ids with `in_flight` set, mirrored by the event loop so
    /// per-event work scales with the in-flight population instead of the
    /// whole instance (100k-arrival traces make a full scan per event the
    /// dominant cost).
    live: &'a BTreeSet<FlowId>,
    now: f64,
}

impl WorldView<'_> {
    /// The full instance (ids, endpoints, spans, volumes).
    pub fn flows(&self) -> &FlowSet {
        self.flows
    }

    /// The engine clock: the time of the event batch being processed.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Whether `flow` is admitted, not fully served, and not expired.
    pub fn is_in_flight(&self, flow: FlowId) -> bool {
        self.states[flow].in_flight
    }

    /// The in-flight flows, in ascending id order.
    pub fn in_flight(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.live.iter().copied()
    }

    /// Volume committed for `flow` so far.
    pub fn delivered(&self, flow: FlowId) -> f64 {
        self.states[flow].delivered
    }

    /// Volume `flow` still has to receive (never negative).
    pub fn remaining(&self, flow: FlowId) -> f64 {
        (self.flows.flow(flow).volume - self.states[flow].delivered).max(0.0)
    }

    /// Builds the residual instance at the current clock from every
    /// in-flight flow (plus `extra`, a not-yet-admitted candidate), in
    /// original-id order, and the residual-id → original-id map.
    ///
    /// # Errors
    ///
    /// * [`SolveError::EmptyFlowSet`] when nothing is in flight.
    /// * [`residual_flow`] errors for an expired or fully served flow.
    pub fn residual(&self, extra: Option<FlowId>) -> Result<(FlowSet, Vec<FlowId>), SolveError> {
        let mut map: Vec<FlowId> = self.live.iter().copied().collect();
        if let Some(id) = extra {
            if let Err(slot) = map.binary_search(&id) {
                map.insert(slot, id);
            }
        }
        if map.is_empty() {
            return Err(SolveError::EmptyFlowSet);
        }
        let mut residual = Vec::with_capacity(map.len());
        for (rid, &orig) in map.iter().enumerate() {
            let flow = self.flows.flow(orig);
            residual.push(residual_flow(
                flow,
                self.now,
                flow.volume - self.states[orig].delivered,
                rid,
            )?);
        }
        let set = FlowSet::from_flows(residual).map_err(SolveError::from)?;
        Ok((set, map))
    }
}

/// One event batch handed to [`OnlinePolicy::on_event`]: everything that
/// fired at the same instant, split by kind.
#[derive(Debug, Clone)]
pub struct OnlineEvent {
    /// The engine clock of the batch.
    pub time: f64,
    /// Zero-based index of the batch (drives the re-solve seed schedule:
    /// batch `k` re-seeds the wrapped algorithm with `seed + k`).
    pub index: usize,
    /// Flows released at this instant, ids ascending.
    pub arrivals: Vec<FlowId>,
    /// Flows whose predicted completion fired, ids ascending.
    pub completions: Vec<FlowId>,
    /// Flows whose deadline-slack timer fired, ids ascending.
    pub timers: Vec<FlowId>,
    /// Topology events that took effect at this instant, in stream order.
    /// They are applied to the context *before* the policy sees the batch,
    /// so routing decisions already reflect the new link state.
    pub topology: Vec<TopologyEvent>,
}

/// What is sitting in the event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueuedKind {
    /// Index into the run's topology-event stream.
    Topology { index: usize },
    /// Index into the precomputed arrival groups.
    Arrival { group: usize },
    /// A rate assignment predicts this flow finishes now.
    Completion { flow: FlowId },
    /// A policy-requested wake-up (latest-start or deadline watchdog).
    SlackTimer { flow: FlowId },
}

impl QueuedKind {
    /// Ordering rank within one instant: topology changes first (so the
    /// batch's decisions already see the new link state), then arrivals,
    /// completions and timers.
    fn rank(self) -> u8 {
        match self {
            QueuedKind::Topology { .. } => 0,
            QueuedKind::Arrival { .. } => 1,
            QueuedKind::Completion { .. } => 2,
            QueuedKind::SlackTimer { .. } => 3,
        }
    }

    /// Deterministic tie-break key within one rank.
    fn key(self) -> usize {
        match self {
            QueuedKind::Topology { index } => index,
            QueuedKind::Arrival { group } => group,
            QueuedKind::Completion { flow } | QueuedKind::SlackTimer { flow } => flow,
        }
    }
}

/// One queued event. Dynamic events (completions, timers) carry the
/// generation they were predicted under; bumping the queue's generation
/// lazily invalidates them.
#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    time: f64,
    generation: u64,
    kind: QueuedKind,
}

impl QueuedEvent {
    fn tie_break(&self) -> (u8, usize, u64) {
        (self.kind.rank(), self.kind.key(), self.generation)
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.tie_break().cmp(&other.tie_break()))
    }
}

/// The typed event queue: a min-heap with lazy generation invalidation of
/// dynamic events. Arrival events are never invalidated.
#[derive(Debug, Default)]
struct EventQueue {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    generation: u64,
}

impl EventQueue {
    fn push_arrival(&mut self, time: f64, group: usize) {
        self.heap.push(Reverse(QueuedEvent {
            time,
            generation: 0,
            kind: QueuedKind::Arrival { group },
        }));
    }

    fn push_topology(&mut self, time: f64, index: usize) {
        self.heap.push(Reverse(QueuedEvent {
            time,
            generation: 0,
            kind: QueuedKind::Topology { index },
        }));
    }

    fn push_completion(&mut self, time: f64, flow: FlowId) {
        self.heap.push(Reverse(QueuedEvent {
            time,
            generation: self.generation,
            kind: QueuedKind::Completion { flow },
        }));
    }

    fn push_timer(&mut self, time: f64, flow: FlowId) {
        self.heap.push(Reverse(QueuedEvent {
            time,
            generation: self.generation,
            kind: QueuedKind::SlackTimer { flow },
        }));
    }

    /// Marks every queued completion and timer stale. Called once per
    /// processed batch, *before* the new plan's events are pushed.
    fn invalidate_dynamic(&mut self) {
        self.generation += 1;
    }

    fn is_live(&self, event: &QueuedEvent) -> bool {
        matches!(
            event.kind,
            QueuedKind::Arrival { .. } | QueuedKind::Topology { .. }
        ) || event.generation == self.generation
    }

    /// The time of the next live event, discarding stale ones on the way.
    fn peek_valid_time(&mut self) -> Option<f64> {
        loop {
            let (live, time) = match self.heap.peek() {
                Some(Reverse(event)) => (self.is_live(event), event.time),
                None => return None,
            };
            if live {
                return Some(time);
            }
            self.heap.pop();
        }
    }

    /// Pops every live event at the earliest live time, in deterministic
    /// (rank, key) order.
    fn pop_batch(&mut self) -> Option<(f64, Vec<QueuedEvent>)> {
        let time = self.peek_valid_time()?;
        let mut batch = Vec::new();
        loop {
            let live = match self.heap.peek() {
                Some(Reverse(event)) if event.time == time => self.is_live(event),
                _ => break,
            };
            let Reverse(event) = self.heap.pop().expect("peeked event pops");
            if live {
                batch.push(event);
            }
        }
        Some((time, batch))
    }
}

/// How residual re-solves are partitioned across pod-local shards (see
/// [`EngineConfig::shards`]).
///
/// The shard mode only controls *worker-thread width*: the pod partition
/// and the per-bucket seeds are fixed by the topology's pod labels and the
/// event index, so every mode other than [`ShardMode::Off`] produces the
/// same schedules — byte for byte — at any width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// No sharding: every residual instance is solved whole on the main
    /// context (the default, and the only behaviour before sharding
    /// existed).
    #[default]
    Off,
    /// Shard by pod, with one worker thread per available CPU (capped by
    /// the number of occupied buckets).
    Auto,
    /// Shard by pod, with exactly this many worker threads (clamped to at
    /// least 1 and at most the number of occupied buckets).
    Fixed(usize),
}

impl ShardMode {
    /// The worker-thread width for `jobs` occupied buckets.
    fn width(self, jobs: usize) -> usize {
        let cap = jobs.max(1);
        match self {
            ShardMode::Off => 1,
            ShardMode::Auto => std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(cap),
            ShardMode::Fixed(n) => n.clamp(1, cap),
        }
    }
}

/// The wrapped re-solve backend of an [`EngineConfig`]: resolved by
/// registry name (which keeps the name around for per-shard instances) or
/// injected as a ready-made instance.
#[derive(Debug)]
enum AlgorithmChoice {
    Name(String),
    Instance(Box<dyn Algorithm>),
}

/// The per-event decision rule of an [`EngineConfig`], by name or instance.
#[derive(Debug)]
enum PolicyChoice {
    Name(String),
    Instance(Box<dyn OnlinePolicy>),
}

/// The builder assembling an [`OnlineEngine`]: which algorithm re-solves
/// residual instances, which [`OnlinePolicy`] decides per event, which
/// [`AdmissionRule`] gates arrivals, and the warm-start / epoch-batching /
/// pod-sharding throughput levers (see the [module docs](self)).
///
/// Obtained from [`OnlineEngine::builder`]; every knob has a safe default
/// (`dcfsr` re-solves, `resolve` policy, admit-all, no warm starts, no
/// batching, no sharding, seed 0):
///
/// ```
/// use dcn_core::online::{OnlineEngine, ShardMode};
///
/// # fn main() -> Result<(), dcn_core::SolveError> {
/// let mut engine = OnlineEngine::builder()
///     .policy("hybrid")
///     .warm_start(true)
///     .epoch(0.05)
///     .shards(ShardMode::Auto)
///     .seed(7)
///     .build()?;
/// assert_eq!(engine.policy().name(), "hybrid");
/// assert_eq!(engine.shards(), ShardMode::Auto);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EngineConfig {
    algorithm: AlgorithmChoice,
    policy: PolicyChoice,
    admission: AdmissionRule,
    warm_start: bool,
    epoch: f64,
    shards: ShardMode,
    seed: u64,
    algorithms: Option<AlgorithmRegistry>,
    policies: Option<PolicyRegistry>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            algorithm: AlgorithmChoice::Name("dcfsr".into()),
            policy: PolicyChoice::Name("resolve".into()),
            admission: AdmissionRule::default(),
            warm_start: false,
            epoch: 0.0,
            shards: ShardMode::Off,
            seed: 0,
            algorithms: None,
            policies: None,
        }
    }
}

impl EngineConfig {
    /// Selects the re-solve algorithm by registry name (default `"dcfsr"`).
    /// Name-based selection is what enables pod sharding: the engine keeps
    /// the name and registry around to create one instance per shard.
    pub fn algorithm(mut self, name: impl Into<String>) -> Self {
        self.algorithm = AlgorithmChoice::Name(name.into());
        self
    }

    /// Injects a ready-made re-solve algorithm. Instance-injected
    /// algorithms cannot be replicated per shard, so sharding falls back
    /// to whole-instance solves.
    pub fn algorithm_instance(mut self, algorithm: Box<dyn Algorithm>) -> Self {
        self.algorithm = AlgorithmChoice::Instance(algorithm);
        self
    }

    /// Selects the per-event policy by registry name (default `"resolve"`).
    pub fn policy(mut self, name: impl Into<String>) -> Self {
        self.policy = PolicyChoice::Name(name.into());
        self
    }

    /// Injects a ready-made per-event policy.
    pub fn policy_instance(mut self, policy: Box<dyn OnlinePolicy>) -> Self {
        self.policy = PolicyChoice::Instance(policy);
        self
    }

    /// Sets the admission rule (default [`AdmissionRule::AdmitAll`]).
    pub fn admission(mut self, admission: AdmissionRule) -> Self {
        self.admission = admission;
        self
    }

    /// Enables warm-started Frank–Wolfe re-solves (default off): the
    /// context scratch caches the previous solve's flow matrix and seeds
    /// the next one from it, re-routing only commodities whose cached rows
    /// touch links dirtied by committed rates in between.
    pub fn warm_start(mut self, enabled: bool) -> Self {
        self.warm_start = enabled;
        self
    }

    /// Sets the epoch batching window in time units (default `0.0`, i.e.
    /// off): arrival times are quantised *up* to the next multiple of the
    /// window, so arrivals within one window share a single event batch
    /// and re-solve. An arrival whose deadline falls inside the window it
    /// is deferred across is admitted but counted as missed.
    pub fn epoch(mut self, window: f64) -> Self {
        self.epoch = window;
        self
    }

    /// Sets the pod-sharding mode (default [`ShardMode::Off`]).
    pub fn shards(mut self, shards: ShardMode) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the seed handed to [`OnlineEngine::set_seed`] on build
    /// (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Resolves name-based algorithms against this registry instead of
    /// [`AlgorithmRegistry::with_defaults`].
    pub fn algorithms(mut self, registry: AlgorithmRegistry) -> Self {
        self.algorithms = Some(registry);
        self
    }

    /// Resolves name-based policies against this registry instead of
    /// [`PolicyRegistry::with_defaults`].
    pub fn policies(mut self, registry: PolicyRegistry) -> Self {
        self.policies = Some(registry);
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// * [`SolveError::UnknownAlgorithm`] / [`SolveError::UnknownPolicy`]
    ///   for a name the (default or supplied) registry does not know.
    /// * [`SolveError::InvalidInput`] for a non-finite or negative epoch
    ///   window.
    pub fn build(self) -> Result<OnlineEngine, SolveError> {
        if !self.epoch.is_finite() || self.epoch < 0.0 {
            return Err(SolveError::InvalidInput {
                reason: format!(
                    "epoch window must be finite and non-negative, got {}",
                    self.epoch
                ),
            });
        }
        let (algorithm, shard_factory) = match self.algorithm {
            AlgorithmChoice::Name(name) => {
                let registry = self
                    .algorithms
                    .unwrap_or_else(AlgorithmRegistry::with_defaults);
                let instance = registry.create(&name)?;
                (instance, Some((name, registry)))
            }
            AlgorithmChoice::Instance(instance) => (instance, None),
        };
        let policy = match self.policy {
            PolicyChoice::Name(name) => self
                .policies
                .unwrap_or_else(PolicyRegistry::with_defaults)
                .create(&name)?,
            PolicyChoice::Instance(policy) => policy,
        };
        let mut engine = OnlineEngine {
            algorithm,
            policy,
            admission: self.admission,
            seed: 0,
            warm_start: self.warm_start,
            epoch: self.epoch,
            shards: self.shards,
            shard_factory,
        };
        engine.set_seed(self.seed);
        Ok(engine)
    }
}

/// The event-driven online driver: one wrapped [`Algorithm`] (the re-solve
/// backend), one [`OnlinePolicy`] (the per-event decision rule) and one
/// [`AdmissionRule`], executing a flow set under online arrivals (see the
/// [module docs](self)). Assembled through [`OnlineEngine::builder`].
#[derive(Debug)]
pub struct OnlineEngine {
    algorithm: Box<dyn Algorithm>,
    policy: Box<dyn OnlinePolicy>,
    admission: AdmissionRule,
    seed: u64,
    warm_start: bool,
    epoch: f64,
    shards: ShardMode,
    /// The registry name the algorithm was created under, kept to create
    /// per-shard instances. `None` for instance-injected algorithms, which
    /// disables sharding.
    shard_factory: Option<(String, AlgorithmRegistry)>,
}

impl OnlineEngine {
    /// Starts an [`EngineConfig`] with the default knobs.
    pub fn builder() -> EngineConfig {
        EngineConfig::default()
    }

    /// Creates the engine around a (registry-created) algorithm and policy.
    #[deprecated(
        since = "0.2.0",
        note = "use `OnlineEngine::builder()` — it also carries the warm-start, \
                epoch and shard knobs"
    )]
    pub fn new(
        algorithm: Box<dyn Algorithm>,
        policy: Box<dyn OnlinePolicy>,
        admission: AdmissionRule,
    ) -> Self {
        Self {
            algorithm,
            policy,
            admission,
            seed: 0,
            warm_start: false,
            epoch: 0.0,
            shards: ShardMode::Off,
            shard_factory: None,
        }
    }

    /// Re-seeds the engine and its policy. Event batch `k` re-seeds the
    /// wrapped algorithm with `seed + k`, so the first batch — and
    /// therefore the full-knowledge run with a single arrival event — uses
    /// exactly `seed`, matching an offline solve seeded the same way.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
        self.policy.set_seed(seed);
    }

    /// The wrapped re-solve algorithm.
    pub fn algorithm(&self) -> &dyn Algorithm {
        self.algorithm.as_ref()
    }

    /// The policy driving per-event decisions.
    pub fn policy(&self) -> &dyn OnlinePolicy {
        self.policy.as_ref()
    }

    /// The admission rule in use.
    pub fn admission(&self) -> &AdmissionRule {
        &self.admission
    }

    /// Whether warm-started re-solves are enabled.
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// The epoch batching window (`0.0` means off).
    pub fn epoch(&self) -> f64 {
        self.epoch
    }

    /// The pod-sharding mode.
    pub fn shards(&self) -> ShardMode {
        self.shards
    }

    /// Executes the instance online: reveals flows at their release times,
    /// drains the event queue, applies the policy's decision at every
    /// batch and stitches the committed slices into one schedule.
    ///
    /// A re-solve *error* (e.g. an infeasible residual under `AdmitAll`
    /// overload) is not fatal: the loop counts it in
    /// [`OnlineReport::solve_failures`], keeps the commitments made so far
    /// and carries on — the affected flows are recorded as missed.
    ///
    /// # Errors
    ///
    /// * [`SolveError::EmptyFlowSet`] for an empty instance (there is no
    ///   event to run).
    /// * [`SolveError::InvalidInput`] for endpoints outside the network,
    ///   when the wrapped algorithm is bound-only (`lb`) and produces no
    ///   schedule to commit, or when the policy floods the queue without
    ///   converging.
    /// * Errors of [`OnlinePolicy::on_event`] / [`OnlinePolicy::admission`].
    pub fn run(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<OnlineOutcome, SolveError> {
        self.run_with_events(ctx, flows, power, &[])
    }

    /// [`OnlineEngine::run`] with a dynamic topology: the typed
    /// failure/recovery stream is merged into the event queue and each
    /// event is applied to the context at its effect time, *before* the
    /// policy sees the batch. Because topology events sit in the queue
    /// from the start, every commit window is automatically bounded by
    /// the next one — no committed transmission ever crosses a failure on
    /// a stale path.
    ///
    /// On a [`TopologyEvent::LinkDown`] the in-flight flows are triaged:
    /// flows whose endpoints are disconnected are *stranded* (they leave
    /// the live set, revive on a reconnecting
    /// [`TopologyEvent::LinkUp`], and a final miss is attributed to the
    /// failure — [`FlowDecision::failure_missed`]); still-connected flows
    /// whose committed rates rode the failed link are re-routed by the
    /// policy machinery at the same batch, on the already-updated graph.
    ///
    /// The run leaves the context's topology exactly as it found it:
    /// whatever net link-state change the stream produced is rolled back
    /// before returning, so follow-up solves (and
    /// [`OnlineEngine::run_vs_offline_with_events`]'s clairvoyant
    /// reference) see the pristine fabric.
    ///
    /// # Errors
    ///
    /// Everything [`OnlineEngine::run`] returns, plus
    /// [`SolveError::InvalidInput`] for an event with a non-finite time or
    /// an out-of-range link id.
    pub fn run_with_events(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
        events: &[TopologyEvent],
    ) -> Result<OnlineOutcome, SolveError> {
        ctx.validate_flow_shape(flows)?;
        for event in events {
            if !event.time().is_finite() {
                return Err(SolveError::InvalidInput {
                    reason: format!("topology event time must be finite, got {event:?}"),
                });
            }
            if event.link().index() >= ctx.graph().link_count() {
                return Err(SolveError::InvalidInput {
                    reason: format!(
                        "topology event names link {} but the network has {} links",
                        event.link(),
                        ctx.graph().link_count()
                    ),
                });
            }
        }
        // Snapshot the entry link state so the net effect of the stream
        // can be rolled back on return.
        let initial_down: BTreeSet<LinkId> = ctx.graph().down_links().collect();
        // The engine owns the scratch's warm flag for the duration of the
        // run (disabling also drops any stale cache from a previous run).
        ctx.set_warm_start(self.warm_start);
        let groups = arrival_events(flows, self.epoch);
        // A policy that keeps requesting timers without progress would spin
        // forever; built-in policies need at most a handful of batches per
        // flow (one completion, one deadline watchdog, one deferral wake).
        let max_batches = groups.len() + events.len() + 16 * flows.len() + 16;
        let mut queue = EventQueue::default();
        for (group, (time, _)) in groups.iter().enumerate() {
            queue.push_arrival(*time, group);
        }
        for (index, event) in events.iter().enumerate() {
            queue.push_topology(event.time(), index);
        }
        let mut state = vec![FlowState::default(); flows.len()];
        // The in-flight ids, mirroring `state[..].in_flight`: retiring,
        // admission and the policy callbacks all walk this set instead of
        // scanning the full instance at every event.
        let mut live: BTreeSet<FlowId> = BTreeSet::new();
        let mut retired: Vec<FlowId> = Vec::new();
        // Per-flow dedup stamps for the rate-plan passes, allocated once:
        // `stamp[f] == generation` marks `f` as seen in the current pass.
        let mut stamp = vec![0u64; flows.len()];
        let mut generation = 0u64;
        // Committed slices per flow, in first-commitment order so a
        // single-event run reproduces the inner schedule's layout exactly.
        let mut commits: Vec<(FlowId, Vec<FlowSchedule>)> = Vec::new();
        let mut commit_index: BTreeMap<FlowId, usize> = BTreeMap::new();
        let mut batches = 0usize;
        let mut resolves = 0usize;
        let mut solve_failures = 0usize;
        let mut topology_applied = 0usize;
        // Admitted flows currently disconnected by link failures.
        let mut stranded: BTreeSet<FlowId> = BTreeSet::new();
        // Links whose committed rates changed since the last re-solve; fed
        // into the warm scratches as the dirty set before the next one.
        let mut dirty: Vec<LinkId> = Vec::new();
        let mut shards = self.shard_state(ctx)?;

        while let Some((now, entries)) = queue.pop_batch() {
            let k = batches;
            batches += 1;
            if batches > max_batches {
                return Err(SolveError::InvalidInput {
                    reason: format!(
                        "online policy {:?} did not converge: over {max_batches} event \
                         batches for {} flows",
                        self.policy.name(),
                        flows.len()
                    ),
                });
            }

            let mut event = OnlineEvent {
                time: now,
                index: k,
                arrivals: Vec::new(),
                completions: Vec::new(),
                timers: Vec::new(),
                topology: Vec::new(),
            };
            for entry in entries {
                match entry.kind {
                    QueuedKind::Topology { index } => event.topology.push(events[index]),
                    QueuedKind::Arrival { group } => {
                        event.arrivals.extend(groups[group].1.iter().copied());
                    }
                    QueuedKind::Completion { flow } => event.completions.push(flow),
                    QueuedKind::SlackTimer { flow } => event.timers.push(flow),
                }
            }
            event.arrivals.sort_unstable();

            // Apply the batch's topology changes before anything routes:
            // the policy, the admission probe and the re-solve below must
            // all see the new link state. Shard contexts mirror the main
            // context's view.
            let mut topology_changed = false;
            for &topo in &event.topology {
                // A severed committed path means the plan the flow was
                // riding is gone at this instant (the commit window ends
                // here); attribute a later miss to the failure.
                if topo.is_down() && ctx.graph().is_link_up(topo.link()) {
                    for &id in &live {
                        if let Some(&slot) = commit_index.get(&id) {
                            let last = commits[slot].1.last().expect("commit lists stay non-empty");
                            if commit_uses_link(last, topo.link()) {
                                state[id].failure_touched = true;
                            }
                        }
                    }
                }
                if ctx.apply_topology_event(topo) {
                    topology_changed = true;
                    topology_applied += 1;
                    if let Some(shard_state) = shards.as_mut() {
                        for sctx in &mut shard_state.contexts {
                            sctx.apply_topology_event(topo);
                        }
                    }
                }
            }
            if topology_changed {
                // Strand the in-flight flows the failures disconnected...
                retired.clear();
                for &id in &live {
                    let flow = flows.flow(id);
                    if ctx.graph().shortest_path(flow.src, flow.dst).is_none() {
                        retired.push(id);
                    }
                }
                for id in retired.drain(..) {
                    live.remove(&id);
                    stranded.insert(id);
                    state[id].in_flight = false;
                    state[id].stranded = true;
                    state[id].failure_touched = true;
                }
                // ... and revive the stranded flows the recoveries
                // reconnected, if they still have time and volume left.
                retired.clear();
                for &id in &stranded {
                    let flow = flows.flow(id);
                    if flow.deadline > now
                        && state[id].delivered < flow.volume * (1.0 - VOLUME_TOL)
                        && ctx.graph().shortest_path(flow.src, flow.dst).is_some()
                    {
                        retired.push(id);
                    }
                }
                for id in retired.drain(..) {
                    stranded.remove(&id);
                    live.insert(id);
                    state[id].in_flight = true;
                    state[id].stranded = false;
                }
            }

            // Retire in-flight flows: fully served, or out of time.
            retired.clear();
            for &id in &live {
                let s = &mut state[id];
                let flow = flows.flow(id);
                if s.delivered >= flow.volume * (1.0 - VOLUME_TOL) {
                    s.in_flight = false;
                    retired.push(id);
                } else if flow.deadline <= now {
                    s.in_flight = false;
                    s.missed = true;
                    retired.push(id);
                }
            }
            for id in retired.drain(..) {
                live.remove(&id);
            }

            // Admission of the new arrivals, in flow-id order.
            for &id in &event.arrivals {
                if ctx.graph().down_link_count() > 0 {
                    let flow = flows.flow(id);
                    if ctx.graph().shortest_path(flow.src, flow.dst).is_none() {
                        // Disconnected by the current failures: under
                        // admit-all the flow is accepted and immediately
                        // stranded (it revives if a recovery reconnects it
                        // in time); reject-infeasible turns it away — a
                        // commodity with no route is never feasible.
                        if matches!(self.admission, AdmissionRule::AdmitAll) {
                            state[id].admitted = true;
                            state[id].stranded = true;
                            state[id].failure_touched = true;
                            stranded.insert(id);
                        }
                        continue;
                    }
                }
                if flows.flow(id).deadline <= now {
                    // Epoch batching deferred the arrival past its own
                    // deadline (only reachable with a window > 0): the flow
                    // is admitted but can no longer be served, so it is a
                    // miss without ever going in flight.
                    state[id].admitted = true;
                    state[id].missed = true;
                    continue;
                }
                let admit = {
                    let world = WorldView {
                        flows,
                        states: &state,
                        live: &live,
                        now,
                    };
                    self.policy
                        .admission(ctx, power, &world, id, &self.admission)?
                };
                if admit {
                    state[id].admitted = true;
                    state[id].in_flight = true;
                    live.insert(id);
                }
            }

            let action = {
                let world = WorldView {
                    flows,
                    states: &state,
                    live: &live,
                    now,
                };
                self.policy.on_event(ctx, power, &event, &world)?
            };

            // Whatever the policy decided supersedes every previously
            // predicted completion and timer.
            queue.invalidate_dynamic();

            match action {
                PolicyAction::Resolve => {
                    let residual = {
                        let world = WorldView {
                            flows,
                            states: &state,
                            live: &live,
                            now,
                        };
                        world.residual(None)
                    };
                    let (residual, map) = match residual {
                        Ok(pair) => pair,
                        Err(SolveError::EmptyFlowSet) => continue, // nothing to re-solve
                        Err(e) => return Err(e),
                    };
                    resolves += 1;
                    // Feed the links whose committed rates changed since
                    // the last solve into every warm scratch as its dirty
                    // set (a no-op with warm starts off).
                    if self.warm_start && !dirty.is_empty() {
                        if let Some(state) = shards.as_mut() {
                            for sctx in &mut state.contexts {
                                sctx.mark_dirty_links(dirty.iter().copied());
                            }
                        }
                        ctx.mark_dirty_links(dirty.drain(..));
                    }
                    dirty.clear();
                    let solved = match shards.as_mut() {
                        Some(state) => self.solve_sharded(state, ctx, &residual, power, k),
                        None => {
                            self.algorithm.set_seed(self.seed.wrapping_add(k as u64));
                            match self.algorithm.solve(ctx, &residual, power) {
                                Ok(solution) => match solution.schedule {
                                    Some(schedule) => Ok(Some(schedule)),
                                    None => Err(no_schedule_error(self.algorithm.name())),
                                },
                                Err(_) => Ok(None),
                            }
                        }
                    };
                    let Some(schedule) = solved? else {
                        solve_failures += 1;
                        continue;
                    };

                    // Commit the slice of the fresh schedule up to the next
                    // event (or all of it after the last event). The
                    // last-window commit clones the inner flow schedules
                    // verbatim, which is what makes a single-event run
                    // bit-identical to the offline solve.
                    let next = queue.peek_valid_time();
                    for fs in schedule.flow_schedules() {
                        let orig = map[fs.flow];
                        let committed = match next {
                            None => {
                                let mut clone = fs.clone();
                                clone.flow = orig;
                                clone
                            }
                            Some(until) => clip_flow_schedule(fs, orig, now, until),
                        };
                        push_commit(
                            committed,
                            &mut state,
                            &mut commits,
                            &mut commit_index,
                            &mut dirty,
                        );
                    }
                }
                PolicyAction::Assign(plan) => {
                    // First pass: predict the decision points the plan
                    // implies (per-flow completion, or a deadline watchdog
                    // when the rate cannot finish in time), so the commit
                    // window below can end at the earliest of them.
                    generation += 1;
                    for a in &plan.rates {
                        if !a.rate.is_finite() || a.rate <= 0.0 {
                            continue;
                        }
                        if a.flow >= flows.len()
                            || !state[a.flow].in_flight
                            || stamp[a.flow] == generation
                        {
                            continue;
                        }
                        stamp[a.flow] = generation;
                        let flow = flows.flow(a.flow);
                        let remaining = (flow.volume - state[a.flow].delivered).max(0.0);
                        if remaining <= 0.0 {
                            continue;
                        }
                        let completion = now + remaining / a.rate;
                        if completion <= flow.deadline {
                            queue.push_completion(completion, a.flow);
                        } else {
                            queue.push_timer(flow.deadline, a.flow);
                        }
                    }
                    for &(time, flow) in &plan.timers {
                        if time.is_finite() && time > now && flow < flows.len() {
                            queue.push_timer(time, flow);
                        }
                    }

                    // Second pass: commit each assigned rate from now until
                    // the next queued event, clamped to the flow's deadline.
                    let next = queue.peek_valid_time();
                    generation += 1;
                    for a in plan.rates {
                        if !a.rate.is_finite() || a.rate <= 0.0 {
                            continue;
                        }
                        if a.flow >= flows.len()
                            || !state[a.flow].in_flight
                            || stamp[a.flow] == generation
                        {
                            continue;
                        }
                        stamp[a.flow] = generation;
                        let flow = flows.flow(a.flow);
                        let until = next.unwrap_or(flow.deadline).min(flow.deadline);
                        if until <= now {
                            continue;
                        }
                        let profile = RateProfile::constant(now, until, a.rate);
                        let committed = FlowSchedule::uniform(a.flow, a.path, profile);
                        push_commit(
                            committed,
                            &mut state,
                            &mut commits,
                            &mut commit_index,
                            &mut dirty,
                        );
                    }
                }
            }
        }

        // Final accounting: an admitted flow that never received its full
        // volume missed its deadline; misses of failure-touched flows are
        // attributed to the failures.
        for (id, s) in state.iter_mut().enumerate() {
            if s.admitted && s.delivered < flows.flow(id).volume * (1.0 - 1e-6) {
                s.missed = true;
            }
        }

        // Roll the context's topology back to its entry state: restore
        // every link the stream left down, re-fail every link it left up.
        let final_down: Vec<LinkId> = ctx.graph().down_links().collect();
        let horizon_end = flows.horizon().1;
        for link in final_down {
            if !initial_down.contains(&link) {
                let undo = TopologyEvent::LinkUp {
                    time: horizon_end,
                    link,
                };
                ctx.apply_topology_event(undo);
                if let Some(shard_state) = shards.as_mut() {
                    for sctx in &mut shard_state.contexts {
                        sctx.apply_topology_event(undo);
                    }
                }
            }
        }
        for &link in &initial_down {
            if ctx.graph().is_link_up(link) {
                let undo = TopologyEvent::LinkDown {
                    time: horizon_end,
                    link,
                };
                ctx.apply_topology_event(undo);
                if let Some(shard_state) = shards.as_mut() {
                    for sctx in &mut shard_state.contexts {
                        sctx.apply_topology_event(undo);
                    }
                }
            }
        }

        let schedule = stitch(commits, flows.horizon());
        let online_energy = schedule.energy(power).total();
        let decisions = state
            .iter()
            .enumerate()
            .map(|(id, s)| FlowDecision {
                flow: id,
                admitted: s.admitted,
                delivered: s.delivered,
                missed: s.missed,
                failure_missed: s.missed && s.failure_touched,
            })
            .collect();
        Ok(OnlineOutcome {
            schedule,
            report: OnlineReport {
                decisions,
                events: batches,
                resolves,
                solve_failures,
                online_energy,
                offline_energy: None,
                topology_events: topology_applied,
            },
            offline: None,
        })
    }

    /// [`OnlineEngine::run`], then solves the full instance with the same
    /// (re-seeded) algorithm and clairvoyant knowledge on the same warm
    /// context, recording the offline energy in the report — the
    /// denominator of [`OnlineReport::competitive_ratio`].
    ///
    /// # Errors
    ///
    /// Propagates errors of the online run and of the offline solve.
    pub fn run_vs_offline(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<OnlineOutcome, SolveError> {
        self.run_vs_offline_with_events(ctx, flows, power, &[])
    }

    /// [`OnlineEngine::run_with_events`], then the clairvoyant offline
    /// solve of [`OnlineEngine::run_vs_offline`]. The offline reference
    /// sees the *pristine* fabric (the online run rolls its topology
    /// changes back before returning), so the competitive ratio isolates
    /// what the failures cost the online loop.
    ///
    /// # Errors
    ///
    /// Propagates errors of the online run and of the offline solve.
    pub fn run_vs_offline_with_events(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
        events: &[TopologyEvent],
    ) -> Result<OnlineOutcome, SolveError> {
        let mut outcome = self.run_with_events(ctx, flows, power, events)?;
        // The clairvoyant bound must not be seeded by the online run's
        // warm cache (disabling drops it; the next `run` re-enables).
        ctx.set_warm_start(false);
        self.algorithm.set_seed(self.seed);
        let offline = self.algorithm.solve(ctx, flows, power)?;
        outcome.report.offline_energy = offline.total_energy();
        outcome.offline = Some(offline);
        Ok(outcome)
    }

    /// Builds the per-bucket contexts and algorithm instances for pod
    /// sharding, or `None` when sharding is off, the algorithm was
    /// instance-injected (no registry name to replicate), or the topology
    /// has fewer than two pods.
    fn shard_state<'net>(
        &self,
        ctx: &SolverContext<'net>,
    ) -> Result<Option<ShardState<'net>>, SolveError> {
        if self.shards == ShardMode::Off {
            return Ok(None);
        }
        let Some((name, registry)) = &self.shard_factory else {
            return Ok(None);
        };
        let pods = ctx.graph().pod_count();
        if pods < 2 {
            return Ok(None);
        }
        // One bucket per pod plus the cross-pod bucket.
        let buckets = pods + 1;
        let mut contexts = Vec::with_capacity(buckets);
        let mut algorithms = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            let mut shard_ctx = SolverContext::from_network(ctx.network())?;
            shard_ctx.set_warm_start(self.warm_start);
            contexts.push(shard_ctx);
            algorithms.push(registry.create(name)?);
        }
        Ok(Some(ShardState {
            contexts,
            algorithms,
            mode: self.shards,
        }))
    }

    /// Solves one residual instance sharded by pod: partitions the
    /// commodities into per-pod buckets (source and destination in the
    /// same pod) plus one cross-pod bucket, solves the occupied buckets on
    /// scoped worker threads — each bucket on its own warm context and
    /// algorithm instance, seeded by `(seed, event index, bucket)` only —
    /// merges the bucket schedules, and runs one bounded fix-up pass: the
    /// flows touching any link whose merged load exceeds its capacity are
    /// jointly re-solved on the main context.
    ///
    /// Returns `Ok(None)` when any bucket (or the fix-up) solve fails —
    /// the caller counts it as one solve failure, exactly like an
    /// unsharded failure.
    fn solve_sharded(
        &mut self,
        state: &mut ShardState<'_>,
        ctx: &mut SolverContext<'_>,
        residual: &FlowSet,
        power: &PowerFunction,
        k: usize,
    ) -> Result<Option<Schedule>, SolveError> {
        let graph = ctx.graph();
        let pods = graph.pod_count();
        let buckets = pods + 1;
        let mut members: Vec<Vec<Flow>> = vec![Vec::new(); buckets];
        // Bucket-local id -> residual id, per bucket.
        let mut owners: Vec<Vec<FlowId>> = vec![Vec::new(); buckets];
        for flow in residual.iter() {
            let bucket = match (graph.pod_of(flow.src), graph.pod_of(flow.dst)) {
                (Some(a), Some(b)) if a == b => a,
                _ => pods,
            };
            let local = members[bucket].len();
            members[bucket].push(
                Flow::new(
                    local,
                    flow.src,
                    flow.dst,
                    flow.release,
                    flow.deadline,
                    flow.volume,
                )
                .expect("residual flows stay valid under relabelling"),
            );
            owners[bucket].push(flow.id);
        }

        // One job per occupied bucket, in bucket order. The per-bucket
        // seed is a function of (engine seed, event index, bucket) only,
        // never of the shard width.
        let mut jobs: Vec<ShardJob<'_, '_>> = Vec::new();
        for (bucket, (shard_ctx, algorithm)) in state
            .contexts
            .iter_mut()
            .zip(state.algorithms.iter_mut())
            .enumerate()
        {
            if members[bucket].is_empty() {
                continue;
            }
            let set = FlowSet::from_flows(std::mem::take(&mut members[bucket]))
                .map_err(SolveError::from)?;
            let seed = self
                .seed
                .wrapping_add(k as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(bucket as u64 + 1);
            jobs.push(ShardJob {
                ctx: shard_ctx,
                algorithm,
                set,
                seed,
                bucket,
                result: None,
            });
        }

        let width = state.mode.width(jobs.len());
        if width <= 1 {
            for job in &mut jobs {
                job.run(power);
            }
        } else {
            let chunk = jobs.len().div_ceil(width);
            std::thread::scope(|scope| {
                for chunk_jobs in jobs.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for job in chunk_jobs {
                            job.run(power);
                        }
                    });
                }
            });
        }

        // Merge, relabelling bucket-local ids back to residual ids.
        let mut flow_schedules: Vec<FlowSchedule> = Vec::new();
        for job in jobs {
            match job.result.expect("every job ran") {
                Ok(solution) => {
                    let Some(schedule) = solution.schedule else {
                        return Err(no_schedule_error(job.algorithm.name()));
                    };
                    for fs in schedule.flow_schedules() {
                        let mut fs = fs.clone();
                        fs.flow = owners[job.bucket][fs.flow];
                        flow_schedules.push(fs);
                    }
                }
                Err(_) => return Ok(None),
            }
        }
        flow_schedules.sort_by_key(|fs| fs.flow);

        // Bounded fix-up: buckets solve independently, so their schedules
        // can jointly overload a shared link (core links, and pod links
        // shared with the cross-pod bucket). Re-solve the flows touching
        // any overloaded link together on the main context — one pass.
        let overloaded = overloaded_links(&flow_schedules, graph);
        if !overloaded.is_empty() {
            let (touching, keeping): (Vec<FlowSchedule>, Vec<FlowSchedule>) = flow_schedules
                .into_iter()
                .partition(|fs| touches_any(fs, &overloaded));
            let mut fix = Vec::with_capacity(touching.len());
            let mut fix_owner = Vec::with_capacity(touching.len());
            for fs in &touching {
                let flow = residual.flow(fs.flow);
                fix.push(
                    Flow::new(
                        fix.len(),
                        flow.src,
                        flow.dst,
                        flow.release,
                        flow.deadline,
                        flow.volume,
                    )
                    .expect("residual flows stay valid under relabelling"),
                );
                fix_owner.push(fs.flow);
            }
            let fix_set = FlowSet::from_flows(fix).map_err(SolveError::from)?;
            self.algorithm.set_seed(self.seed.wrapping_add(k as u64));
            let solution = match self.algorithm.solve(ctx, &fix_set, power) {
                Ok(solution) => solution,
                Err(_) => return Ok(None),
            };
            let Some(schedule) = solution.schedule else {
                return Err(no_schedule_error(self.algorithm.name()));
            };
            flow_schedules = keeping;
            for fs in schedule.flow_schedules() {
                let mut fs = fs.clone();
                fs.flow = fix_owner[fs.flow];
                flow_schedules.push(fs);
            }
            flow_schedules.sort_by_key(|fs| fs.flow);
        }

        Ok(Some(Schedule::new(flow_schedules, residual.horizon())))
    }
}

/// The persistent per-bucket solver state of one sharded run: one warm
/// context and one algorithm instance per bucket (pods, then the cross-pod
/// bucket last), reused across every event of the run.
struct ShardState<'net> {
    contexts: Vec<SolverContext<'net>>,
    algorithms: Vec<Box<dyn Algorithm>>,
    mode: ShardMode,
}

/// One bucket solve, dispatched to a scoped worker thread.
struct ShardJob<'x, 'net> {
    ctx: &'x mut SolverContext<'net>,
    algorithm: &'x mut Box<dyn Algorithm>,
    set: FlowSet,
    seed: u64,
    bucket: usize,
    result: Option<Result<Solution, SolveError>>,
}

impl ShardJob<'_, '_> {
    fn run(&mut self, power: &PowerFunction) {
        self.algorithm.set_seed(self.seed);
        self.result = Some(self.algorithm.solve(self.ctx, &self.set, power));
    }
}

/// The typed error for a bound-only backend that produces no schedule to
/// commit.
fn no_schedule_error(name: &str) -> SolveError {
    SolveError::InvalidInput {
        reason: format!("online engine wraps {name:?}, which produces no schedule to commit"),
    }
}

/// Relative slack tolerated when checking merged shard loads against link
/// capacities: the fractional relaxation enforces capacities through a
/// penalty, so even a single-bucket solution can overshoot by a hair.
const SHARD_CAP_TOL: f64 = 1e-3;

/// The links whose merged load across `flow_schedules` exceeds capacity.
fn overloaded_links(
    flow_schedules: &[FlowSchedule],
    graph: &dcn_topology::GraphCsr,
) -> BTreeSet<LinkId> {
    let mut loads: BTreeMap<LinkId, RateProfile> = BTreeMap::new();
    for fs in flow_schedules {
        if fs.link_profiles.is_empty() {
            for &link in fs.path.links() {
                loads.entry(link).or_default().merge(&fs.profile);
            }
        } else {
            for (&link, profile) in &fs.link_profiles {
                loads.entry(link).or_default().merge(profile);
            }
        }
    }
    loads
        .into_iter()
        .filter(|(link, profile)| {
            profile.max_rate() > graph.capacity(*link) * (1.0 + SHARD_CAP_TOL)
        })
        .map(|(link, _)| link)
        .collect()
}

/// Whether one committed flow schedule transmits on `link`.
fn commit_uses_link(fs: &FlowSchedule, link: LinkId) -> bool {
    if fs.link_profiles.is_empty() {
        fs.path.links().contains(&link)
    } else {
        fs.link_profiles.contains_key(&link)
    }
}

/// Whether one flow schedule transmits on any of `links`.
fn touches_any(fs: &FlowSchedule, links: &BTreeSet<LinkId>) -> bool {
    if fs.link_profiles.is_empty() {
        fs.path.links().iter().any(|link| links.contains(link))
    } else {
        fs.link_profiles.keys().any(|link| links.contains(link))
    }
}

/// Appends one committed slice to the per-flow commit lists, keeping the
/// delivered-volume accounting and the first-commitment ordering, and
/// records the links the slice transmits on in the warm-start dirty set.
fn push_commit(
    committed: FlowSchedule,
    state: &mut [FlowState],
    commits: &mut Vec<(FlowId, Vec<FlowSchedule>)>,
    commit_index: &mut BTreeMap<FlowId, usize>,
    dirty: &mut Vec<LinkId>,
) {
    if committed.profile.is_empty() && committed.link_profiles.is_empty() {
        return;
    }
    if committed.link_profiles.is_empty() {
        dirty.extend_from_slice(committed.path.links());
    } else {
        dirty.extend(committed.link_profiles.keys().copied());
    }
    let orig = committed.flow;
    state[orig].delivered += committed.profile.volume();
    match commit_index.get(&orig) {
        Some(&slot) => commits[slot].1.push(committed),
        None => {
            commit_index.insert(orig, commits.len());
            commits.push((orig, vec![committed]));
        }
    }
}

/// Groups the flows of the instance by release time: one `(time, flow
/// ids)` event per distinct release, in time order (ids ascending within
/// an event). With `epoch > 0` the release times are first quantised *up*
/// to the next multiple of the window, so arrivals within one window share
/// an event (with `epoch == 0` the quantisation is the identity).
fn arrival_events(flows: &FlowSet, epoch: f64) -> Vec<(f64, Vec<FlowId>)> {
    let quantise = |t: f64| {
        if epoch > 0.0 {
            (t / epoch).ceil() * epoch
        } else {
            t
        }
    };
    let mut order: Vec<FlowId> = (0..flows.len()).collect();
    order.sort_by(|&a, &b| {
        quantise(flows.flow(a).release)
            .partial_cmp(&quantise(flows.flow(b).release))
            .expect("flow times are finite")
            .then(a.cmp(&b))
    });
    let mut events: Vec<(f64, Vec<FlowId>)> = Vec::new();
    for id in order {
        let release = quantise(flows.flow(id).release);
        match events.last_mut() {
            Some((t, ids)) if *t == release => ids.push(id),
            _ => events.push((release, vec![id])),
        }
    }
    events
}

/// Restricts one inner flow schedule to the commit window `[from, to)`,
/// relabelling it with the original flow id. Links whose restricted
/// profile is empty are dropped.
fn clip_flow_schedule(fs: &FlowSchedule, orig: FlowId, from: f64, to: f64) -> FlowSchedule {
    let link_profiles: BTreeMap<LinkId, RateProfile> = fs
        .link_profiles
        .iter()
        .map(|(&link, profile)| (link, profile.restricted(from, to)))
        .filter(|(_, profile)| profile.is_active())
        .collect();
    FlowSchedule::per_link(
        orig,
        fs.path.clone(),
        fs.profile.restricted(from, to),
        link_profiles,
    )
}

/// Merges each flow's committed slices into one [`FlowSchedule`] and
/// assembles the final schedule over `horizon`. A flow served by a single
/// commit keeps that commit verbatim; a multi-commit flow keeps the path
/// of its *last* decision (the profiles carry the links actually used in
/// every window, so energy and simulation see the true loads even when the
/// routing changed between decisions).
fn stitch(commits: Vec<(FlowId, Vec<FlowSchedule>)>, horizon: (f64, f64)) -> Schedule {
    let mut flow_schedules = Vec::with_capacity(commits.len());
    for (flow, mut parts) in commits {
        if parts.len() == 1 {
            flow_schedules.push(parts.pop().expect("one part"));
            continue;
        }
        let path = parts.last().expect("non-empty parts").path.clone();
        let mut profile = RateProfile::new();
        let mut link_profiles: BTreeMap<LinkId, RateProfile> = BTreeMap::new();
        for part in &parts {
            profile.merge(&part.profile);
            for (&link, slice) in &part.link_profiles {
                link_profiles.entry(link).or_default().merge(slice);
            }
        }
        flow_schedules.push(FlowSchedule::per_link(flow, path, profile, link_profiles));
    }
    Schedule::new(flow_schedules, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Dcfsr;
    use crate::online::policies::ResolvePolicy;
    use dcn_flow::Flow;
    use dcn_topology::{builders, GraphCsr};

    fn x2(capacity: f64) -> PowerFunction {
        PowerFunction::speed_scaling_only(1.0, 2.0, capacity)
    }

    fn resolve_engine(algorithm: &str, admission: AdmissionRule) -> OnlineEngine {
        OnlineEngine::builder()
            .algorithm(algorithm)
            .admission(admission)
            .build()
            .unwrap()
    }

    #[test]
    fn arrival_events_group_equal_releases() {
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([
            (a, c, 2.0, 6.0, 1.0),
            (a, c, 0.0, 4.0, 1.0),
            (a, c, 2.0, 8.0, 1.0),
        ])
        .unwrap();
        let events = arrival_events(&flows, 0.0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], (0.0, vec![1]));
        assert_eq!(events[1], (2.0, vec![0, 2]));
    }

    #[test]
    fn epoch_batching_quantises_releases_up_and_merges_windows() {
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([
            (a, c, 0.3, 6.0, 1.0),
            (a, c, 0.0, 4.0, 1.0),
            (a, c, 0.9, 8.0, 1.0),
            (a, c, 1.2, 9.0, 1.0),
        ])
        .unwrap();
        // Window 1.0: releases 0.3 and 0.9 both quantise to 1.0; 0.0 stays
        // at 0.0 (already on the grid); 1.2 lands on 2.0.
        let events = arrival_events(&flows, 1.0);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], (0.0, vec![1]));
        assert_eq!(events[1], (1.0, vec![0, 2]));
        assert_eq!(events[2], (2.0, vec![3]));
    }

    #[test]
    fn builder_defaults_and_knobs_round_trip() {
        let engine = OnlineEngine::builder().build().unwrap();
        assert_eq!(engine.algorithm().name(), "dcfsr");
        assert_eq!(engine.policy().name(), "resolve");
        assert_eq!(engine.admission().name(), "admit-all");
        assert!(!engine.warm_start());
        assert_eq!(engine.epoch(), 0.0);
        assert_eq!(engine.shards(), ShardMode::Off);

        let engine = OnlineEngine::builder()
            .algorithm("sp-mcf")
            .policy("hybrid")
            .admission(AdmissionRule::reject_infeasible(Default::default()))
            .warm_start(true)
            .epoch(0.05)
            .shards(ShardMode::Fixed(4))
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(engine.algorithm().name(), "sp-mcf");
        assert_eq!(engine.policy().name(), "hybrid");
        assert_eq!(engine.admission().name(), "reject-infeasible");
        assert!(engine.warm_start());
        assert_eq!(engine.epoch(), 0.05);
        assert_eq!(engine.shards(), ShardMode::Fixed(4));
    }

    #[test]
    fn builder_rejects_unknown_names_and_bad_epochs() {
        assert!(matches!(
            OnlineEngine::builder().algorithm("no-such").build(),
            Err(SolveError::UnknownAlgorithm { .. })
        ));
        assert!(matches!(
            OnlineEngine::builder().policy("no-such").build(),
            Err(SolveError::UnknownPolicy { .. })
        ));
        assert!(matches!(
            OnlineEngine::builder().epoch(-1.0).build(),
            Err(SolveError::InvalidInput { .. })
        ));
        assert!(matches!(
            OnlineEngine::builder().epoch(f64::NAN).build(),
            Err(SolveError::InvalidInput { .. })
        ));
    }

    #[test]
    fn epoch_batching_reduces_events_and_flags_window_crossed_deadlines() {
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([
            (a, c, 0.1, 10.0, 1.0),
            (a, c, 0.2, 12.0, 1.0),
            // Deadline 0.8 falls inside the window its arrival is deferred
            // across: admitted, missed, never in flight.
            (a, c, 0.3, 0.8, 1.0),
        ])
        .unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut engine = OnlineEngine::builder()
            .algorithm("sp-mcf")
            .epoch(1.0)
            .build()
            .unwrap();
        let outcome = engine.run(&mut ctx, &flows, &power).unwrap();
        // All three arrivals collapse into the single t = 1.0 batch.
        assert_eq!(outcome.report.events, 1);
        assert_eq!(outcome.report.resolves, 1);
        assert_eq!(outcome.report.admitted(), 3);
        assert_eq!(outcome.report.missed(), 1);
        assert!(outcome.report.decisions[2].missed);
        assert_eq!(outcome.report.decisions[2].delivered, 0.0);
        // The surviving flows still deliver fully.
        for d in &outcome.report.decisions[..2] {
            assert!((d.delivered - 1.0).abs() <= 1e-6);
        }
    }

    #[test]
    fn sharded_resolves_match_the_partition_at_any_width() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = dcn_flow::workload::UniformWorkload::paper_defaults(12, 5)
            .generate(topo.hosts())
            .unwrap();
        let run = |mode: ShardMode| {
            let mut ctx = SolverContext::from_network(&topo.network).unwrap();
            let mut engine = OnlineEngine::builder()
                .algorithm("sp-mcf")
                .warm_start(true)
                .shards(mode)
                .seed(5)
                .build()
                .unwrap();
            engine.run(&mut ctx, &flows, &power).unwrap()
        };
        let one = run(ShardMode::Fixed(1));
        let two = run(ShardMode::Fixed(2));
        let four = run(ShardMode::Fixed(4));
        // The shard width is thread width only: identical schedules,
        // decisions and energy, bit for bit.
        assert_eq!(one.schedule, two.schedule);
        assert_eq!(one.schedule, four.schedule);
        assert_eq!(one.report.decisions, two.report.decisions);
        assert_eq!(one.report.decisions, four.report.decisions);
        assert_eq!(one.report.online_energy, four.report.online_energy);
        assert_eq!(one.report.missed(), 0);
    }

    #[test]
    fn sharding_without_pod_labels_falls_back_to_whole_solves() {
        // line(3) carries no pod labels, so sharding must not change
        // anything relative to the unsharded engine.
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([(a, c, 0.0, 8.0, 8.0), (a, c, 4.0, 12.0, 8.0)]).unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let plain = resolve_engine("sp-mcf", AdmissionRule::AdmitAll)
            .run(&mut ctx, &flows, &power)
            .unwrap();
        let mut sharded_engine = OnlineEngine::builder()
            .algorithm("sp-mcf")
            .shards(ShardMode::Auto)
            .build()
            .unwrap();
        let sharded = sharded_engine.run(&mut ctx, &flows, &power).unwrap();
        assert_eq!(plain.schedule, sharded.schedule);
        assert_eq!(plain.report.online_energy, sharded.report.online_energy);
    }

    #[test]
    fn queue_batches_are_deterministic_and_generation_scoped() {
        let mut queue = EventQueue::default();
        queue.push_arrival(0.0, 0);
        queue.push_arrival(4.0, 1);
        queue.push_completion(2.0, 5);
        queue.push_timer(2.0, 3);
        queue.push_completion(2.0, 1);

        let (t0, batch) = queue.pop_batch().unwrap();
        assert_eq!(t0, 0.0);
        assert_eq!(batch.len(), 1);
        // Same instant: completions (ids ascending) before timers.
        let (t1, batch) = queue.pop_batch().unwrap();
        assert_eq!(t1, 2.0);
        let kinds: Vec<QueuedKind> = batch.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                QueuedKind::Completion { flow: 1 },
                QueuedKind::Completion { flow: 5 },
                QueuedKind::SlackTimer { flow: 3 },
            ]
        );

        // Invalidation makes queued dynamic events vanish, arrivals stay.
        queue.push_completion(3.0, 2);
        queue.invalidate_dynamic();
        queue.push_timer(3.5, 7);
        assert_eq!(queue.peek_valid_time(), Some(3.5));
        let (t2, batch) = queue.pop_batch().unwrap();
        assert_eq!(t2, 3.5);
        assert_eq!(batch.len(), 1);
        let (t3, _) = queue.pop_batch().unwrap();
        assert_eq!(t3, 4.0);
        assert!(queue.pop_batch().is_none());
    }

    #[test]
    fn empty_instance_is_a_typed_error_not_a_panic() {
        let topo = builders::line(3);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let empty = FlowSet::from_flows(vec![]).unwrap();
        let err = resolve_engine("dcfsr", AdmissionRule::AdmitAll)
            .run(&mut ctx, &empty, &x2(10.0))
            .unwrap_err();
        assert_eq!(err, SolveError::EmptyFlowSet);
        // The feasibility primitive reports the same typed error on an
        // empty residual set.
        assert_eq!(
            fractionally_feasible(&mut ctx, &empty, &x2(10.0), &Default::default(), 1e-3)
                .unwrap_err(),
            SolveError::EmptyFlowSet
        );
    }

    #[test]
    fn bound_only_algorithms_are_rejected_with_a_typed_error() {
        let topo = builders::line(3);
        let flows =
            FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 8.0)]).unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let err = resolve_engine("lb", AdmissionRule::AdmitAll)
            .run(&mut ctx, &flows, &x2(10.0))
            .unwrap_err();
        assert!(matches!(err, SolveError::InvalidInput { .. }));
        assert!(err.to_string().contains("lb"));
    }

    #[test]
    fn single_event_run_commits_the_offline_schedule_verbatim() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = dcn_flow::workload::UniformWorkload::paper_defaults(10, 11)
            .generate(topo.hosts())
            .unwrap();
        // Re-release everything at t = 0: one arrival event.
        let zeroed = FlowSet::from_flows(
            flows
                .iter()
                .map(|f| Flow::new(f.id, f.src, f.dst, 0.0, f.deadline, f.volume).unwrap())
                .collect(),
        )
        .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut engine = resolve_engine("dcfsr", AdmissionRule::AdmitAll);
        engine.set_seed(11);
        let outcome = engine.run_vs_offline(&mut ctx, &zeroed, &power).unwrap();
        assert_eq!(outcome.report.events, 1);
        assert_eq!(outcome.report.resolves, 1);
        assert_eq!(outcome.report.solve_failures, 0);

        let mut offline = Dcfsr::default();
        offline.set_seed(11);
        let clairvoyant = offline.solve(&mut ctx, &zeroed, &power).unwrap();
        assert_eq!(&outcome.schedule, clairvoyant.schedule.as_ref().unwrap());
        assert_eq!(
            outcome.report.online_energy,
            clairvoyant.total_energy().unwrap()
        );
        assert_eq!(outcome.report.competitive_ratio(), Some(1.0));
    }

    #[test]
    fn staggered_arrivals_deliver_every_admitted_flow() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = dcn_flow::workload::UniformWorkload::paper_defaults(14, 4)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut engine = resolve_engine("dcfsr", AdmissionRule::AdmitAll);
        engine.set_seed(4);
        let outcome = engine.run(&mut ctx, &flows, &power).unwrap();
        assert_eq!(outcome.report.events, 14);
        assert_eq!(outcome.report.admitted(), 14);
        assert_eq!(outcome.report.solve_failures, 0);
        assert_eq!(outcome.report.missed(), 0);
        for d in &outcome.report.decisions {
            let flow = flows.flow(d.flow);
            assert!(
                (d.delivered - flow.volume).abs() <= 1e-6 * flow.volume,
                "flow {}: delivered {} of {}",
                d.flow,
                d.delivered,
                flow.volume
            );
        }
        // All activity stays inside each flow's span, whatever window it
        // was committed in.
        for fs in outcome.schedule.flow_schedules() {
            let flow = flows.flow(fs.flow);
            let (start, end) = fs.activity_span().expect("admitted flows transmit");
            assert!(start >= flow.release - 1e-9 && end <= flow.deadline + 1e-9);
        }
        // The reported energy is the stitched schedule's energy.
        assert_eq!(
            outcome.report.online_energy,
            outcome.schedule.energy(&power).total()
        );
    }

    #[test]
    fn reject_infeasible_rejects_only_the_impossible_flow() {
        // Capacity 10: a volume-100 flow over a unit span needs rate 100.
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([
            (a, c, 0.0, 10.0, 8.0),  // easy
            (a, c, 1.0, 2.0, 100.0), // impossible even alone
            (a, c, 2.0, 12.0, 8.0),  // easy again
        ])
        .unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut engine = resolve_engine(
            "sp-mcf",
            AdmissionRule::reject_infeasible(Default::default()),
        );
        engine.set_seed(1);
        let outcome = engine.run(&mut ctx, &flows, &power).unwrap();
        assert_eq!(outcome.report.admitted(), 2);
        assert_eq!(outcome.report.rejected(), 1);
        assert!(!outcome.report.decisions[1].admitted);
        assert_eq!(outcome.report.missed(), 0);
        assert_eq!(outcome.report.solve_failures, 0);
        // Rejected flows never transmit.
        assert!(outcome.schedule.flow_schedule(1).is_none());
    }

    #[test]
    fn admit_all_solve_failures_are_counted_and_surface_as_misses() {
        /// An algorithm whose every solve fails — the deterministic stand-in
        /// for an infeasible residual under `AdmitAll` overload.
        #[derive(Debug)]
        struct NeverSolves;
        impl Algorithm for NeverSolves {
            fn name(&self) -> &str {
                "never"
            }
            fn solve(
                &mut self,
                _ctx: &mut SolverContext<'_>,
                _flows: &FlowSet,
                _power: &PowerFunction,
            ) -> Result<Solution, SolveError> {
                Err(SolveError::Infeasible { link: LinkId(0) })
            }
        }

        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([(a, c, 0.0, 4.0, 8.0), (a, c, 1.0, 5.0, 8.0)]).unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let outcome = OnlineEngine::builder()
            .algorithm_instance(Box::new(NeverSolves))
            .policy_instance(Box::new(ResolvePolicy))
            .build()
            .unwrap()
            .run(&mut ctx, &flows, &power)
            .unwrap();
        // Every re-solve failed; the loop carried on without panicking and
        // every admitted flow is recorded as missed with zero delivery.
        assert_eq!(outcome.report.events, 2);
        assert_eq!(outcome.report.resolves, 2);
        assert_eq!(outcome.report.solve_failures, 2);
        assert_eq!(outcome.report.admitted(), 2);
        assert_eq!(outcome.report.missed(), 2);
        assert!(outcome.schedule.is_empty());
        assert_eq!(outcome.report.online_energy, 0.0);
    }

    #[test]
    fn multi_window_commits_stitch_into_the_full_delivery() {
        // Two staggered flows on a line force a clipped first window.
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([(a, c, 0.0, 8.0, 8.0), (a, c, 4.0, 12.0, 8.0)]).unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let outcome = resolve_engine("sp-mcf", AdmissionRule::AdmitAll)
            .run(&mut ctx, &flows, &power)
            .unwrap();
        assert_eq!(outcome.report.events, 2);
        assert_eq!(outcome.report.resolves, 2);
        assert_eq!(outcome.report.missed(), 0);
        // Flow 0 is committed across both windows and still delivers fully
        // within its span; the stitched schedule verifies end to end
        // (sp-mcf keeps the single line path, so the per-link volume check
        // applies even across re-solves).
        ctx.verify(&outcome.schedule, &flows, &power).unwrap();
    }

    #[test]
    fn admission_rule_names_are_stable() {
        assert_eq!(AdmissionRule::AdmitAll.name(), "admit-all");
        assert_eq!(
            AdmissionRule::reject_infeasible(Default::default()).name(),
            "reject-infeasible"
        );
    }

    /// Total volume transmitted on `link` inside `[from, to]` across the
    /// whole stitched schedule.
    fn link_volume_between(schedule: &Schedule, link: LinkId, from: f64, to: f64) -> f64 {
        schedule
            .flow_schedules()
            .iter()
            .map(|fs| {
                if fs.link_profiles.is_empty() {
                    if fs.path.links().contains(&link) {
                        fs.profile.volume_between(from, to)
                    } else {
                        0.0
                    }
                } else {
                    fs.link_profiles
                        .get(&link)
                        .map_or(0.0, |p| p.volume_between(from, to))
                }
            })
            .sum()
    }

    #[test]
    fn failure_and_recovery_reroute_without_transmitting_on_the_down_link() {
        // One flow on a line: the failure severs its only route, the
        // recovery brings it back with time to spare.
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([(a, c, 0.0, 10.0, 4.0)]).unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let link = ctx.graph().shortest_path(a, c).unwrap().links()[0];
        let events = [
            TopologyEvent::LinkDown { time: 1.0, link },
            TopologyEvent::LinkUp { time: 2.0, link },
        ];
        let mut engine = resolve_engine("sp-mcf", AdmissionRule::AdmitAll);
        let outcome = engine
            .run_with_events(&mut ctx, &flows, &power, &events)
            .unwrap();
        assert_eq!(outcome.report.topology_events, 2);
        assert_eq!(outcome.report.missed(), 0, "recovery leaves time to finish");
        assert_eq!(outcome.report.failure_missed(), 0);
        let delivered = outcome.report.decisions[0].delivered;
        assert!(
            (delivered - 4.0).abs() <= 1e-6 * 4.0,
            "delivered {delivered}"
        );
        // Physics: nothing rides the failed link while it is down.
        assert_eq!(
            link_volume_between(&outcome.schedule, link, 1.0, 2.0),
            0.0,
            "no transmission on a down link"
        );
        assert!(
            link_volume_between(&outcome.schedule, link, 2.0, 10.0) > 0.0,
            "the flow resumes after the recovery"
        );
        // The run rolled its topology changes back.
        assert_eq!(ctx.graph().down_link_count(), 0);
        assert_eq!(*ctx.graph(), GraphCsr::from_network(&topo.network));
    }

    #[test]
    fn permanent_failure_attributes_the_miss() {
        // Volume 20 at capacity 10 needs 2 time units; the failure at
        // t = 1 with no recovery leaves the flow stranded and short.
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let flows = FlowSet::from_tuples([(a, c, 0.0, 4.0, 20.0)]).unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let link = ctx.graph().shortest_path(a, c).unwrap().links()[0];
        let events = [TopologyEvent::LinkDown { time: 1.0, link }];
        let mut engine = resolve_engine("sp-mcf", AdmissionRule::AdmitAll);
        let outcome = engine
            .run_with_events(&mut ctx, &flows, &power, &events)
            .unwrap();
        assert_eq!(outcome.report.topology_events, 1);
        assert_eq!(outcome.report.missed(), 1);
        assert_eq!(
            outcome.report.failure_missed(),
            1,
            "the miss is attributed to the failure"
        );
        assert!(outcome.report.decisions[0].failure_missed);
        assert_eq!(
            link_volume_between(&outcome.schedule, link, 1.0, 4.0),
            0.0,
            "nothing rides the link after it fails"
        );
        // Even though the stream never recovered the link, the run rolls
        // the context back to the pristine fabric.
        assert_eq!(ctx.graph().down_link_count(), 0);
    }

    #[test]
    fn arrivals_while_disconnected_strand_under_admit_all_and_reject_otherwise() {
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        // Flow 1 arrives inside the outage window.
        let flows = FlowSet::from_tuples([(a, c, 0.0, 10.0, 2.0), (a, c, 1.5, 10.0, 2.0)]).unwrap();
        let power = x2(10.0);
        let link = {
            let ctx = SolverContext::from_network(&topo.network).unwrap();
            ctx.graph().shortest_path(a, c).unwrap().links()[0]
        };
        let events = [
            TopologyEvent::LinkDown { time: 1.0, link },
            TopologyEvent::LinkUp { time: 3.0, link },
        ];

        // Admit-all: the disconnected arrival is admitted, stranded, and
        // revived by the recovery in time to finish.
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut engine = resolve_engine("sp-mcf", AdmissionRule::AdmitAll);
        let outcome = engine
            .run_with_events(&mut ctx, &flows, &power, &events)
            .unwrap();
        assert_eq!(outcome.report.admitted(), 2);
        assert_eq!(outcome.report.missed(), 0);

        // Reject-infeasible: a commodity with no route is never feasible.
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut engine = resolve_engine(
            "sp-mcf",
            AdmissionRule::reject_infeasible(Default::default()),
        );
        let outcome = engine
            .run_with_events(&mut ctx, &flows, &power, &events)
            .unwrap();
        assert!(!outcome.report.decisions[1].admitted);
        assert_eq!(outcome.report.rejected(), 1);
    }

    #[test]
    fn event_validation_rejects_bad_times_and_links() {
        let topo = builders::line(3);
        let flows =
            FlowSet::from_tuples([(topo.hosts()[0], topo.hosts()[2], 0.0, 4.0, 1.0)]).unwrap();
        let power = x2(10.0);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut engine = resolve_engine("sp-mcf", AdmissionRule::AdmitAll);
        let bad_time = [TopologyEvent::LinkDown {
            time: f64::NAN,
            link: LinkId(0),
        }];
        assert!(matches!(
            engine.run_with_events(&mut ctx, &flows, &power, &bad_time),
            Err(SolveError::InvalidInput { .. })
        ));
        let bad_link = [TopologyEvent::LinkDown {
            time: 1.0,
            link: LinkId(ctx.graph().link_count()),
        }];
        assert!(matches!(
            engine.run_with_events(&mut ctx, &flows, &power, &bad_link),
            Err(SolveError::InvalidInput { .. })
        ));
    }

    #[test]
    fn runs_without_events_are_bit_identical_to_plain_runs() {
        let topo = builders::fat_tree(4);
        let power = x2(10.0);
        let flows = dcn_flow::workload::UniformWorkload::paper_defaults(10, 4)
            .generate(topo.hosts())
            .unwrap();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut engine = resolve_engine("dcfsr", AdmissionRule::AdmitAll);
        engine.set_seed(9);
        let plain = engine.run(&mut ctx, &flows, &power).unwrap();
        engine.set_seed(9);
        let with_events = engine
            .run_with_events(&mut ctx, &flows, &power, &[])
            .unwrap();
        assert_eq!(plain.report.online_energy, with_events.report.online_energy);
        assert_eq!(plain.report.events, with_events.report.events);
        assert_eq!(plain.report.decisions, with_events.report.decisions);
    }
}
