//! A snapshotable ledger of in-flight flows for long-lived serving loops.
//!
//! [`super::engine::OnlineEngine`] keeps its per-flow bookkeeping private
//! because a batch run owns the whole timeline: it sees every arrival up
//! front and retires state as the event queue drains. A *serving* loop
//! (the `dcn-server` daemon) has the opposite shape — flows arrive one
//! request at a time over a wire protocol, the process may be restarted
//! mid-run, and whatever state decides future admissions must be
//! externalizable. [`InFlightLedger`] is that state, factored out of the
//! engine's `FlowState` + live-set bookkeeping:
//!
//! * one [`LedgerEntry`] per admitted flow (original request, volume
//!   delivered so far, retired/missed flags);
//! * [`InFlightLedger::retire`] mirrors the engine's retirement rule —
//!   a live flow leaves the set when it is delivered to within the
//!   volume tolerance or its deadline has passed (the latter marks it
//!   missed);
//! * [`InFlightLedger::residual_set`] builds the dense residual
//!   [`FlowSet`] (remaining volume, clamped release) that admission
//!   checks and re-solves operate on, exactly like the engine's world
//!   view does via [`super::residual_flow`];
//! * [`InFlightLedger::entries`] iterates every entry in flow-id order
//!   and [`InFlightLedger::restore`] rebuilds the ledger from such a
//!   dump, so a snapshot/restore cycle is a plain round-trip.
//!
//! The ledger never touches wall-clock time: `now` is always supplied by
//! the caller, so decisions stay a pure function of the request stream.

use std::collections::{BTreeMap, BTreeSet};

use dcn_flow::{Flow, FlowId, FlowSet};

use crate::error::SolveError;

/// Relative volume tolerance under which a flow counts as fully
/// delivered (mirrors the engine's internal tolerance).
const VOLUME_TOL: f64 = 1e-9;

/// One admitted flow tracked by an [`InFlightLedger`].
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// The admitted flow, exactly as requested (full volume).
    pub flow: Flow,
    /// Volume delivered so far, in `[0, flow.volume]`.
    pub delivered: f64,
    /// Whether the flow has left the live set.
    pub retired: bool,
    /// Whether the flow retired with undelivered volume at its deadline.
    pub missed: bool,
}

impl LedgerEntry {
    /// Volume still to deliver (never negative).
    pub fn remaining(&self) -> f64 {
        (self.flow.volume - self.delivered).max(0.0)
    }

    /// Whether the flow is delivered to within the volume tolerance.
    pub fn done(&self) -> bool {
        self.remaining() <= VOLUME_TOL * self.flow.volume
    }
}

/// The in-flight residual state of a serving scheduler: every admitted
/// flow plus how much of it has been delivered. See the module docs for
/// the contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InFlightLedger {
    entries: BTreeMap<FlowId, LedgerEntry>,
    live: BTreeSet<FlowId>,
}

impl InFlightLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a flow into the live set. Returns `false` (and leaves the
    /// ledger untouched) when an entry with the same id already exists.
    pub fn admit(&mut self, flow: Flow) -> bool {
        if self.entries.contains_key(&flow.id) {
            return false;
        }
        let id = flow.id;
        self.entries.insert(
            id,
            LedgerEntry {
                flow,
                delivered: 0.0,
                retired: false,
                missed: false,
            },
        );
        self.live.insert(id);
        true
    }

    /// Removes a flow entirely (e.g. to roll back a failed admission).
    /// Returns the entry, if one existed.
    pub fn remove(&mut self, id: FlowId) -> Option<LedgerEntry> {
        self.live.remove(&id);
        self.entries.remove(&id)
    }

    /// Credits delivered volume to a live flow, clamped to the flow's
    /// total volume. Delivery to retired or unknown flows is ignored.
    pub fn deliver(&mut self, id: FlowId, volume: f64) {
        if !self.live.contains(&id) {
            return;
        }
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.delivered = (entry.delivered + volume.max(0.0)).min(entry.flow.volume);
        }
    }

    /// Retires every live flow that is done or whose deadline has passed
    /// at `now` (the latter is marked missed). Returns the retired ids in
    /// ascending order.
    pub fn retire(&mut self, now: f64) -> Vec<FlowId> {
        let mut retired = Vec::new();
        for &id in &self.live {
            let entry = &self.entries[&id];
            if entry.done() || entry.flow.deadline <= now {
                retired.push(id);
            }
        }
        for &id in &retired {
            self.live.remove(&id);
            let entry = self.entries.get_mut(&id).expect("retired id exists");
            entry.retired = true;
            entry.missed = !entry.done();
        }
        retired
    }

    /// Looks an entry up by flow id.
    pub fn get(&self, id: FlowId) -> Option<&LedgerEntry> {
        self.entries.get(&id)
    }

    /// Whether the flow is currently live (admitted and not retired).
    pub fn is_live(&self, id: FlowId) -> bool {
        self.live.contains(&id)
    }

    /// The live entries, in ascending flow-id order.
    pub fn live(&self) -> impl Iterator<Item = &LedgerEntry> {
        self.live.iter().map(|id| &self.entries[id])
    }

    /// Number of live flows.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Every entry ever admitted (live and retired), in ascending
    /// flow-id order. This is the snapshot view: feeding the cloned
    /// entries to [`InFlightLedger::restore`] reproduces the ledger.
    pub fn entries(&self) -> impl Iterator<Item = &LedgerEntry> {
        self.entries.values()
    }

    /// Total number of entries (live and retired).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rebuilds a ledger from dumped entries; the live set is derived
    /// from the `retired` flags.
    pub fn restore(entries: impl IntoIterator<Item = LedgerEntry>) -> Self {
        let mut ledger = Self::new();
        for entry in entries {
            let id = entry.flow.id;
            if !entry.retired {
                ledger.live.insert(id);
            }
            ledger.entries.insert(id, entry);
        }
        ledger
    }

    /// The dense residual instance of the live flows at `now`, optionally
    /// including a not-yet-admitted `candidate`: residual ids are
    /// `0..n` in ascending original-id order (candidate last) and the
    /// returned map translates residual id back to the original.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DeadlinePassed`] when a live flow (or the
    /// candidate) can no longer meet its deadline at `now`, and the
    /// underlying flow-construction error if a residual flow would be
    /// degenerate.
    pub fn residual_set(
        &self,
        now: f64,
        candidate: Option<&Flow>,
    ) -> Result<(FlowSet, Vec<FlowId>), SolveError> {
        let mut flows = Vec::with_capacity(self.live.len() + 1);
        let mut originals = Vec::with_capacity(self.live.len() + 1);
        for entry in self.live() {
            let residual_id = flows.len();
            flows.push(super::residual_flow(
                &entry.flow,
                now,
                entry.remaining(),
                residual_id,
            )?);
            originals.push(entry.flow.id);
        }
        if let Some(flow) = candidate {
            let residual_id = flows.len();
            flows.push(super::residual_flow(flow, now, flow.volume, residual_id)?);
            originals.push(flow.id);
        }
        let set = FlowSet::from_flows(flows)?;
        Ok((set, originals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::NodeId;

    fn flow(id: usize, release: f64, deadline: f64, volume: f64) -> Flow {
        Flow::new(id, NodeId(0), NodeId(1), release, deadline, volume).expect("valid test flow")
    }

    #[test]
    fn admit_deliver_retire_cycle() {
        let mut ledger = InFlightLedger::new();
        assert!(ledger.admit(flow(0, 0.0, 10.0, 5.0)));
        assert!(!ledger.admit(flow(0, 0.0, 10.0, 5.0)), "duplicate id");
        assert!(ledger.admit(flow(1, 0.0, 2.0, 4.0)));
        assert_eq!(ledger.live_len(), 2);

        ledger.deliver(0, 5.0);
        // Flow 1 misses: deadline 2.0 passes with volume outstanding.
        let retired = ledger.retire(3.0);
        assert_eq!(retired, vec![0, 1]);
        assert!(!ledger.get(0).unwrap().missed);
        assert!(ledger.get(1).unwrap().missed);
        assert_eq!(ledger.live_len(), 0);
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn delivery_is_clamped_and_ignores_retired_flows() {
        let mut ledger = InFlightLedger::new();
        ledger.admit(flow(0, 0.0, 10.0, 5.0));
        ledger.deliver(0, 7.0);
        assert_eq!(ledger.get(0).unwrap().delivered, 5.0);
        ledger.retire(1.0);
        ledger.deliver(0, 1.0);
        assert_eq!(ledger.get(0).unwrap().delivered, 5.0);
        // Unknown ids are a no-op, not a panic.
        ledger.deliver(9, 1.0);
    }

    #[test]
    fn residual_set_translates_ids_and_clamps_release() {
        let mut ledger = InFlightLedger::new();
        ledger.admit(flow(3, 0.0, 10.0, 6.0));
        ledger.admit(flow(7, 4.0, 12.0, 2.0));
        ledger.deliver(3, 1.5);

        let candidate = flow(9, 2.0, 8.0, 1.0);
        let (set, originals) = ledger
            .residual_set(2.0, Some(&candidate))
            .expect("residual set builds");
        assert_eq!(originals, vec![3, 7, 9]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.flow(0).volume, 4.5);
        assert_eq!(set.flow(0).release, 2.0, "release clamped to now");
        assert_eq!(set.flow(1).release, 4.0, "future release kept");

        let err = ledger.residual_set(11.0, None).unwrap_err();
        assert!(matches!(err, SolveError::DeadlinePassed { .. }));
    }

    #[test]
    fn restore_round_trips_the_ledger() {
        let mut ledger = InFlightLedger::new();
        ledger.admit(flow(0, 0.0, 10.0, 5.0));
        ledger.admit(flow(1, 0.0, 1.0, 4.0));
        ledger.deliver(0, 2.0);
        ledger.retire(2.0);

        let dumped: Vec<LedgerEntry> = ledger.entries().cloned().collect();
        let restored = InFlightLedger::restore(dumped);
        assert_eq!(restored, ledger);
        assert!(restored.is_live(0));
        assert!(!restored.is_live(1));
    }
}
