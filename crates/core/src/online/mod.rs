//! Online scheduling: flows are revealed at their release times and an
//! event-driven engine re-plans their rates as the system evolves.
//!
//! The paper's DCFSR model is *clairvoyant*: the whole flow set
//! `[release, deadline, volume]` is known at time zero. Its motivating
//! workloads (partition–aggregate search traffic, MapReduce shuffles)
//! arrive online, so this module evaluates every [`Algorithm`] under
//! dynamic arrivals through a policy-pluggable event loop:
//!
//! * [`engine`] hosts the [`OnlineEngine`]: a typed event queue over
//!   **arrivals**, predicted **flow completions** and **deadline-slack
//!   timers**, driving one warm [`SolverContext`] (CSR view, shortest-path
//!   arenas, Frank–Wolfe buffers — no per-event graph rebuilds) and an
//!   [`AdmissionRule`] deciding which arrivals are accepted;
//! * [`policy`] defines the [`OnlinePolicy`] trait (`name`, `on_event`,
//!   `admission`) and the string-keyed [`PolicyRegistry`] mirroring
//!   [`crate::AlgorithmRegistry`];
//! * [`policies`] ships five implementations: `resolve` (full residual
//!   re-solve at every arrival — the pre-split `OnlineScheduler` behaviour,
//!   bit for bit), preemptive `edf` and `srpt` rate reassignment, `rcd`
//!   (rapid-close-to-deadline deferral) and `hybrid` (EDF until any flow's
//!   slack falls under a threshold, then one DCFSR re-solve);
//! * [`ledger`] exposes the [`InFlightLedger`]: the snapshotable
//!   in-flight residual view that long-lived serving loops (the
//!   `dcn-server` daemon) keep per shard, factored out of the engine's
//!   private per-flow bookkeeping.
//!
//! Only the slice of each policy decision up to the next event is
//! **committed**; the [`OnlineOutcome`] stitches the committed slices into
//! one executable [`crate::Schedule`] and an [`OnlineReport`] records the
//! per-flow admit/miss decisions, the event/re-solve counters and the
//! online energy versus the offline clairvoyant bound.
//!
//! With every flow released at the same instant there is exactly one
//! arrival event, the residual instance *is* the full instance and the
//! `resolve` policy commits the wrapped algorithm's offline schedule,
//! bit for bit — `tests/online_offline.rs` pins that equivalence, and
//! `tests/policy_equivalence.rs` pins `resolve` against the pre-split
//! event loop on staggered arrivals.
//!
//! ```
//! use dcn_core::online::{OnlineEngine, ShardMode};
//! use dcn_core::SolverContext;
//! use dcn_flow::workload::{ArrivalProcess, UniformWorkload};
//! use dcn_power::PowerFunction;
//! use dcn_topology::builders;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = builders::fat_tree(4);
//! let base = UniformWorkload::paper_defaults(12, 7).generate(topo.hosts())?;
//! let flows = ArrivalProcess::with_load(2.0, 3).apply(&base)?;
//! let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
//!
//! let mut ctx = SolverContext::from_network(&topo.network)?;
//! let mut online = OnlineEngine::builder()
//!     .algorithm("dcfsr")
//!     .policy("hybrid")
//!     .warm_start(true)
//!     .shards(ShardMode::Auto)
//!     .seed(7)
//!     .build()?;
//! let outcome = online.run_vs_offline(&mut ctx, &flows, &power)?;
//! assert_eq!(outcome.report.decisions.len(), flows.len());
//! assert!(outcome.report.events >= 1);
//! assert!(outcome.report.competitive_ratio().unwrap() > 0.0);
//! # Ok(())
//! # }
//! ```

#[cfg(feature = "legacy-api")]
use crate::algorithm::Algorithm;
use crate::context::SolverContext;
use crate::error::SolveError;
use dcn_flow::{Flow, FlowId, FlowSet};
use dcn_power::PowerFunction;
use dcn_solver::fmcf::FmcfSolverConfig;
use dcn_topology::LinkId;

pub mod engine;
pub mod ledger;
pub mod policies;
pub mod policy;

pub use engine::{
    AdmissionRule, EngineConfig, FlowDecision, OnlineEngine, OnlineEvent, OnlineOutcome,
    OnlineReport, ShardMode, WorldView,
};
pub use ledger::{InFlightLedger, LedgerEntry};
pub use policies::{EdfPolicy, HybridPolicy, RcdPolicy, ResolvePolicy, SrptPolicy};
pub use policy::{
    CapacityLedger, OnlinePolicy, PathCache, PolicyAction, PolicyRegistry, RateAssignment, RatePlan,
};

/// The pre-split online loop, kept as a thin delegate over
/// [`OnlineEngine`] with the [`ResolvePolicy`]: re-solves the full
/// residual instance at every arrival event. Byte-for-byte equivalent to
/// the engine (pinned by `tests/policy_equivalence.rs`). Gated behind the
/// on-by-default `legacy-api` cargo feature.
#[cfg(feature = "legacy-api")]
#[deprecated(
    since = "0.1.0",
    note = "use `OnlineEngine::builder()` with the default \"resolve\" policy instead"
)]
#[derive(Debug)]
pub struct OnlineScheduler {
    engine: OnlineEngine,
}

#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
impl OnlineScheduler {
    /// Creates the online loop around a (registry-created) algorithm.
    pub fn new(algorithm: Box<dyn Algorithm>, policy: AdmissionRule) -> Self {
        Self {
            engine: OnlineEngine::new(algorithm, Box::new(ResolvePolicy), policy),
        }
    }

    /// Re-seeds the loop (see [`OnlineEngine::set_seed`]).
    pub fn set_seed(&mut self, seed: u64) {
        self.engine.set_seed(seed);
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &dyn Algorithm {
        self.engine.algorithm()
    }

    /// The admission rule in use.
    pub fn policy(&self) -> &AdmissionRule {
        self.engine.admission()
    }

    /// Executes the instance online (see [`OnlineEngine::run`]).
    ///
    /// # Errors
    ///
    /// See [`OnlineEngine::run`].
    pub fn run(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<OnlineOutcome, SolveError> {
        self.engine.run(ctx, flows, power)
    }

    /// Runs online, then solves the clairvoyant instance for comparison
    /// (see [`OnlineEngine::run_vs_offline`]).
    ///
    /// # Errors
    ///
    /// See [`OnlineEngine::run_vs_offline`].
    pub fn run_vs_offline(
        &mut self,
        ctx: &mut SolverContext<'_>,
        flows: &FlowSet,
        power: &PowerFunction,
    ) -> Result<OnlineOutcome, SolveError> {
        self.engine.run_vs_offline(ctx, flows, power)
    }
}

/// The pre-split name of [`AdmissionRule`]. The variants, constructors and
/// names are unchanged — only the type was renamed when admission became
/// one input of the policy-pluggable engine rather than the only policy
/// axis of the loop. Gated behind the on-by-default `legacy-api` feature.
#[cfg(feature = "legacy-api")]
#[deprecated(since = "0.1.0", note = "renamed to `AdmissionRule`")]
pub type AdmissionPolicy = AdmissionRule;

/// Builds the residual copy of `flow` as seen at online time `now`: the
/// release is advanced to `now`, the deadline is kept, and the volume is
/// replaced by `remaining`.
///
/// # Errors
///
/// * [`SolveError::DeadlinePassed`] when the flow's deadline is not
///   strictly after `now` (the residual span would be empty — the naive
///   `Flow::new` call would reject it, and earlier drafts of the loop
///   panicked here).
/// * [`SolveError::InvalidInput`] when `remaining` is not a positive
///   finite volume.
pub fn residual_flow(
    flow: &Flow,
    now: f64,
    remaining: f64,
    residual_id: FlowId,
) -> Result<Flow, SolveError> {
    if flow.deadline <= now {
        return Err(SolveError::DeadlinePassed {
            flow: flow.id,
            time: now,
        });
    }
    Flow::new(
        residual_id,
        flow.src,
        flow.dst,
        flow.release.max(now),
        flow.deadline,
        remaining,
    )
    .map_err(SolveError::from)
}

/// The LP-relaxation feasibility check behind
/// [`AdmissionRule::RejectInfeasible`]: solves the per-interval fractional
/// relaxation of `flows` on the context (warm Frank–Wolfe scratch) and
/// reports whether every interval's fractional link loads fit under
/// `min(link capacity, power capacity) * (1 + slack)`.
///
/// # Errors
///
/// Propagates [`SolverContext::relax`] errors: an empty candidate set is
/// [`SolveError::EmptyFlowSet`], a disconnected commodity is
/// [`SolveError::Unroutable`].
pub fn fractionally_feasible(
    ctx: &mut SolverContext<'_>,
    flows: &FlowSet,
    power: &PowerFunction,
    config: &FmcfSolverConfig,
    slack: f64,
) -> Result<bool, SolveError> {
    let relaxation = ctx.relax(flows, power, config)?;
    let cap = power.capacity();
    for interval in &relaxation.intervals {
        for (index, &load) in interval.solution.total_loads().iter().enumerate() {
            let capacity = ctx.graph().capacity(LinkId(index)).min(cap);
            if load > capacity * (1.0 + slack) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "legacy-api")]
    use crate::algorithm::AlgorithmRegistry;
    #[cfg(feature = "legacy-api")]
    use dcn_topology::builders;

    #[test]
    fn residual_flow_after_the_deadline_is_a_typed_error() {
        let flow = Flow::new(
            3,
            dcn_topology::NodeId(0),
            dcn_topology::NodeId(1),
            0.0,
            2.0,
            4.0,
        )
        .unwrap();
        assert_eq!(
            residual_flow(&flow, 2.0, 1.0, 0).unwrap_err(),
            SolveError::DeadlinePassed { flow: 3, time: 2.0 }
        );
        assert_eq!(
            residual_flow(&flow, 5.0, 1.0, 0).unwrap_err(),
            SolveError::DeadlinePassed { flow: 3, time: 5.0 }
        );
        // A live flow yields the residual with the advanced release.
        let residual = residual_flow(&flow, 1.0, 2.5, 0).unwrap();
        assert_eq!(residual.release, 1.0);
        assert_eq!(residual.deadline, 2.0);
        assert_eq!(residual.volume, 2.5);
        // A non-positive remaining volume is invalid input, not a panic.
        assert!(matches!(
            residual_flow(&flow, 1.0, 0.0, 0).unwrap_err(),
            SolveError::InvalidInput { .. }
        ));
    }

    #[cfg(feature = "legacy-api")]
    #[test]
    #[allow(deprecated)]
    fn deprecated_delegate_matches_the_engine_bit_for_bit() {
        let topo = builders::fat_tree(4);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 10.0);
        let flows = dcn_flow::workload::UniformWorkload::paper_defaults(12, 9)
            .generate(topo.hosts())
            .unwrap();
        let registry = AlgorithmRegistry::with_defaults();
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();

        let mut legacy =
            OnlineScheduler::new(registry.create("dcfsr").unwrap(), AdmissionRule::AdmitAll);
        legacy.set_seed(9);
        let old = legacy.run(&mut ctx, &flows, &power).unwrap();

        let mut engine = engine::OnlineEngine::builder()
            .algorithm("dcfsr")
            .seed(9)
            .build()
            .unwrap();
        let new = engine.run(&mut ctx, &flows, &power).unwrap();

        assert_eq!(old.schedule, new.schedule);
        assert_eq!(old.report.online_energy, new.report.online_energy);
        assert_eq!(old.report.decisions, new.report.decisions);
        assert_eq!(old.report.events, new.report.events);
        assert_eq!(old.report.resolves, new.report.resolves);
        assert_eq!(legacy.policy().name(), "admit-all");
        assert_eq!(legacy.algorithm().name(), "dcfsr");
    }
}
