//! The rapid-close-to-deadline deferral policy.

use crate::context::SolverContext;
use crate::error::SolveError;
use crate::online::engine::{OnlineEvent, WorldView};
use crate::online::policy::{CapacityLedger, OnlinePolicy, PathCache, PolicyAction, RatePlan};
use dcn_flow::FlowId;
use dcn_power::PowerFunction;

/// Rapid-close-to-deadline rate assignment (after RCD, Noormohammadpour
/// et al.): each flow *defers* — transmits nothing — until the latest
/// start time at which blasting its path's full rate still meets the
/// deadline, padded by a safety `headroom` factor, then blasts.
///
/// Deferral is implemented with the engine's slack timers: a deferred
/// flow's plan entry is a wake-up at its padded latest start, so the
/// engine revisits the plan exactly when the flow must begin. Flows whose
/// padded latest start has already passed are served immediately at the
/// full residual rate of their fewest-hop path (urgency order: earliest
/// padded latest start first, ties by id).
///
/// Deferring keeps links idle longer (the static-power consolidation
/// motif of the paper), at the price of deadline risk when deferred flows
/// collide on a link; the engine records such misses. No Frank–Wolfe
/// solve, ever.
#[derive(Debug)]
pub struct RcdPolicy {
    /// Multiplier (≥ 1) on the minimum blast duration reserved before the
    /// deadline: `latest start = deadline − headroom · remaining / rate`.
    headroom: f64,
    paths: PathCache,
    ledger: CapacityLedger,
}

impl RcdPolicy {
    /// Creates the policy with the given safety headroom factor (clamped
    /// to at least 1).
    pub fn with_headroom(headroom: f64) -> Self {
        Self {
            headroom: headroom.max(1.0),
            paths: PathCache::new(),
            ledger: CapacityLedger::new(),
        }
    }
}

impl Default for RcdPolicy {
    /// The default 1.25 headroom reserves 25% more than the minimum blast
    /// duration, absorbing capacity lost to overlapping blasts.
    fn default() -> Self {
        Self::with_headroom(1.25)
    }
}

impl OnlinePolicy for RcdPolicy {
    fn name(&self) -> &str {
        "rcd"
    }

    fn on_event(
        &mut self,
        ctx: &mut SolverContext<'_>,
        power: &PowerFunction,
        _event: &OnlineEvent,
        world: &WorldView<'_>,
    ) -> Result<PolicyAction, SolveError> {
        self.ledger.reset(ctx, power);
        // Urgency pass: compute each flow's padded latest start against the
        // *uncontended* path rate, then grant capacity in urgency order.
        let mut urgency: Vec<(f64, FlowId)> = Vec::new();
        for id in world.in_flight() {
            let flow = world.flows().flow(id);
            let remaining = world.remaining(id);
            if remaining <= 0.0 {
                continue;
            }
            let path = self.paths.shortest(ctx, id, flow.src, flow.dst)?;
            let full = self.ledger.available(&path);
            if full <= 0.0 {
                continue;
            }
            let latest = flow.latest_start(remaining, full / self.headroom);
            urgency.push((latest, id));
        }
        urgency.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut plan = RatePlan::default();
        for (latest, id) in urgency {
            let flow = world.flows().flow(id);
            if latest > world.now() {
                // Not urgent yet: stay dark, wake exactly at the deferral
                // point. The wake-up re-plans everything, so the latest
                // start is re-derived against the capacity left then.
                plan.wake_at(latest, id);
                continue;
            }
            let path = self.paths.shortest(ctx, id, flow.src, flow.dst)?;
            let rate = self.ledger.available(&path);
            if rate <= 0.0 {
                continue; // saturated: the deadline watchdog records the miss
            }
            self.ledger.reserve(&path, rate);
            plan.assign(id, path, rate);
        }
        Ok(PolicyAction::Assign(plan))
    }
}
