//! The built-in [`OnlinePolicy`](super::OnlinePolicy) implementations.
//!
//! | name      | decision at each event                                   | FW re-solves |
//! |-----------|----------------------------------------------------------|--------------|
//! | `resolve` | re-solve the full residual with the wrapped algorithm    | every event  |
//! | `edf`     | earliest-deadline-first rates at each flow's required rate | never       |
//! | `srpt`    | shortest-remaining-processing-time, full available rate  | never        |
//! | `rcd`     | defer each flow to its latest start, then blast          | never        |
//! | `hybrid`  | EDF while slack is comfortable, re-solve when it is not  | rarely       |
//!
//! `resolve` is the pre-split `OnlineScheduler` behaviour, bit for bit
//! (pinned by `tests/policy_equivalence.rs`). The priority rules follow
//! the preemptive-scheduling line of PDQ (Hong et al.) and the
//! close-to-deadline scheduling of RCD (Noormohammadpour et al.): most
//! events need only a rate reassignment, not a global Frank–Wolfe pass.

mod edf;
mod hybrid;
mod rcd;
mod resolve;
mod srpt;

pub use edf::EdfPolicy;
pub use hybrid::HybridPolicy;
pub use rcd::RcdPolicy;
pub use resolve::ResolvePolicy;
pub use srpt::SrptPolicy;

#[cfg(test)]
mod tests {
    use crate::context::SolverContext;
    use crate::online::{OnlineEngine, OnlineOutcome};
    use dcn_flow::FlowSet;
    use dcn_power::PowerFunction;
    use dcn_topology::builders;

    fn run_policy(policy: &str, flows: &FlowSet, capacity: f64) -> OnlineOutcome {
        let topo = builders::line(3);
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, capacity);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut engine = OnlineEngine::builder()
            .policy(policy)
            .seed(5)
            .build()
            .unwrap();
        engine.run(&mut ctx, flows, &power).unwrap()
    }

    fn line_flows() -> FlowSet {
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        FlowSet::from_tuples([
            (a, c, 0.0, 10.0, 8.0),
            (a, c, 1.0, 6.0, 4.0),
            (a, c, 2.0, 12.0, 6.0),
        ])
        .unwrap()
    }

    #[test]
    fn edf_delivers_everything_without_a_single_resolve() {
        let flows = line_flows();
        let outcome = run_policy("edf", &flows, 100.0);
        assert_eq!(outcome.report.resolves, 0);
        assert_eq!(outcome.report.solve_failures, 0);
        assert_eq!(outcome.report.missed(), 0);
        for d in &outcome.report.decisions {
            let flow = flows.flow(d.flow);
            assert!((d.delivered - flow.volume).abs() <= 1e-6 * flow.volume);
        }
        // EDF serves at the required rate: no flow transmits faster than
        // its residual density demands at any breakpoint.
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 100.0);
        let topo = builders::line(3);
        let ctx = SolverContext::from_network(&topo.network).unwrap();
        ctx.verify(&outcome.schedule, &flows, &power).unwrap();
    }

    #[test]
    fn srpt_finishes_the_shortest_flow_first() {
        // Capacity 2 keeps flow 0 (8 units) busy when flow 1 (4 units)
        // arrives at t=1 with less remaining: SRPT preempts for it.
        let flows = line_flows();
        let outcome = run_policy("srpt", &flows, 2.0);
        assert_eq!(outcome.report.resolves, 0);
        assert_eq!(outcome.report.missed(), 0);
        let end = |id: usize| {
            outcome
                .schedule
                .flow_schedule(id)
                .unwrap()
                .activity_span()
                .unwrap()
                .1
        };
        assert!(end(1) < end(0), "srpt preempts for the shorter flow");
    }

    #[test]
    fn rcd_defers_loose_flows_toward_their_deadlines() {
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        // One very loose flow: 4 units, span [0, 100], capacity 10. The
        // padded latest start is ~99.5; RCD must stay dark long past the
        // release instead of starting at t=0.
        let flows = FlowSet::from_tuples([(a, c, 0.0, 100.0, 4.0)]).unwrap();
        let outcome = run_policy("rcd", &flows, 10.0);
        assert_eq!(outcome.report.resolves, 0);
        assert_eq!(outcome.report.missed(), 0);
        let (start, end) = outcome
            .schedule
            .flow_schedule(0)
            .unwrap()
            .activity_span()
            .unwrap();
        assert!(start > 50.0, "deferred start, got {start}");
        assert!(end <= 100.0 + 1e-9);
        let d = &outcome.report.decisions[0];
        assert!((d.delivered - 4.0).abs() <= 1e-6 * 4.0);
    }

    #[test]
    fn hybrid_stays_solver_free_when_slack_is_comfortable() {
        // Capacity 100 dwarfs every required rate: slack fractions stay
        // near 1 and hybrid never re-solves.
        let outcome = run_policy("hybrid", &line_flows(), 100.0);
        assert_eq!(outcome.report.resolves, 0);
        assert_eq!(outcome.report.missed(), 0);
    }

    #[test]
    fn hybrid_resolves_when_slack_runs_out() {
        let topo = builders::line(3);
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        // 9.5 units over a 1-unit span at capacity 10: slack fraction
        // 0.05 < 0.1, so the very first event triggers a re-solve.
        let flows = FlowSet::from_tuples([(a, c, 0.0, 1.0, 9.5)]).unwrap();
        let outcome = run_policy("hybrid", &flows, 10.0);
        assert!(outcome.report.resolves >= 1);
        assert_eq!(outcome.report.missed(), 0);
        let d = &outcome.report.decisions[0];
        assert!((d.delivered - 9.5).abs() <= 1e-6 * 9.5);
    }
}
