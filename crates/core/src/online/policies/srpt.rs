//! The preemptive shortest-remaining-processing-time policy.

use crate::context::SolverContext;
use crate::error::SolveError;
use crate::online::engine::{OnlineEvent, WorldView};
use crate::online::policy::{CapacityLedger, OnlinePolicy, PathCache, PolicyAction, RatePlan};
use dcn_flow::FlowId;
use dcn_power::PowerFunction;

/// Shortest-remaining-processing-time rate reassignment, the
/// completion-time-greedy baseline of PDQ-style preemptive scheduling:
/// flows sorted by remaining volume (ties by id) each grab the *full*
/// residual capacity of their fewest-hop path. No Frank–Wolfe solve, ever.
///
/// Blasting at full rate finishes short flows as early as possible but is
/// deadline-blind and energy-hungry under convex speed-scaling power —
/// the instructive contrast to [`super::EdfPolicy`]'s required-rate plan.
/// Long flows behind a persistent queue of short ones can miss their
/// deadlines; the engine records the misses.
#[derive(Debug, Default)]
pub struct SrptPolicy {
    paths: PathCache,
    ledger: CapacityLedger,
}

impl OnlinePolicy for SrptPolicy {
    fn name(&self) -> &str {
        "srpt"
    }

    fn on_event(
        &mut self,
        ctx: &mut SolverContext<'_>,
        power: &PowerFunction,
        _event: &OnlineEvent,
        world: &WorldView<'_>,
    ) -> Result<PolicyAction, SolveError> {
        let mut order: Vec<FlowId> = world.in_flight().collect();
        order.sort_by(|&a, &b| {
            world
                .remaining(a)
                .total_cmp(&world.remaining(b))
                .then(a.cmp(&b))
        });
        self.ledger.reset(ctx, power);
        let mut plan = RatePlan::default();
        for id in order {
            let flow = world.flows().flow(id);
            if world.remaining(id) <= 0.0 {
                continue;
            }
            let path = self.paths.shortest(ctx, id, flow.src, flow.dst)?;
            let rate = self.ledger.available(&path);
            if rate <= 0.0 {
                continue; // saturated path: wait for the current head to finish
            }
            self.ledger.reserve(&path, rate);
            plan.assign(id, path, rate);
        }
        Ok(PolicyAction::Assign(plan))
    }
}
