//! The full-residual re-solve policy.

use crate::context::SolverContext;
use crate::error::SolveError;
use crate::online::engine::{OnlineEvent, WorldView};
use crate::online::policy::{OnlinePolicy, PolicyAction};
use dcn_power::PowerFunction;

/// Re-solves the full residual instance with the engine's wrapped
/// algorithm at *every* event — the pre-split `OnlineScheduler` strategy,
/// bit for bit (it pushes no completion or timer events, so the event
/// queue holds exactly the arrival groups the old loop iterated).
#[derive(Debug, Clone, Copy, Default)]
pub struct ResolvePolicy;

impl OnlinePolicy for ResolvePolicy {
    fn name(&self) -> &str {
        "resolve"
    }

    fn on_event(
        &mut self,
        _ctx: &mut SolverContext<'_>,
        _power: &PowerFunction,
        _event: &OnlineEvent,
        _world: &WorldView<'_>,
    ) -> Result<PolicyAction, SolveError> {
        Ok(PolicyAction::Resolve)
    }
}
