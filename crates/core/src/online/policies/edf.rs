//! The preemptive earliest-deadline-first policy.

use crate::context::SolverContext;
use crate::error::SolveError;
use crate::online::engine::{OnlineEvent, WorldView};
use crate::online::policy::{CapacityLedger, OnlinePolicy, PathCache, PolicyAction, RatePlan};
use dcn_flow::FlowId;
use dcn_power::PowerFunction;

/// Builds the EDF rate plan: in-flight flows sorted by deadline (ties by
/// id) each receive their *required* rate — the minimum constant rate
/// finishing exactly at the deadline — clipped to the residual capacity
/// left by higher-priority flows along their fewest-hop path.
///
/// Serving at the required rate is both the EDF-natural choice and the
/// energy-frugal one under convex speed-scaling power: the rate is never
/// higher than the deadline demands, and it stays constant between events
/// (the required rate of a flow served at its required rate does not
/// drift), so the plan only changes when the flow population does.
///
/// Shared with [`super::HybridPolicy`], whose comfortable-slack regime is
/// exactly this plan.
pub(crate) fn edf_plan(
    ctx: &SolverContext<'_>,
    power: &PowerFunction,
    world: &WorldView<'_>,
    paths: &mut PathCache,
    ledger: &mut CapacityLedger,
) -> Result<RatePlan, SolveError> {
    let mut order: Vec<FlowId> = world.in_flight().collect();
    order.sort_by(|&a, &b| {
        world
            .flows()
            .flow(a)
            .deadline
            .total_cmp(&world.flows().flow(b).deadline)
            .then(a.cmp(&b))
    });
    ledger.reset(ctx, power);
    let mut plan = RatePlan::default();
    for id in order {
        let flow = world.flows().flow(id);
        let remaining = world.remaining(id);
        if remaining <= 0.0 {
            continue;
        }
        let path = paths.shortest(ctx, id, flow.src, flow.dst)?;
        let rate = flow
            .required_rate(world.now(), remaining)
            .min(ledger.available(&path));
        if rate <= 0.0 {
            continue; // saturated path: idle until capacity frees up
        }
        ledger.reserve(&path, rate);
        plan.assign(id, path, rate);
    }
    Ok(plan)
}

/// Preemptive earliest-deadline-first rate reassignment: no Frank–Wolfe
/// solve, ever. At every event the in-flight flows are re-planned by
/// `edf_plan`; an overloaded fabric starves the latest deadlines first
/// and the engine records their misses.
#[derive(Debug, Default)]
pub struct EdfPolicy {
    paths: PathCache,
    ledger: CapacityLedger,
}

impl OnlinePolicy for EdfPolicy {
    fn name(&self) -> &str {
        "edf"
    }

    fn on_event(
        &mut self,
        ctx: &mut SolverContext<'_>,
        power: &PowerFunction,
        _event: &OnlineEvent,
        world: &WorldView<'_>,
    ) -> Result<PolicyAction, SolveError> {
        edf_plan(ctx, power, world, &mut self.paths, &mut self.ledger).map(PolicyAction::Assign)
    }
}
