//! The EDF-until-tight hybrid policy.

use super::edf::edf_plan;
use crate::context::SolverContext;
use crate::error::SolveError;
use crate::online::engine::{OnlineEvent, WorldView};
use crate::online::policy::{CapacityLedger, OnlinePolicy, PathCache, PolicyAction};
use dcn_power::PowerFunction;

/// Runs cheap EDF rate reassignment (`edf_plan`) while every in-flight
/// flow has comfortable slack, and triggers a full residual re-solve with
/// the engine's wrapped algorithm (DCFSR in the benchmarks) only when some
/// flow's *slack fraction* — the share of its remaining time that is spare
/// after transmitting at its path's full rate — drops below the
/// configured threshold.
///
/// This is the refactor's payoff policy: on traces where deadlines are
/// loose relative to fabric capacity (the paper's workload regime) nearly
/// every event is handled without a Frank–Wolfe pass, while genuinely
/// tight moments still get the clairvoyant-quality re-solve. The
/// `policy_arrivals` example and the acceptance gate pin hybrid at ≤ 25%
/// of `resolve`'s re-solve count on a 200-event fat-tree trace with zero
/// deadline misses.
#[derive(Debug)]
pub struct HybridPolicy {
    /// Re-solve when any flow's slack fraction falls below this value
    /// (clamped to `[0, 1]`).
    slack_threshold: f64,
    paths: PathCache,
    ledger: CapacityLedger,
}

impl HybridPolicy {
    /// Creates the policy with the given slack-fraction threshold.
    pub fn with_slack_threshold(slack_threshold: f64) -> Self {
        Self {
            slack_threshold: slack_threshold.clamp(0.0, 1.0),
            paths: PathCache::new(),
            ledger: CapacityLedger::new(),
        }
    }
}

impl Default for HybridPolicy {
    /// The default threshold re-solves once a flow's spare time shrinks
    /// under 10% of its remaining window.
    fn default() -> Self {
        Self::with_slack_threshold(0.1)
    }
}

impl OnlinePolicy for HybridPolicy {
    fn name(&self) -> &str {
        "hybrid"
    }

    fn on_event(
        &mut self,
        ctx: &mut SolverContext<'_>,
        power: &PowerFunction,
        _event: &OnlineEvent,
        world: &WorldView<'_>,
    ) -> Result<PolicyAction, SolveError> {
        self.ledger.reset(ctx, power);
        for id in world.in_flight() {
            let flow = world.flows().flow(id);
            let remaining = world.remaining(id);
            if remaining <= 0.0 {
                continue;
            }
            let path = self.paths.shortest(ctx, id, flow.src, flow.dst)?;
            let full = self.ledger.available(&path);
            let time_left = flow.time_to_deadline(world.now());
            // Slack fraction against the uncontended full path rate: 1.0
            // means the flow barely needs the wire, 0.0 means it must
            // blast from now to the deadline, negative means even that
            // cannot finish in time.
            let fraction = if full <= 0.0 {
                f64::NEG_INFINITY
            } else {
                flow.slack(world.now(), remaining, full) / time_left
            };
            if fraction < self.slack_threshold {
                return Ok(PolicyAction::Resolve);
            }
        }
        edf_plan(ctx, power, world, &mut self.paths, &mut self.ledger).map(PolicyAction::Assign)
    }
}
