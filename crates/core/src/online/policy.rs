//! The policy abstraction of the online engine: the [`OnlinePolicy`]
//! trait, the [`PolicyAction`] / [`RatePlan`] vocabulary policies answer
//! with, the string-keyed [`PolicyRegistry`] mirroring
//! [`crate::AlgorithmRegistry`], and two small shared helpers
//! ([`PathCache`], [`CapacityLedger`]) the rate-assigning policies build
//! their plans with.

use super::engine::{AdmissionRule, OnlineEvent, WorldView};
use super::policies::{EdfPolicy, HybridPolicy, RcdPolicy, ResolvePolicy, SrptPolicy};
use crate::context::SolverContext;
use crate::error::SolveError;
use dcn_flow::FlowId;
use dcn_power::PowerFunction;
use dcn_topology::{NodeId, Path};
use std::collections::HashMap;
use std::fmt;

/// One constant-rate assignment of a [`RatePlan`]: serve `flow` along
/// `path` at `rate` until the next event.
#[derive(Debug, Clone)]
pub struct RateAssignment {
    /// The flow to serve (original instance id).
    pub flow: FlowId,
    /// The routing of the assignment.
    pub path: Path,
    /// The constant rate, in volume per unit time. Assignments with a
    /// non-positive or non-finite rate are ignored by the engine.
    pub rate: f64,
}

/// A policy-computed set of rates, valid from the current event until the
/// next one. The engine derives the follow-up events itself: a completion
/// event where a rate finishes its flow in time, a deadline watchdog where
/// it cannot, plus any explicitly requested timers.
#[derive(Debug, Clone, Default)]
pub struct RatePlan {
    /// The rate assignments, at most one per flow (the engine keeps the
    /// first and ignores duplicates). In-flight flows without an
    /// assignment simply idle until the next event.
    pub rates: Vec<RateAssignment>,
    /// Extra wake-up times `(time, flow)` — e.g. the latest-start instant
    /// of a deferred flow. Times at or before the current event are
    /// ignored.
    pub timers: Vec<(f64, FlowId)>,
}

impl RatePlan {
    /// Adds one assignment.
    pub fn assign(&mut self, flow: FlowId, path: Path, rate: f64) {
        self.rates.push(RateAssignment { flow, path, rate });
    }

    /// Requests a wake-up at `time` attributed to `flow`.
    pub fn wake_at(&mut self, time: f64, flow: FlowId) {
        self.timers.push((time, flow));
    }
}

/// What an [`OnlinePolicy`] decided at an event.
#[derive(Debug, Clone)]
pub enum PolicyAction {
    /// Re-solve the full residual instance with the engine's wrapped
    /// [`crate::Algorithm`] and commit its schedule up to the next event —
    /// the expensive, clairvoyant-quality decision.
    Resolve,
    /// Commit the given rates up to the next event — the cheap,
    /// priority-rule decision.
    Assign(RatePlan),
}

/// A pluggable per-event decision rule of the
/// [`OnlineEngine`](super::OnlineEngine).
///
/// The engine calls [`OnlinePolicy::admission`] once per arrival (in
/// flow-id order) and [`OnlinePolicy::on_event`] once per event batch; the
/// returned [`PolicyAction`] is committed until the next event. Policies
/// are stateful (`&mut self`) — e.g. the hybrid policy remembers whether a
/// re-solve was already triggered — and are re-seeded together with the
/// engine through [`OnlinePolicy::set_seed`].
pub trait OnlinePolicy: fmt::Debug + Send {
    /// The registry key of the policy (round-trip invariant of
    /// [`PolicyRegistry::register`]).
    fn name(&self) -> &str;

    /// Re-seeds any internal randomness. The built-in policies are
    /// deterministic; the default implementation does nothing.
    fn set_seed(&mut self, _seed: u64) {}

    /// Decides what to do at one event batch.
    ///
    /// # Errors
    ///
    /// Policies propagate [`SolveError`]s of the solver primitives they
    /// consult; the engine aborts the run on them.
    fn on_event(
        &mut self,
        ctx: &mut SolverContext<'_>,
        power: &PowerFunction,
        event: &OnlineEvent,
        world: &WorldView<'_>,
    ) -> Result<PolicyAction, SolveError>;

    /// Decides whether to admit `candidate`, which arrived at
    /// `world.now()`. The default implementation applies the engine's
    /// [`AdmissionRule`] unchanged; policies may override it to veto or
    /// loosen admissions.
    ///
    /// # Errors
    ///
    /// Propagates [`AdmissionRule::evaluate`] errors.
    fn admission(
        &mut self,
        ctx: &mut SolverContext<'_>,
        power: &PowerFunction,
        world: &WorldView<'_>,
        candidate: FlowId,
        rule: &AdmissionRule,
    ) -> Result<bool, SolveError> {
        rule.evaluate(ctx, power, world, candidate)
    }
}

/// A string-keyed registry of [`OnlinePolicy`] factories, mirroring
/// [`crate::AlgorithmRegistry`] (both are thin wrappers over the shared
/// [`Registry`](crate::registry::Registry)): harnesses select policies by
/// name from CLI flags or experiment descriptors, and can register their
/// own factories (or re-register a default name with different
/// configuration).
#[derive(Clone)]
pub struct PolicyRegistry {
    inner: crate::registry::Registry<dyn OnlinePolicy>,
}

impl PolicyRegistry {
    /// Creates an empty registry.
    pub fn empty() -> Self {
        Self {
            inner: crate::registry::Registry::new("OnlinePolicy::name()", |p| p.name()),
        }
    }

    /// Creates a registry with every built-in policy registered, in the
    /// documented order: `resolve`, `edf`, `srpt`, `rcd`, `hybrid`.
    pub fn with_defaults() -> Self {
        let mut registry = Self::empty();
        registry.register("resolve", || Box::new(ResolvePolicy));
        registry.register("edf", || Box::new(EdfPolicy::default()));
        registry.register("srpt", || Box::new(SrptPolicy::default()));
        registry.register("rcd", || Box::new(RcdPolicy::default()));
        registry.register("hybrid", || Box::new(HybridPolicy::default()));
        registry
    }

    /// Registers (or replaces) a factory under `name`.
    ///
    /// # Panics
    ///
    /// Panics if the factory produces a policy whose [`OnlinePolicy::name`]
    /// differs from `name` — the registry's round-trip invariant
    /// (`create(name).name() == name`).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn OnlinePolicy> + Send + Sync + 'static,
    ) {
        self.inner.register(name, factory);
    }

    /// Instantiates the policy registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::UnknownPolicy`] for unregistered names.
    pub fn create(&self, name: &str) -> Result<Box<dyn OnlinePolicy>, SolveError> {
        self.inner
            .create(name)
            .ok_or_else(|| SolveError::UnknownPolicy {
                name: name.to_string(),
            })
    }

    /// Returns `true` if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.contains(name)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.inner.names()
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl fmt::Debug for PolicyRegistry {
    /// The factories are opaque closures, so print the registered names.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// A memo of fewest-hop paths per endpoint pair. The rate-assigning
/// policies route every flow on its BFS shortest path (the same
/// tie-breaking as [`dcn_topology::GraphCsr::shortest_path`]); the cache
/// makes that a one-time cost per endpoint pair per run.
///
/// Memoised paths are keyed to the graph's [`dcn_topology::GraphCsr::epoch`]:
/// a link failure or recovery bumps the epoch and clears the memo, so a
/// cached route can never survive the topology change that invalidated it.
#[derive(Debug, Default)]
pub struct PathCache {
    paths: HashMap<(NodeId, NodeId), Option<Path>>,
    /// Epoch of the graph the memo was filled from (0 = empty).
    epoch: u64,
}

impl PathCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fewest-hop path from `src` to `dst`, computed on first use (and
    /// recomputed after any topology mutation).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Unroutable`] (attributed to `flow`) when the
    /// endpoints are disconnected.
    pub fn shortest(
        &mut self,
        ctx: &SolverContext<'_>,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Path, SolveError> {
        let epoch = ctx.graph().epoch();
        if self.epoch != epoch {
            self.paths.clear();
            self.epoch = epoch;
        }
        self.paths
            .entry((src, dst))
            .or_insert_with(|| ctx.graph().shortest_path(src, dst))
            .clone()
            .ok_or(SolveError::Unroutable { flow })
    }
}

/// A per-link residual-capacity ledger for greedy rate packing: start from
/// `min(link capacity, power-function capacity)` on every link, then
/// [`CapacityLedger::reserve`] each granted assignment so later (lower
/// priority) flows only see what is left.
///
/// The ledger doubles as the engine's *dirty-link* tracker for warm-started
/// re-solves: every reservation (and explicit [`CapacityLedger::mark_dirty`])
/// records the touched links, and the engine drains the set into
/// [`dcn_solver::fmcf::FmcfScratch::mark_dirty_links`] before the next
/// residual solve, so only commodities whose flows cross changed links are
/// re-routed from scratch. [`CapacityLedger::reset`] deliberately keeps the
/// dirty set — capacities are re-initialised per event, but dirt
/// accumulates until a re-solve consumes it.
#[derive(Debug, Default)]
pub struct CapacityLedger {
    available: Vec<f64>,
    /// The pristine per-link capacities `available` resets back to, so a
    /// per-event reset restores only the links reservations touched
    /// instead of recomputing every link (the full rebuild is the per-event
    /// hot spot on 100k-arrival traces over large fabrics).
    base: Vec<f64>,
    /// Fingerprint of the graph/power pair `base` was built from: the
    /// graph's mutation [`epoch`](dcn_topology::GraphCsr::epoch) and the
    /// power-function capacity clamp. The epoch is process-globally unique
    /// per (graph, mutation-state), so — unlike the allocation address a
    /// previous revision used — a dead graph's key can never be revived by
    /// a recycled allocation hosting a same-link-count graph.
    base_key: (u64, u64),
    /// Links whose `available` entry may differ from `base` since the last
    /// [`CapacityLedger::reset`] (duplicates allowed — restoring twice is
    /// idempotent).
    touched: Vec<dcn_topology::LinkId>,
    /// Links whose reservations changed since the last
    /// [`CapacityLedger::take_dirty`], deduplicated.
    dirty: Vec<dcn_topology::LinkId>,
    /// Membership mask of `dirty`, grown on demand.
    dirty_mark: Vec<bool>,
}

impl CapacityLedger {
    /// Creates an empty ledger; call [`CapacityLedger::reset`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-initialises every link to its usable capacity. The dirty set is
    /// preserved (see the type docs).
    pub fn reset(&mut self, ctx: &SolverContext<'_>, power: &PowerFunction) {
        let graph = ctx.graph();
        let cap = power.capacity();
        let key = (graph.epoch(), cap.to_bits());
        if self.base_key != key || self.base.len() != graph.link_count() {
            self.base.clear();
            self.base.extend(
                (0..graph.link_count())
                    .map(|index| graph.capacity(dcn_topology::LinkId(index)).min(cap)),
            );
            self.base_key = key;
            self.available.clear();
            self.available.extend_from_slice(&self.base);
            self.touched.clear();
            return;
        }
        for link in self.touched.drain(..) {
            self.available[link.index()] = self.base[link.index()];
        }
    }

    /// The largest rate `path` can still carry: the minimum residual
    /// capacity over its links (infinite for an empty path).
    pub fn available(&self, path: &Path) -> f64 {
        path.links()
            .iter()
            .map(|link| self.available[link.index()])
            .fold(f64::INFINITY, f64::min)
    }

    /// Subtracts `rate` from every link of `path` (clamped at zero against
    /// float drift) and marks the links dirty.
    pub fn reserve(&mut self, path: &Path, rate: f64) {
        for link in path.links() {
            let slot = &mut self.available[link.index()];
            *slot = (*slot - rate).max(0.0);
        }
        self.touched.extend_from_slice(path.links());
        self.mark_dirty(path);
    }

    /// Marks every link of `path` dirty without reserving capacity — used
    /// for committed schedule slices and retired flows, whose rate changes
    /// invalidate cached per-commodity flows on those links.
    pub fn mark_dirty(&mut self, path: &Path) {
        for &link in path.links() {
            if self.dirty_mark.len() <= link.index() {
                self.dirty_mark.resize(link.index() + 1, false);
            }
            if !self.dirty_mark[link.index()] {
                self.dirty_mark[link.index()] = true;
                self.dirty.push(link);
            }
        }
    }

    /// The links dirtied since the last [`CapacityLedger::take_dirty`], in
    /// first-touch order.
    pub fn dirty(&self) -> &[dcn_topology::LinkId] {
        &self.dirty
    }

    /// Drains and returns the dirty set.
    pub fn take_dirty(&mut self) -> Vec<dcn_topology::LinkId> {
        for &l in &self.dirty {
            self.dirty_mark[l.index()] = false;
        }
        std::mem::take(&mut self.dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;

    #[test]
    fn registry_round_trips_every_default_policy() {
        let registry = PolicyRegistry::with_defaults();
        assert_eq!(
            registry.names(),
            vec!["resolve", "edf", "srpt", "rcd", "hybrid"]
        );
        for name in registry.names() {
            assert!(registry.contains(name));
            assert_eq!(registry.create(name).unwrap().name(), name);
        }
        assert!(!registry.contains("nope"));
        assert_eq!(
            registry.create("nope").unwrap_err(),
            SolveError::UnknownPolicy {
                name: "nope".to_string()
            }
        );
        let debug = format!("{registry:?}");
        assert!(debug.contains("resolve") && debug.contains("hybrid"));
    }

    #[test]
    fn registering_replaces_and_rejects_mismatched_names() {
        let mut registry = PolicyRegistry::empty();
        registry.register("edf", || Box::new(EdfPolicy::default()));
        assert_eq!(registry.names(), vec!["edf"]);
        // Re-registering the same name replaces instead of duplicating.
        registry.register("edf", || Box::new(EdfPolicy::default()));
        assert_eq!(registry.names(), vec!["edf"]);
        let mismatched = std::panic::catch_unwind(|| {
            let mut r = PolicyRegistry::empty();
            r.register("not-edf", || Box::new(EdfPolicy::default()));
        });
        assert!(mismatched.is_err(), "mismatched name must panic");
    }

    #[test]
    fn path_cache_memoises_and_reports_unroutable() {
        let topo = builders::line(3);
        let ctx = SolverContext::from_network(&topo.network).unwrap();
        let mut cache = PathCache::new();
        let (a, c) = (topo.hosts()[0], topo.hosts()[2]);
        let first = cache.shortest(&ctx, 0, a, c).unwrap();
        let second = cache.shortest(&ctx, 1, a, c).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, ctx.graph().shortest_path(a, c).unwrap());
        assert_eq!(cache.paths.len(), 1);
    }

    #[test]
    fn capacity_ledger_tracks_reservations_along_paths() {
        let topo = builders::line(3);
        let ctx = SolverContext::from_network(&topo.network).unwrap();
        // Power capacity below the link capacity is the binding limit.
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 4.0);
        let mut ledger = CapacityLedger::new();
        ledger.reset(&ctx, &power);
        let path = ctx
            .graph()
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        assert_eq!(ledger.available(&path), 4.0);
        ledger.reserve(&path, 2.5);
        assert_eq!(ledger.available(&path), 1.5);
        ledger.reserve(&path, 5.0);
        assert_eq!(ledger.available(&path), 0.0, "clamped at zero");
    }

    #[test]
    fn ledger_rebuilds_for_a_recycled_graph_allocation() {
        // Regression: the ledger once keyed `base` on the graph's
        // *allocation address* (plus the power clamp). Dropping a context
        // and building a same-shape one at the recycled allocation made
        // the key collide, so `reset` replayed the dead graph's
        // capacities. The loop below alternates link capacities across
        // same-sized boxed contexts — under the address key the stale
        // 8.0 base survives into a 2.0-capacity round; under the epoch
        // key every round rebuilds.
        use dcn_topology::{Network, NodeKind};
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 100.0);
        let mut ledger = CapacityLedger::new();
        for round in 0..8 {
            let cap = if round % 2 == 0 { 8.0 } else { 2.0 };
            let mut net = Network::new();
            let a = net.add_node(NodeKind::Host, "a");
            let b = net.add_node(NodeKind::Host, "b");
            net.add_duplex_link(a, b, cap);
            let ctx = Box::new(SolverContext::from_network(&net).unwrap());
            ledger.reset(&ctx, &power);
            let path = ctx.graph().shortest_path(a, b).unwrap();
            assert_eq!(
                ledger.available(&path),
                cap,
                "round {round}: ledger must track the live graph, not a \
                 recycled allocation"
            );
            ledger.reserve(&path, 1.0);
        }
    }

    #[test]
    fn ledger_rebuilds_after_an_in_place_link_failure() {
        // A link failure mutates the graph in place: the address (and the
        // link count) stay the same and only the epoch moves, so this is
        // exactly the case an address-keyed cache cannot see.
        use dcn_topology::TopologyEvent;
        let topo = builders::line(3);
        let mut ctx = SolverContext::from_network(&topo.network).unwrap();
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 100.0);
        let mut ledger = CapacityLedger::new();
        ledger.reset(&ctx, &power);
        let path = ctx
            .graph()
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        let pristine = ledger.available(&path);
        assert!(pristine > 0.0);
        ledger.reserve(&path, 1.0);
        let link = path.links()[0];

        assert!(ctx.apply_topology_event(TopologyEvent::LinkDown { time: 0.5, link }));
        ledger.reset(&ctx, &power);
        assert_eq!(
            ledger.available(&path),
            0.0,
            "the failed link masks to zero residual"
        );

        assert!(ctx.apply_topology_event(TopologyEvent::LinkUp { time: 1.5, link }));
        ledger.reset(&ctx, &power);
        assert_eq!(
            ledger.available(&path),
            pristine,
            "recovery restores the exact pre-failure capacity"
        );
    }

    #[test]
    fn ledger_dirty_set_survives_reset_and_drains_once() {
        let topo = builders::line(3);
        let ctx = SolverContext::from_network(&topo.network).unwrap();
        let power = PowerFunction::speed_scaling_only(1.0, 2.0, 4.0);
        let mut ledger = CapacityLedger::new();
        ledger.reset(&ctx, &power);
        let path = ctx
            .graph()
            .shortest_path(topo.hosts()[0], topo.hosts()[2])
            .unwrap();
        assert!(ledger.dirty().is_empty());
        ledger.reserve(&path, 1.0);
        ledger.mark_dirty(&path); // idempotent: no duplicates
        assert_eq!(ledger.dirty().len(), path.links().len());
        ledger.reset(&ctx, &power);
        assert_eq!(
            ledger.dirty().len(),
            path.links().len(),
            "reset keeps accumulated dirt"
        );
        let drained = ledger.take_dirty();
        assert_eq!(drained.len(), path.links().len());
        assert!(ledger.dirty().is_empty());
        ledger.reserve(&path, 1.0);
        assert_eq!(ledger.dirty().len(), path.links().len(), "re-dirties");
    }
}
