//! The unified error type of the context-object API.
//!
//! Every [`crate::Algorithm`] reports failures through one typed
//! [`SolveError`], replacing the mix of per-module error enums, `Option`s
//! and panics the one-shot entry points grew over time. The per-module
//! errors ([`DcfsError`], [`DcfsrError`], [`RoutingError`], [`ExactError`],
//! [`BaselineError`]) still exist on the deprecated paths and convert into
//! `SolveError` losslessly via `From`.

use crate::baselines::BaselineError;
use crate::dcfs::DcfsError;
use crate::dcfsr::DcfsrError;
use crate::exact::ExactError;
use crate::routing::RoutingError;
use crate::schedule::ScheduleError;
use dcn_flow::{FlowError, FlowId};
use dcn_topology::LinkId;
use std::fmt;

/// The unified error of [`crate::Algorithm::solve`] and
/// [`crate::SolverContext`].
///
/// Marked `#[non_exhaustive]`: future PRs may add variants (e.g. timeouts
/// for the async serving layer) without a breaking change, so downstream
/// matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The topology or the flow set is malformed: non-positive or
    /// non-finite link capacity, a link endpoint outside the node range, a
    /// flow endpoint outside the node range, or a source equal to its
    /// destination.
    InvalidInput {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// The flow set contains no flows; the algorithms have nothing to
    /// schedule and the lower bound would be trivially zero.
    EmptyFlowSet,
    /// A flow has no path between its endpoints in the network.
    Unroutable {
        /// The flow that cannot be routed.
        flow: FlowId,
    },
    /// No schedule can meet every deadline under the algorithm's model
    /// (e.g. the virtual-circuit occupation of Most-Critical-First leaves a
    /// flow without available time).
    Infeasible {
        /// The link on which the conflict was detected.
        link: LinkId,
    },
    /// The number of externally supplied paths does not match the number of
    /// flows (DCFS takes routing as input).
    PathCountMismatch {
        /// Number of flows in the instance.
        flows: usize,
        /// Number of paths supplied.
        paths: usize,
    },
    /// An externally supplied path does not connect its flow's endpoints.
    PathMismatch {
        /// The flow whose path is wrong.
        flow: FlowId,
    },
    /// The instance is too large for exhaustive enumeration (the `exact`
    /// algorithm only).
    TooLarge {
        /// Number of path assignments enumeration would need to visit.
        combinations: u128,
        /// The configured enumeration budget.
        budget: u128,
    },
    /// Exhaustive enumeration found no feasible path assignment.
    NoFeasibleAssignment,
    /// A flow's deadline is not strictly later than the current time of the
    /// online rolling-horizon loop, so no residual instance containing it
    /// can be formed (its span would be empty). The online loop records the
    /// flow as missed instead of re-solving with it.
    DeadlinePassed {
        /// The flow whose deadline has passed.
        flow: FlowId,
        /// The online clock at which the flow was considered.
        time: f64,
    },
    /// The requested algorithm name is not registered.
    UnknownAlgorithm {
        /// The name that failed to resolve.
        name: String,
    },
    /// The requested online-policy name is not registered in the
    /// [`crate::online::PolicyRegistry`].
    UnknownPolicy {
        /// The name that failed to resolve.
        name: String,
    },
    /// A produced schedule failed verification against its instance.
    Verification(ScheduleError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            SolveError::EmptyFlowSet => write!(f, "the flow set contains no flows"),
            SolveError::Unroutable { flow } => {
                write!(f, "flow {flow} has no path between its endpoints")
            }
            SolveError::Infeasible { link } => write!(
                f,
                "no feasible schedule: link {link} has no available time left"
            ),
            SolveError::PathCountMismatch { flows, paths } => {
                write!(f, "{flows} flows but {paths} paths were provided")
            }
            SolveError::PathMismatch { flow } => {
                write!(f, "path of flow {flow} does not connect its endpoints")
            }
            SolveError::TooLarge {
                combinations,
                budget,
            } => write!(
                f,
                "exhaustive search would visit {combinations} assignments (budget {budget})"
            ),
            SolveError::NoFeasibleAssignment => {
                write!(f, "no path assignment admits a feasible schedule")
            }
            SolveError::DeadlinePassed { flow, time } => {
                write!(
                    f,
                    "flow {flow}: deadline is not after the online clock {time}"
                )
            }
            SolveError::UnknownAlgorithm { name } => {
                write!(f, "no algorithm named {name:?} is registered")
            }
            SolveError::UnknownPolicy { name } => {
                write!(f, "no online policy named {name:?} is registered")
            }
            SolveError::Verification(e) => write!(f, "schedule verification failed: {e}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<RoutingError> for SolveError {
    fn from(value: RoutingError) -> Self {
        match value {
            RoutingError::Unreachable { flow } => SolveError::Unroutable { flow },
        }
    }
}

impl From<DcfsError> for SolveError {
    fn from(value: DcfsError) -> Self {
        match value {
            DcfsError::PathCountMismatch { flows, paths } => {
                SolveError::PathCountMismatch { flows, paths }
            }
            DcfsError::PathMismatch { flow } => SolveError::PathMismatch { flow },
            DcfsError::Infeasible { link } => SolveError::Infeasible { link },
        }
    }
}

impl From<DcfsrError> for SolveError {
    fn from(value: DcfsrError) -> Self {
        match value {
            DcfsrError::Unroutable { flow } => SolveError::Unroutable { flow },
        }
    }
}

impl From<ExactError> for SolveError {
    fn from(value: ExactError) -> Self {
        match value {
            ExactError::TooLarge {
                combinations,
                budget,
            } => SolveError::TooLarge {
                combinations,
                budget,
            },
            ExactError::Unroutable { flow } => SolveError::Unroutable { flow },
            ExactError::NoFeasibleAssignment => SolveError::NoFeasibleAssignment,
        }
    }
}

impl From<BaselineError> for SolveError {
    fn from(value: BaselineError) -> Self {
        match value {
            BaselineError::Routing(e) => e.into(),
            BaselineError::Scheduling(e) => e.into(),
        }
    }
}

impl From<FlowError> for SolveError {
    fn from(value: FlowError) -> Self {
        SolveError::InvalidInput {
            reason: value.to_string(),
        }
    }
}

impl From<ScheduleError> for SolveError {
    fn from(value: ScheduleError) -> Self {
        SolveError::Verification(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleViolation;
    use dcn_topology::LinkId;

    #[test]
    fn every_variant_displays_its_context() {
        let cases: Vec<(SolveError, &str)> = vec![
            (
                SolveError::InvalidInput {
                    reason: "capacity of link 3 is -1".to_string(),
                },
                "link 3",
            ),
            (SolveError::EmptyFlowSet, "no flows"),
            (SolveError::Unroutable { flow: 7 }, "flow 7"),
            (SolveError::Infeasible { link: LinkId(4) }, "link e4"),
            (
                SolveError::PathCountMismatch { flows: 3, paths: 1 },
                "3 flows but 1 paths",
            ),
            (SolveError::PathMismatch { flow: 2 }, "flow 2"),
            (
                SolveError::TooLarge {
                    combinations: 1024,
                    budget: 100,
                },
                "1024",
            ),
            (SolveError::NoFeasibleAssignment, "no path assignment"),
            (SolveError::DeadlinePassed { flow: 6, time: 9.5 }, "flow 6"),
            (
                SolveError::UnknownAlgorithm {
                    name: "dcfsr2".to_string(),
                },
                "dcfsr2",
            ),
            (
                SolveError::UnknownPolicy {
                    name: "edf2".to_string(),
                },
                "edf2",
            ),
            (
                SolveError::Verification(ScheduleError {
                    violations: vec![ScheduleViolation::MissingFlow(5)],
                }),
                "flow 5",
            ),
        ];
        for (error, needle) in cases {
            let text = error.to_string();
            assert!(text.contains(needle), "{error:?} renders as {text:?}");
        }
    }

    #[test]
    fn module_errors_convert_losslessly() {
        assert_eq!(
            SolveError::from(RoutingError::Unreachable { flow: 1 }),
            SolveError::Unroutable { flow: 1 }
        );
        assert_eq!(
            SolveError::from(DcfsError::Infeasible { link: LinkId(2) }),
            SolveError::Infeasible { link: LinkId(2) }
        );
        assert_eq!(
            SolveError::from(DcfsError::PathCountMismatch { flows: 2, paths: 0 }),
            SolveError::PathCountMismatch { flows: 2, paths: 0 }
        );
        assert_eq!(
            SolveError::from(DcfsrError::Unroutable { flow: 3 }),
            SolveError::Unroutable { flow: 3 }
        );
        assert_eq!(
            SolveError::from(ExactError::NoFeasibleAssignment),
            SolveError::NoFeasibleAssignment
        );
        assert_eq!(
            SolveError::from(BaselineError::Routing(RoutingError::Unreachable {
                flow: 9
            })),
            SolveError::Unroutable { flow: 9 }
        );
        let flow_err = dcn_flow::Flow::new(
            0,
            dcn_topology::NodeId(0),
            dcn_topology::NodeId(0),
            0.0,
            1.0,
            1.0,
        )
        .unwrap_err();
        assert!(matches!(
            SolveError::from(flow_err),
            SolveError::InvalidInput { .. }
        ));
    }
}
